//! Offline linter for the Prometheus text exposition format (version
//! 0.0.4) — a vendored stand-in for `promtool check metrics`, so CI can
//! validate `dprle --metrics-format prom` output without network access.
//!
//! Checked rules, matching what the Prometheus client-library data model
//! requires of a scrape page:
//!
//! * Metric and label names match the required character sets.
//! * `# HELP` and `# TYPE` appear at most once per metric, before its
//!   first sample, with a known type (`counter`, `gauge`, `histogram`,
//!   `summary`, `untyped`).
//! * All samples of one metric family are contiguous.
//! * Sample values parse as Go-style floats (including `+Inf`, `NaN`).
//! * No two samples share a name and label set.
//! * Histograms: `le` bucket bounds are sorted and end at `+Inf`, bucket
//!   counts are cumulative (non-decreasing), and the `+Inf` bucket equals
//!   `<name>_count`; `_sum` and `_count` are present.
//!
//! The entry point is [`lint`]; the `promlint` binary wraps it for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fmt;

/// One lint violation, positioned by 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Problem {
    /// 1-based line number in the input.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// What a clean page contained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Distinct metric families seen.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

/// A parsed sample line: name, sorted label pairs, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{l1="v1",...} value`, labels optional. Returns an error
/// message on malformed syntax.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label brace".to_owned())?;
            if close < brace {
                return Err("unclosed label brace".to_owned());
            }
            (&line[..brace], &line[close + 1..])
        }
        None => match line.find(char::is_whitespace) {
            Some(ws) => (&line[..ws], &line[ws..]),
            None => return Err("sample line has no value".to_owned()),
        },
    };
    let name = name_part.trim().to_owned();
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    let mut labels = Vec::new();
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}').expect("checked above");
        let body = &line[brace + 1..close];
        let mut chars = body.chars().peekable();
        while chars.peek().is_some() {
            let mut label = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                label.push(c);
            }
            let label = label.trim().to_owned();
            if !valid_label_name(&label) {
                return Err(format!("invalid label name `{label}`"));
            }
            if chars.next() != Some('"') {
                return Err(format!("label `{label}` value is not quoted"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some(e) => value.push(e),
                        None => return Err("dangling escape in label value".to_owned()),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed {
                return Err(format!("label `{label}` value is unterminated"));
            }
            labels.push((label, value));
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(c) => return Err(format!("expected `,` between labels, got `{c}`")),
            }
        }
    }
    let mut fields = rest.split_whitespace();
    let value_text = fields.next().ok_or("sample line has no value")?;
    let value =
        parse_value(value_text).ok_or_else(|| format!("unparseable value `{value_text}`"))?;
    // An optional trailing timestamp (integer milliseconds) is permitted.
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp `{ts}`"));
        }
    }
    if fields.next().is_some() {
        return Err("trailing garbage after sample value".to_owned());
    }
    labels.sort();
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Strips a histogram/summary suffix to the family name the `# TYPE`
/// declaration uses.
fn family_of(name: &str, types: &HashMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.contains_key(stem) {
                return stem.to_owned();
            }
        }
    }
    name.to_owned()
}

/// Per-family bookkeeping for the cross-line checks.
#[derive(Default)]
struct Family {
    buckets: Vec<(f64, f64)>,
    sum_seen: bool,
    count: Option<f64>,
    closed: bool,
}

/// Lints a complete exposition page. Returns the summary if clean, or
/// every violation found.
///
/// # Errors
///
/// A non-empty `Vec<Problem>` listing each violation with its line.
pub fn lint(text: &str) -> Result<Summary, Vec<Problem>> {
    let mut problems = Vec::new();
    let mut help: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut families: HashMap<String, Family> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut seen_samples: HashSet<String> = HashSet::new();
    let mut samples = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut problem = |message: String| {
            problems.push(Problem {
                line: line_no,
                message,
            })
        };
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, _)) = rest.split_once(' ').or(Some((rest, ""))) else {
                unreachable!()
            };
            if !valid_metric_name(name) {
                problem(format!("invalid metric name `{name}` in HELP"));
            } else if !help.insert(name.to_owned()) {
                problem(format!("duplicate HELP for `{name}`"));
            } else if families.contains_key(name) {
                problem(format!("HELP for `{name}` after its first sample"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                problem("TYPE line is missing the type".to_owned());
                continue;
            };
            if !valid_metric_name(name) {
                problem(format!("invalid metric name `{name}` in TYPE"));
                continue;
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                problem(format!("unknown type `{kind}` for `{name}`"));
            }
            if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                problem(format!("duplicate TYPE for `{name}`"));
            }
            if families.contains_key(name) {
                problem(format!("TYPE for `{name}` after its first sample"));
            }
            continue;
        }
        if line.starts_with('#') {
            // Free-form comment: ignored by scrapers, ignored here.
            continue;
        }
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(e) => {
                problem(e);
                continue;
            }
        };
        samples += 1;
        let key = format!("{}{:?}", sample.name, sample.labels);
        if !seen_samples.insert(key) {
            problem(format!(
                "duplicate sample for `{}` with identical labels",
                sample.name
            ));
        }
        let family_name = family_of(&sample.name, &types);
        if let Some(prev) = order.last() {
            if *prev != family_name && families.get(&family_name).is_some_and(|f| f.closed) {
                problem(format!(
                    "samples of `{family_name}` are not contiguous (resumed after `{prev}`)"
                ));
            }
        }
        if order.last() != Some(&family_name) {
            if let Some(prev) = order.last() {
                if let Some(f) = families.get_mut(prev) {
                    f.closed = true;
                }
            }
            order.push(family_name.clone());
        }
        let family = families.entry(family_name.clone()).or_default();
        let is_histogram = types.get(&family_name).map(String::as_str) == Some("histogram");
        if is_histogram {
            if sample.name.ends_with("_bucket") {
                match sample.labels.iter().find(|(l, _)| l == "le") {
                    Some((_, bound)) => match parse_value(bound) {
                        Some(le) => family.buckets.push((le, sample.value)),
                        None => problem(format!("unparseable `le` bound `{bound}`")),
                    },
                    None => problem(format!("`{}` has no `le` label", sample.name)),
                }
            } else if sample.name.ends_with("_sum") {
                family.sum_seen = true;
            } else if sample.name.ends_with("_count") {
                family.count = Some(sample.value);
            } else {
                problem(format!(
                    "histogram `{family_name}` has non-histogram sample `{}`",
                    sample.name
                ));
            }
        }
    }

    // Whole-family checks once the page is fully read.
    for (name, family) in &families {
        if types.get(name).map(String::as_str) != Some("histogram") {
            continue;
        }
        let line = text.lines().count();
        let mut problem = |message: String| problems.push(Problem { line, message });
        for pair in family.buckets.windows(2) {
            if pair[1].0 < pair[0].0 {
                problem(format!("histogram `{name}` `le` bounds are not sorted"));
            }
            if pair[1].1 < pair[0].1 {
                problem(format!(
                    "histogram `{name}` bucket counts are not cumulative"
                ));
            }
        }
        match family.buckets.last() {
            Some((le, inf_count)) if le.is_infinite() => {
                if let Some(count) = family.count {
                    if (count - inf_count).abs() > f64::EPSILON {
                        problem(format!(
                            "histogram `{name}` +Inf bucket {inf_count} != _count {count}"
                        ));
                    }
                }
            }
            Some(_) => problem(format!("histogram `{name}` has no `+Inf` bucket")),
            None => problem(format!("histogram `{name}` has no buckets")),
        }
        if !family.sum_seen {
            problem(format!("histogram `{name}` has no `_sum` sample"));
        }
        if family.count.is_none() {
            problem(format!("histogram `{name}` has no `_count` sample"));
        }
    }

    if problems.is_empty() {
        Ok(Summary {
            families: families.len(),
            samples,
        })
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "\
# HELP app_requests_total Requests served\n\
# TYPE app_requests_total counter\n\
app_requests_total 42\n\
# HELP app_latency_seconds Request latency\n\
# TYPE app_latency_seconds histogram\n\
app_latency_seconds_bucket{le=\"0.1\"} 3\n\
app_latency_seconds_bucket{le=\"1\"} 9\n\
app_latency_seconds_bucket{le=\"+Inf\"} 10\n\
app_latency_seconds_sum 4.5\n\
app_latency_seconds_count 10\n";

    #[test]
    fn clean_page_passes() {
        let summary = lint(CLEAN).expect("clean");
        assert_eq!(summary.families, 2);
        assert_eq!(summary.samples, 6);
    }

    fn first_problem(text: &str) -> String {
        lint(text).expect_err("should be flagged")[0]
            .message
            .clone()
    }

    #[test]
    fn bad_names_types_and_values_are_flagged() {
        assert!(first_problem("9metric 1\n").contains("invalid metric name"));
        assert!(first_problem("# TYPE m widget\nm 1\n").contains("unknown type"));
        assert!(first_problem("m not_a_number\n").contains("unparseable value"));
        assert!(first_problem("m{9bad=\"x\"} 1\n").contains("invalid label name"));
        assert!(first_problem("m{l=\"x} 1\n").contains("unterminated"));
        assert!(first_problem("m 1\nm 2\n").contains("duplicate sample"));
        assert!(
            first_problem("# TYPE m counter\n# TYPE m counter\nm 1\n").contains("duplicate TYPE")
        );
        assert!(first_problem("m 1\n# HELP m late\n").contains("after its first sample"));
    }

    #[test]
    fn histogram_shape_is_enforced() {
        let unsorted = "# TYPE h histogram\n\
            h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n\
            h_sum 1\nh_count 3\n";
        let problems = lint(unsorted).expect_err("unsorted bounds");
        assert!(problems.iter().any(|p| p.message.contains("not sorted")));

        let non_cumulative = "# TYPE h histogram\n\
            h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        let problems = lint(non_cumulative).expect_err("shrinking counts");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("not cumulative")));

        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let problems = lint(no_inf).expect_err("missing +Inf");
        assert!(problems.iter().any(|p| p.message.contains("+Inf")));

        let count_mismatch = "# TYPE h histogram\n\
            h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        let problems = lint(count_mismatch).expect_err("count mismatch");
        assert!(problems.iter().any(|p| p.message.contains("!= _count")));

        let missing_sum = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        let problems = lint(missing_sum).expect_err("missing sum");
        assert!(problems.iter().any(|p| p.message.contains("_sum")));
    }

    #[test]
    fn interleaved_families_are_flagged() {
        let page = "# TYPE a counter\n# TYPE b counter\na 1\nb 2\na{l=\"x\"} 3\n";
        let problems = lint(page).expect_err("a resumed after b");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("not contiguous")));
    }

    #[test]
    fn labels_escapes_and_timestamps_parse() {
        let page = "m{path=\"a\\\"b\\\\c\",other=\"y\"} 1 1700000000000\n";
        let summary = lint(page).expect("escaped labels are fine");
        assert_eq!(summary.samples, 1);
        assert!(lint("m 1 not_a_ts\n").is_err());
    }
}
