//! CI front end for the [`promlint`] linter.
//!
//! Usage: `promlint FILE...` (or `-` for stdin). Prints each violation
//! with its file and line; exits 0 when every page is clean, 1 otherwise.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: promlint FILE... (- for stdin)");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for file in &files {
        let text = if file == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("promlint: reading stdin: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("promlint: cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        match promlint::lint(&text) {
            Ok(summary) => println!(
                "{file}: OK ({} samples across {} metric families)",
                summary.samples, summary.families
            ),
            Err(problems) => {
                failed = true;
                for p in &problems {
                    eprintln!("{file}:{p}");
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
