//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of the exact `rand` 0.8 API
//! surface it uses: `StdRng::seed_from_u64`, `Rng::gen_range` over (half-open
//! and inclusive) integer ranges, `Rng::gen_bool`, and `Rng::gen` for
//! primitive integers. Generation is deterministic per seed, which is all the
//! workspace's property tests and corpus generators rely on; the stream is
//! *not* bit-compatible with upstream `StdRng` (a ChaCha12 core) — it is a
//! SplitMix64 sequence, which has more than adequate statistical quality for
//! test-input shaping.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`. Deterministic per seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
///
/// The single generic [`SampleRange`] impl below is keyed on this trait so
/// type inference flows from the expected result type back into the range's
/// literals, exactly as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive: false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_wide = lo as i128;
                let hi_wide = hi as i128;
                let span = (hi_wide - lo_wide) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo_wide + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (`Range` or `RangeInclusive`).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// One uniform value of an inferred primitive type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG (SplitMix64). Stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush; more than enough for test-input shaping.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
