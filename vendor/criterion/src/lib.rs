//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small wall-clock benchmark runner exposing the criterion API surface its
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, and `Bencher::iter`. Each benchmark is warmed
//! up, then timed over an iteration count sized to a fixed per-benchmark
//! budget; the mean per-iteration time is printed in criterion's familiar
//! `group/name  time: …` shape. Statistical analysis (outlier detection,
//! regression against saved baselines, HTML reports) is intentionally
//! absent. Passing `--test` (as `cargo test --benches` does) runs every
//! routine once, to completion, without timing loops.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard hint; mirrors `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// One quick pass per routine instead of a timed loop (`--test` mode).
    test_mode: bool,
    /// Soft measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            budget: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test` only; other flags that
    /// `cargo bench` forwards, like `--bench` or filters, are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured samples (upper bound here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the soft measurement budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| routine(b));
        self
    }

    /// Runs one benchmark routine parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op hook).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("{label}: test passed");
            return;
        }
        // Warmup + estimate with a single iteration.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let est = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.criterion.budget;
        let fit = (budget.as_nanos() / est.as_nanos()).max(1);
        let iters = (fit.min(self.sample_size as u128)) as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!("{label}  time: [{} ({} iters)]", format_time(mean), iters);
    }
}

/// Passed to each routine; runs and times the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_routines_and_counts_iters() {
        let mut c = Criterion {
            test_mode: false,
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls >= 2, "warmup + measured iterations, got {calls}");
    }
}
