//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing shim covering exactly the surface its test
//! suites use: the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, `any::<T>()`
//! strategies for primitive integers, and `prop_assert!` /
//! `prop_assert_eq!`. Cases are generated deterministically (seeded from the
//! test's module path and name), so failures reproduce exactly. No shrinking
//! is performed: a failing case panics with the generated inputs so it can
//! be replayed as a unit test.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case number `case` of the property seeded by `fn_seed`.
        pub fn for_case(fn_seed: u64, case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                fn_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property case (raised by `prop_assert!`-family macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Constructs a failure with the given reason.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    /// A source of generated values for one property argument.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generates one value.
        fn new_value(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// FNV-1a hash of a static string; seeds per-property RNG streams.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines deterministic property tests.
///
/// Supports the subset of upstream syntax this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in any::<u64>()) {
///         prop_assert!(x == x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_properties {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __fn_seed =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __fn_seed,
                        u64::from(__case),
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let mut __inputs = ::std::string::String::new();
                    $(
                        __inputs.push_str(concat!(stringify!($arg), " = "));
                        __inputs.push_str(&::std::format!("{:?}; ", &$arg));
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// input reporting) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_vary(x in any::<u64>(), y in any::<u64>()) {
            // Same-case x/y come from one stream, so both draws exist and
            // wrapping arithmetic on them round-trips.
            prop_assert_eq!(x.wrapping_add(y).wrapping_sub(y), x);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_case(crate::fnv1a("t"), 3);
        let mut b = crate::test_runner::TestRng::for_case(crate::fnv1a("t"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
