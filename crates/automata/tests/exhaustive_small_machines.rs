//! Exhaustive testing over *all* small machines: every two-state NFA over
//! a one-letter (plus epsilon) alphabet. Property tests sample; these
//! enumerate — any systematic defect in determinization, minimization,
//! complementation, or the language predicates on small machines is caught
//! unconditionally.

use dprle_automata::{
    canonical_key, complement, determinize, equivalent, is_subset, minimize, ops, ByteClass, Nfa,
    StateId,
};

/// Builds every 2-state machine over {a}: each of the 4 ordered state
/// pairs may carry an `a`-edge and/or an ε-edge, and each state may be
/// final. Start is state 0. That is 2^8 × 4 = 1024 machines.
fn all_two_state_machines() -> Vec<Nfa> {
    let mut out = Vec::new();
    let pairs = [(0u32, 0u32), (0, 1), (1, 0), (1, 1)];
    for edge_mask in 0u32..16 {
        for eps_mask in 0u32..16 {
            for final_mask in 0u32..4 {
                let mut m = Nfa::new();
                let s1 = m.add_state();
                let ids = [m.start(), s1];
                for (i, &(f, t)) in pairs.iter().enumerate() {
                    if edge_mask & (1 << i) != 0 {
                        m.add_edge(ids[f as usize], ByteClass::singleton(b'a'), ids[t as usize]);
                    }
                    if eps_mask & (1 << i) != 0 {
                        m.add_eps(ids[f as usize], ids[t as usize]);
                    }
                }
                for (i, &id) in ids.iter().enumerate() {
                    if final_mask & (1 << i) != 0 {
                        m.add_final(id);
                    }
                }
                out.push(m);
            }
        }
    }
    out
}

const A: &[u8] = b"a";
const DEPTH: usize = 6;

#[test]
fn determinize_minimize_complement_agree_on_all_small_machines() {
    for (i, m) in all_two_state_machines().iter().enumerate() {
        let reference = m.enumerate_upto(A, DEPTH);
        // Determinization preserves the language.
        let d = determinize(m).to_nfa();
        assert_eq!(d.enumerate_upto(A, DEPTH), reference, "determinize #{i}");
        // Minimization preserves the language.
        let min = minimize(m);
        assert_eq!(min.enumerate_upto(A, DEPTH), reference, "minimize #{i}");
        // Complement flips membership for each word.
        let c = complement(m);
        for n in 0..=DEPTH {
            let w = vec![b'a'; n];
            assert_eq!(m.contains(&w), !c.contains(&w), "complement #{i} on a^{n}");
        }
        // Emptiness agrees with enumeration.
        assert_eq!(
            m.is_empty_language(),
            reference.is_empty() && deep_empty(m),
            "#{i}"
        );
    }
}

/// For a unary 2-state machine, any nonempty language has a word of length
/// ≤ 2 (pumping at machine size), so the bounded enumeration is decisive.
fn deep_empty(m: &Nfa) -> bool {
    m.enumerate_upto(A, 2).is_empty()
}

#[test]
fn canonical_keys_partition_all_small_machines() {
    let machines = all_two_state_machines();
    // Group by canonical key; within a group all must be equivalent, and
    // spot-check across groups for inequivalence.
    use std::collections::HashMap;
    let mut groups: HashMap<_, Vec<usize>> = HashMap::new();
    for (i, m) in machines.iter().enumerate() {
        groups.entry(canonical_key(m)).or_default().push(i);
    }
    // Unary languages recognized by 2-state NFAs are few; the partition
    // must be drastically coarser than the machine count.
    assert!(
        groups.len() < 40,
        "only {} distinct languages",
        groups.len()
    );
    for members in groups.values() {
        let first = &machines[members[0]];
        for &j in &members[1..] {
            assert!(
                equivalent(first, &machines[j]),
                "same key must mean same language ({} vs {j})",
                members[0]
            );
        }
    }
    // Distinct keys disagree on some short word (pumping bound).
    let keys: Vec<_> = groups.iter().take(8).collect();
    for (i, (_, a)) in keys.iter().enumerate() {
        for (_, b) in keys.iter().skip(i + 1) {
            let (ma, mb) = (&machines[a[0]], &machines[b[0]]);
            assert!(!equivalent(ma, mb), "distinct keys, same language");
        }
    }
}

#[test]
fn union_and_intersection_algebra_on_sampled_pairs() {
    let machines = all_two_state_machines();
    // Sample a deterministic spread of pairs (full cross product is 1M).
    for i in (0..machines.len()).step_by(97) {
        for j in (0..machines.len()).step_by(131) {
            let (a, b) = (&machines[i], &machines[j]);
            let u = ops::union(a, b);
            let n = ops::intersect(a, b).nfa;
            for len in 0..=4usize {
                let w = vec![b'a'; len];
                assert_eq!(
                    u.contains(&w),
                    a.contains(&w) || b.contains(&w),
                    "{i},{j} union a^{len}"
                );
                assert_eq!(
                    n.contains(&w),
                    a.contains(&w) && b.contains(&w),
                    "{i},{j} inter a^{len}"
                );
            }
            // De Morgan on machines: ¬(A ∪ B) ≡ ¬A ∩ ¬B.
            if i % 485 == 0 && j % 655 == 0 {
                let lhs = complement(&u);
                let rhs = ops::intersect(&complement(a), &complement(b)).nfa;
                assert!(equivalent(&lhs, &rhs), "{i},{j} De Morgan");
            }
        }
    }
}

#[test]
fn inclusion_is_a_partial_order_on_sampled_machines() {
    let machines = all_two_state_machines();
    let sample: Vec<&Nfa> = machines.iter().step_by(53).collect();
    for a in &sample {
        assert!(is_subset(a, a), "reflexive");
    }
    for a in &sample {
        for b in &sample {
            if is_subset(a, b) && is_subset(b, a) {
                assert!(equivalent(a, b), "antisymmetric");
            }
        }
    }
    // Transitivity on a deterministic triple sample.
    for (x, a) in sample.iter().enumerate().step_by(3) {
        for (y, b) in sample.iter().enumerate().step_by(4) {
            for (z, c) in sample.iter().enumerate().step_by(5) {
                if is_subset(a, b) && is_subset(b, c) {
                    assert!(is_subset(a, c), "transitive {x},{y},{z}");
                }
            }
        }
    }
}

#[test]
fn trim_never_changes_language_on_all_small_machines() {
    for (i, m) in all_two_state_machines().iter().enumerate() {
        let (t, _) = m.trim();
        assert_eq!(
            t.enumerate_upto(A, DEPTH),
            m.enumerate_upto(A, DEPTH),
            "trim #{i}"
        );
        assert!(t.num_states() <= m.num_states());
    }
}

#[test]
fn induce_slices_relate_to_paths() {
    // For every machine and every state q: induce_from_final(q) ·
    // induce_from_start(q) ⊆ L whenever q is reachable and co-reachable —
    // the waypoint property the CI proof leans on (any accepted word
    // passing through q splits there).
    for (i, m) in all_two_state_machines().iter().enumerate().step_by(7) {
        for q in [StateId(0), StateId(1)] {
            let to_q = m.induce_from_final(q);
            let from_q = m.induce_from_start(q);
            if to_q.is_empty_language() || from_q.is_empty_language() {
                continue;
            }
            let through = ops::concat(&to_q, &from_q).nfa;
            assert!(
                is_subset(&through, m),
                "machine #{i}, waypoint {q}: split words must be accepted"
            );
        }
    }
}
