//! Pluggable language-inclusion engines.
//!
//! Every `⊆` judgment in the decision procedure — subset, equivalence,
//! counterexample extraction, intersection emptiness — goes through one of
//! the [`InclusionEngine`] implementations defined here:
//!
//! * [`EagerEngine`] — the textbook path: determinize and complement the
//!   right-hand side, build the full reachable product with the left-hand
//!   side, and test emptiness. Exponential in the RHS in the worst case
//!   (inherent to the problem), and it pays that worst case up front even
//!   when a counterexample or an early subsumption would settle the query.
//! * [`AntichainEngine`] — lazy inclusion checking in the style of
//!   De Wulf–Doyen–Henzinger–Raskin: interleave an on-the-fly subset
//!   construction of the RHS with product exploration over *macrostates*
//!   `(q, S)` (one LHS state, one ε-closed RHS subset), pruning any new
//!   macrostate subsumed by an already-visited `(q, S')` with `S' ⊆ S`.
//!   Only the reachable, non-subsumed part of the subset construction is
//!   ever built, which is what makes budgeted inclusion on determinization
//!   blowups decidable where the eager path can only abort.
//! * [`crate::derivative::DerivativeEngine`] — Brzozowski/Antimirov-style
//!   derivative pairs with similarity-based memoization: both operands
//!   stay symbolic (no product, no up-front subset construction), with
//!   pruning on *both* sides of the query instead of only the RHS.
//! * [`AutoEngine`] — not a decision procedure but a dispatcher: resolves
//!   each query to one of the concrete engines above via the checked-in
//!   [`crate::costmodel`] fitted on the fig12 ledger corpus.
//!
//! All engines share the same cheap structural pre-checks (an empty LHS is
//! included in everything) and the same budget hooks: a macrostate cap and
//! a wall-clock deadline, both checked inside the frontier loop, so a
//! breach surfaces as a typed [`InclusionAbort`] carrying the partial
//! [`InclusionCost`] instead of an unbounded blowup.
//!
//! Engine choice never changes an answer — the differential test suite and
//! the `differential-inclusion` CI job hold every implementation to
//! bit-identical verdicts — so memo tables keyed on canonical language
//! fingerprints remain engine-invariant.

use crate::byteclass::{minterms, ByteClass};
use crate::dfa;
use crate::nfa::{Nfa, StateId};
use crate::ops;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::time::Instant;

/// Which [`InclusionEngine`] implementation answers language queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineKind {
    /// Determinize/complement/product: materializes the full RHS subset
    /// construction before exploring the product.
    Eager,
    /// Lazy on-the-fly subset construction with antichain subsumption
    /// pruning (the default).
    #[default]
    Antichain,
    /// Derivative-pair search with similarity-based memoization
    /// ([`crate::derivative::DerivativeEngine`]): product-free on both
    /// sides of the query.
    Derivative,
    /// Per-query cost-predicted selection among the concrete engines,
    /// driven by the checked-in [`crate::costmodel`] fitted on the fig12
    /// ledger corpus.
    Auto,
}

impl EngineKind {
    /// Every selectable engine, in CLI listing order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Eager,
        EngineKind::Antichain,
        EngineKind::Derivative,
        EngineKind::Auto,
    ];

    /// The engines that run their own search (everything but `auto`,
    /// which delegates to one of these per query).
    pub const CONCRETE: [EngineKind; 3] = [
        EngineKind::Eager,
        EngineKind::Antichain,
        EngineKind::Derivative,
    ];

    /// The CLI-facing name (`--inclusion=<name>`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Eager => "eager",
            EngineKind::Antichain => "antichain",
            EngineKind::Derivative => "derivative",
            EngineKind::Auto => "auto",
        }
    }

    /// Parses a CLI-facing name back into a kind.
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource limits enforced inside an engine's work loop.
///
/// `max_macrostates` caps the states an engine may *explore* (subset-states
/// plus product pairs for the eager engine, frontier macrostates for the
/// antichain engine) — the same per-op semantics as
/// [`ops::try_intersect`]'s state cap. `deadline` is an absolute wall-clock
/// cutoff. The default is unlimited.
#[derive(Clone, Copy, Debug, Default)]
pub struct InclusionLimits {
    /// Abort once this many macrostates were explored.
    pub max_macrostates: Option<u64>,
    /// Abort once this instant has passed.
    pub deadline: Option<Instant>,
}

impl InclusionLimits {
    /// No limits: every query runs to completion.
    pub const UNLIMITED: InclusionLimits = InclusionLimits {
        max_macrostates: None,
        deadline: None,
    };

    /// The limits left after `spent` macrostates of earlier work in the
    /// same query (used when one logical query runs several passes, e.g.
    /// the two directions of an equivalence check).
    fn minus(self, spent: u64) -> InclusionLimits {
        InclusionLimits {
            max_macrostates: self.max_macrostates.map(|m| m.saturating_sub(spent)),
            deadline: self.deadline,
        }
    }
}

/// Cost report of one inclusion query, whatever the engine.
///
/// `macrostates` is the engine-agnostic work measure: subset-states built
/// plus product pairs explored (eager), or frontier macrostates popped
/// (antichain). The antichain-only fields are zero for the eager engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InclusionCost {
    /// Macrostates explored.
    pub macrostates: u64,
    /// Final antichain size (maximal frontier knowledge retained).
    pub antichain_size: u64,
    /// Macrostates dropped by antichain subsumption.
    pub prunes: u64,
}

impl InclusionCost {
    /// Accumulates another pass's cost into this one.
    pub fn absorb(&mut self, other: InclusionCost) {
        self.macrostates += other.macrostates;
        self.antichain_size += other.antichain_size;
        self.prunes += other.prunes;
    }
}

/// A budget breach inside an engine's frontier loop.
///
/// Carries the partial [`InclusionCost`] at the moment of the breach so
/// callers can fold the wasted work into their metrics snapshot before
/// propagating a `ResourceExhausted`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InclusionAbort {
    /// The `max_macrostates` cap was hit.
    MacrostateCap {
        /// The cap that was breached.
        limit: u64,
        /// Work done up to the breach.
        cost: InclusionCost,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// Work done up to the breach.
        cost: InclusionCost,
    },
}

impl InclusionAbort {
    /// The partial work report carried by either variant.
    pub fn cost(&self) -> InclusionCost {
        match *self {
            InclusionAbort::MacrostateCap { cost, .. } => cost,
            InclusionAbort::Deadline { cost } => cost,
        }
    }
}

/// Cheap structural pre-checks shared by every engine: answers that need
/// no subset construction at all. (The `Lang`-level fingerprint equality
/// check lives in `LangStore::is_subset`, before the engine is consulted.)
pub fn subset_precheck(a: &Nfa, b: &Nfa) -> Option<bool> {
    if a.is_empty_language() {
        // ∅ ⊆ L(b) for every b.
        return Some(true);
    }
    if b.is_empty_language() {
        // L(a) ≠ ∅ here, and nothing is included in ∅.
        return Some(false);
    }
    None
}

/// A pluggable decision procedure for the language queries the solver
/// issues: inclusion, equivalence, counterexample extraction, and
/// intersection emptiness.
///
/// The `try_*` entry points enforce [`InclusionLimits`] inside their work
/// loops and report the work done via [`InclusionCost`]; the plain
/// conveniences run unlimited. Implementations must be pure: same operands
/// in, same verdict and cost out, no shared mutable state — that is what
/// keeps memoized results engine-invariant and parallel solves
/// deterministic.
pub trait InclusionEngine: Send + Sync {
    /// Which implementation this is.
    fn kind(&self) -> EngineKind;

    /// The kind that will actually run `a`-vs-`b` queries: concrete
    /// engines answer themselves, while [`AutoEngine`] resolves to the
    /// concrete kind its cost model picks for these operands. Callers
    /// that attribute work per engine (the ledger, metrics) should
    /// resolve first so `auto` queries are charged to their winner.
    fn resolve(&self, _a: &Nfa, _b: &Nfa) -> EngineKind {
        self.kind()
    }

    /// Is `L(a) ⊆ L(b)`? Budgeted.
    fn try_subset(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort>;

    /// A shortest member of `L(a) \ L(b)`, or `None` when `L(a) ⊆ L(b)`.
    /// Budgeted.
    fn try_counterexample(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort>;

    /// Is `L(a) = L(b)`? Budgeted; the two directions share the budget.
    fn try_equivalent(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let (forward, mut cost) = self.try_subset(a, b, limits)?;
        if !forward {
            return Ok((false, cost));
        }
        let (backward, back_cost) = self
            .try_subset(b, a, &limits.minus(cost.macrostates))
            .map_err(|abort| absorb_abort(abort, cost))?;
        cost.absorb(back_cost);
        Ok((backward, cost))
    }

    /// Is `L(a) ∩ L(b) = ∅`? Budgeted.
    fn try_intersection_empty(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort>;

    /// Unlimited [`InclusionEngine::try_subset`].
    fn is_subset(&self, a: &Nfa, b: &Nfa) -> bool {
        self.is_subset_costed(a, b).0
    }

    /// Unlimited [`InclusionEngine::try_subset`], keeping the cost report.
    fn is_subset_costed(&self, a: &Nfa, b: &Nfa) -> (bool, InclusionCost) {
        self.try_subset(a, b, &InclusionLimits::UNLIMITED)
            .expect("unlimited queries cannot abort")
    }

    /// Unlimited [`InclusionEngine::try_equivalent`].
    fn equivalent(&self, a: &Nfa, b: &Nfa) -> bool {
        self.try_equivalent(a, b, &InclusionLimits::UNLIMITED)
            .expect("unlimited queries cannot abort")
            .0
    }

    /// Unlimited [`InclusionEngine::try_counterexample`].
    fn counterexample(&self, a: &Nfa, b: &Nfa) -> Option<Vec<u8>> {
        self.try_counterexample(a, b, &InclusionLimits::UNLIMITED)
            .expect("unlimited queries cannot abort")
            .0
    }

    /// Unlimited [`InclusionEngine::try_intersection_empty`].
    fn intersection_empty(&self, a: &Nfa, b: &Nfa) -> bool {
        self.try_intersection_empty(a, b, &InclusionLimits::UNLIMITED)
            .expect("unlimited queries cannot abort")
            .0
    }
}

/// Re-bases an abort from a later pass onto the cost of earlier passes in
/// the same logical query.
fn absorb_abort(abort: InclusionAbort, mut earlier: InclusionCost) -> InclusionAbort {
    earlier.absorb(abort.cost());
    match abort {
        InclusionAbort::MacrostateCap { limit, .. } => InclusionAbort::MacrostateCap {
            limit,
            cost: earlier,
        },
        InclusionAbort::Deadline { .. } => InclusionAbort::Deadline { cost: earlier },
    }
}

fn deadline_passed(limits: &InclusionLimits) -> bool {
    limits.deadline.is_some_and(|d| Instant::now() >= d)
}

/// The static engine for `kind`. Engines are stateless, so one shared
/// instance per kind serves every caller.
pub fn engine(kind: EngineKind) -> &'static dyn InclusionEngine {
    static EAGER: EagerEngine = EagerEngine;
    static ANTICHAIN: AntichainEngine = AntichainEngine;
    static DERIVATIVE: crate::derivative::DerivativeEngine = crate::derivative::DerivativeEngine;
    static AUTO: AutoEngine = AutoEngine;
    match kind {
        EngineKind::Eager => &EAGER,
        EngineKind::Antichain => &ANTICHAIN,
        EngineKind::Derivative => &DERIVATIVE,
        EngineKind::Auto => &AUTO,
    }
}

/// The engine free functions like [`crate::is_subset`] dispatch to.
pub fn default_engine() -> &'static dyn InclusionEngine {
    engine(EngineKind::default())
}

// ---------------------------------------------------------------------------
// Eager engine
// ---------------------------------------------------------------------------

/// The determinize/complement/product decision path (the pre-engine
/// `dfa::is_subset` behavior), with budget checks threaded through the
/// subset construction and the product BFS.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerEngine;

impl EagerEngine {
    /// Determinizes `m` under the remaining budget and returns its
    /// complement as an NFA, charging the subset-states built.
    fn complement_budgeted(
        &self,
        m: &Nfa,
        limits: &InclusionLimits,
        cost: &mut InclusionCost,
    ) -> Result<Nfa, InclusionAbort> {
        let (d, _) = self.determinize_budgeted(m, limits, cost)?;
        Ok(d.complement().to_nfa().trim().0)
    }

    /// Budgeted subset construction, charging produced DFA states as
    /// macrostates.
    fn determinize_budgeted(
        &self,
        m: &Nfa,
        limits: &InclusionLimits,
        cost: &mut InclusionCost,
    ) -> Result<(dfa::Dfa, dfa::DeterminizeCost), InclusionAbort> {
        if deadline_passed(limits) {
            return Err(InclusionAbort::Deadline { cost: *cost });
        }
        let remaining = remaining_cap(limits, cost.macrostates);
        match dfa::try_determinize_counted(m, remaining) {
            Some((d, det_cost)) => {
                cost.macrostates += det_cost.dfa_states as u64;
                Ok((d, det_cost))
            }
            None => {
                cost.macrostates += remaining as u64;
                Err(InclusionAbort::MacrostateCap {
                    limit: limits.max_macrostates.unwrap_or(u64::MAX),
                    cost: *cost,
                })
            }
        }
    }

    /// Budgeted reachable-product construction, charging explored pairs.
    fn product_budgeted(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
        cost: &mut InclusionCost,
    ) -> Result<ops::Product, InclusionAbort> {
        if deadline_passed(limits) {
            return Err(InclusionAbort::Deadline { cost: *cost });
        }
        let remaining = remaining_cap(limits, cost.macrostates);
        match ops::try_intersect(a, b, remaining) {
            Some(product) => {
                cost.macrostates += product.pairs.len() as u64;
                Ok(product)
            }
            None => {
                cost.macrostates += remaining as u64;
                Err(InclusionAbort::MacrostateCap {
                    limit: limits.max_macrostates.unwrap_or(u64::MAX),
                    cost: *cost,
                })
            }
        }
    }
}

/// The macrostate budget left after `spent`, as a usize cap for the
/// state-counted constructions.
fn remaining_cap(limits: &InclusionLimits, spent: u64) -> usize {
    match limits.max_macrostates {
        Some(max) => usize::try_from(max.saturating_sub(spent)).unwrap_or(usize::MAX),
        None => usize::MAX,
    }
}

impl InclusionEngine for EagerEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Eager
    }

    fn try_subset(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        if let Some(answer) = subset_precheck(a, b) {
            return Ok((answer, cost));
        }
        let not_b = self.complement_budgeted(b, limits, &mut cost)?;
        let product = self.product_budgeted(a, &not_b, limits, &mut cost)?;
        Ok((product.nfa.is_empty_language(), cost))
    }

    fn try_counterexample(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        if subset_precheck(a, b) == Some(true) {
            return Ok((None, cost));
        }
        let not_b = self.complement_budgeted(b, limits, &mut cost)?;
        let product = self.product_budgeted(a, &not_b, limits, &mut cost)?;
        Ok((product.nfa.shortest_member(), cost))
    }

    /// Each side is determinized at most once: `a ⊆ b` runs against the
    /// complement of `det(b)` with `a` as-is, and only if that direction
    /// holds is `det(a)` built for the reverse check. (The pre-engine code
    /// re-determinized a side per direction.)
    fn try_equivalent(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        match (a.is_empty_language(), b.is_empty_language()) {
            (true, true) => return Ok((true, cost)),
            (true, false) | (false, true) => return Ok((false, cost)),
            (false, false) => {}
        }
        let not_b = self.complement_budgeted(b, limits, &mut cost)?;
        let forward = self.product_budgeted(a, &not_b, limits, &mut cost)?;
        if !forward.nfa.is_empty_language() {
            return Ok((false, cost));
        }
        let not_a = self.complement_budgeted(a, limits, &mut cost)?;
        let backward = self.product_budgeted(b, &not_a, limits, &mut cost)?;
        Ok((backward.nfa.is_empty_language(), cost))
    }

    fn try_intersection_empty(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        let product = self.product_budgeted(a, b, limits, &mut cost)?;
        Ok((product.nfa.is_empty_language(), cost))
    }
}

// ---------------------------------------------------------------------------
// Antichain engine
// ---------------------------------------------------------------------------

/// Lazy inclusion: on-the-fly subset construction of the RHS interleaved
/// with LHS exploration, pruned by antichain subsumption.
///
/// The frontier holds macrostates `(q, S)` — `q` an ε-closed-reachable LHS
/// state, `S` the ε-closed set of RHS states reachable on the same input.
/// A counterexample exists iff some reachable macrostate has `q` final and
/// `S` free of finals. A new macrostate is *subsumed* (and dropped) when a
/// visited `(q, S')` with `S' ⊆ S` exists: every word rejected from `S` is
/// rejected from `S'` too, so the smaller set finds every counterexample
/// the larger one would, no later. Conversely, inserting a new minimal `S`
/// evicts visited supersets from the pruning store — they stay queued (BFS
/// order, and thus shortest-counterexample extraction, is preserved) but
/// no longer block future inserts.
#[derive(Clone, Copy, Debug, Default)]
pub struct AntichainEngine;

/// The per-LHS-state antichain of minimal visited RHS subsets.
struct Antichain {
    sets: HashMap<StateId, Vec<Rc<BTreeSet<StateId>>>>,
}

impl Antichain {
    fn new() -> Antichain {
        Antichain {
            sets: HashMap::new(),
        }
    }

    /// Inserts `(q, s)` unless a visited `(q, s')` with `s' ⊆ s` subsumes
    /// it. Returns whether the macrostate is new (and must be queued).
    fn insert(&mut self, q: StateId, s: &Rc<BTreeSet<StateId>>, cost: &mut InclusionCost) -> bool {
        let entry = self.sets.entry(q).or_default();
        if entry.iter().any(|t| t.is_subset(s)) {
            cost.prunes += 1;
            return false;
        }
        // `s` is a new minimal element: visited strict supersets can never
        // prune anything `s` would not, so drop them from the store.
        entry.retain(|t| !s.is_subset(t));
        entry.push(s.clone());
        true
    }

    fn size(&self) -> u64 {
        self.sets.values().map(|v| v.len() as u64).sum()
    }
}

impl AntichainEngine {
    /// The shared frontier search: returns a shortest counterexample to
    /// `L(a) ⊆ L(b)`, or `None` when the inclusion holds.
    fn counterexample_budgeted(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        if subset_precheck(a, b) == Some(true) {
            return Ok((None, cost));
        }
        // Minterms of *both* machines' classes: within a block, every byte
        // induces the same successor macrostate, so one representative
        // byte per block explores the whole alphabet.
        let classes: Vec<ByteClass> = a
            .edges()
            .map(|(_, c, _)| c)
            .chain(b.edges().map(|(_, c, _)| c))
            .collect();
        let alphabet = minterms(classes.iter());
        let rejecting = |s: &BTreeSet<StateId>| !s.iter().any(|q| b.is_final(*q));

        let s0 = Rc::new(b.eps_closure(&BTreeSet::from([b.start()])));
        let a0 = a.eps_closure(&BTreeSet::from([a.start()]));
        let mut antichain = Antichain::new();
        let mut queue: VecDeque<(StateId, Rc<BTreeSet<StateId>>, Vec<u8>)> = VecDeque::new();
        let s0_rejecting = rejecting(&s0);
        for &q in &a0 {
            if a.is_final(q) && s0_rejecting {
                // ε ∈ L(a) \ L(b).
                cost.antichain_size = antichain.size();
                return Ok((Some(Vec::new()), cost));
            }
            if antichain.insert(q, &s0, &mut cost) {
                queue.push_back((q, s0.clone(), Vec::new()));
            }
        }

        while let Some((q, s, word)) = queue.pop_front() {
            if let Some(cap) = limits.max_macrostates {
                if cost.macrostates >= cap {
                    cost.antichain_size = antichain.size();
                    return Err(InclusionAbort::MacrostateCap { limit: cap, cost });
                }
            }
            if deadline_passed(limits) {
                cost.antichain_size = antichain.size();
                return Err(InclusionAbort::Deadline { cost });
            }
            cost.macrostates += 1;
            let q_set = BTreeSet::from([q]);
            for block in &alphabet {
                let byte = block.min_byte().expect("minterm blocks are nonempty");
                let a_next = a.eps_closure(&a.step(&q_set, byte));
                if a_next.is_empty() {
                    continue;
                }
                let s_next = Rc::new(b.eps_closure(&b.step(&s, byte)));
                let s_next_rejecting = rejecting(&s_next);
                for &qn in &a_next {
                    if a.is_final(qn) && s_next_rejecting {
                        // First counterexample discovered is shortest: the
                        // BFS pops macrostates in word-length order and
                        // subsumption never removes queued entries.
                        let mut witness = word.clone();
                        witness.push(byte);
                        cost.antichain_size = antichain.size();
                        return Ok((Some(witness), cost));
                    }
                    if antichain.insert(qn, &s_next, &mut cost) {
                        let mut w = word.clone();
                        w.push(byte);
                        queue.push_back((qn, s_next.clone(), w));
                    }
                }
            }
        }
        cost.antichain_size = antichain.size();
        Ok((None, cost))
    }
}

impl InclusionEngine for AntichainEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Antichain
    }

    fn try_subset(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let (cex, cost) = self.counterexample_budgeted(a, b, limits)?;
        Ok((cex.is_none(), cost))
    }

    fn try_counterexample(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        self.counterexample_budgeted(a, b, limits)
    }

    /// Lazy intersection emptiness: the pair-BFS of [`ops::try_intersect`]
    /// without materializing the product, early-exiting at the first
    /// accepting pair.
    fn try_intersection_empty(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        let start = (a.start(), b.start());
        let mut seen: BTreeSet<(StateId, StateId)> = BTreeSet::from([start]);
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::from([start]);
        while let Some((p, q)) = queue.pop_front() {
            if let Some(cap) = limits.max_macrostates {
                if cost.macrostates >= cap {
                    return Err(InclusionAbort::MacrostateCap { limit: cap, cost });
                }
            }
            if deadline_passed(limits) {
                return Err(InclusionAbort::Deadline { cost });
            }
            cost.macrostates += 1;
            if a.is_final(p) && b.is_final(q) {
                return Ok((false, cost));
            }
            for &(ca, t1) in &a.state(p).edges {
                for &(cb, t2) in &b.state(q).edges {
                    if !ca.intersect(&cb).is_empty() && seen.insert((t1, t2)) {
                        queue.push_back((t1, t2));
                    }
                }
            }
            for &t1 in &a.state(p).eps {
                if seen.insert((t1, q)) {
                    queue.push_back((t1, q));
                }
            }
            for &t2 in &b.state(q).eps {
                if seen.insert((p, t2)) {
                    queue.push_back((p, t2));
                }
            }
        }
        Ok((true, cost))
    }
}

// ---------------------------------------------------------------------------
// Auto engine
// ---------------------------------------------------------------------------

/// Cost-predicted per-query selection: every call resolves the operands'
/// features through [`crate::costmodel::select`] and delegates to the
/// winning concrete engine. Selection is pure integer arithmetic over the
/// operands, so the engine inherits the purity contract — the same
/// operands always resolve to the same worker, keeping verdicts, costs,
/// ledgers, and journals deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoEngine;

impl InclusionEngine for AutoEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Auto
    }

    fn resolve(&self, a: &Nfa, b: &Nfa) -> EngineKind {
        crate::costmodel::select(&crate::costmodel::features(a, b))
    }

    fn try_subset(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        engine(self.resolve(a, b)).try_subset(a, b, limits)
    }

    fn try_counterexample(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        engine(self.resolve(a, b)).try_counterexample(a, b, limits)
    }

    /// Resolves once for the query and lets the winner run both
    /// directions, so the shared budget stays within one engine's cost
    /// accounting.
    fn try_equivalent(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        engine(self.resolve(a, b)).try_equivalent(a, b, limits)
    }

    fn try_intersection_empty(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        engine(self.resolve(a, b)).try_intersection_empty(a, b, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_nonempty_nfa, RandomNfaConfig};
    use crate::ops;

    fn engines() -> [&'static dyn InclusionEngine; 2] {
        [engine(EngineKind::Eager), engine(EngineKind::Antichain)]
    }

    #[test]
    fn kinds_round_trip_through_names() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::parse("bogus"), None);
        assert_eq!(EngineKind::default(), EngineKind::Antichain);
        assert!(
            EngineKind::CONCRETE.iter().all(|k| *k != EngineKind::Auto),
            "auto delegates; it is not a concrete engine"
        );
        for kind in EngineKind::CONCRETE {
            assert!(EngineKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn auto_engine_resolves_to_a_concrete_worker_and_agrees() {
        let auto = engine(EngineKind::Auto);
        let aa = Nfa::literal(b"aa");
        let astar = ops::star(&Nfa::literal(b"a"));
        let resolved = auto.resolve(&aa, &astar);
        assert_ne!(resolved, EngineKind::Auto);
        assert!(EngineKind::CONCRETE.contains(&resolved));
        // Resolution is pure: the same operands pick the same worker.
        assert_eq!(auto.resolve(&aa, &astar), resolved);
        // And concrete engines resolve to themselves.
        for kind in EngineKind::CONCRETE {
            assert_eq!(engine(kind).resolve(&aa, &astar), kind);
        }
        assert!(auto.is_subset(&aa, &astar));
        assert!(!auto.is_subset(&astar, &aa));
        assert!(!auto.equivalent(&aa, &astar));
        assert!(auto.intersection_empty(&Nfa::literal(b"ab"), &Nfa::literal(b"ba")));
        let cex = auto.counterexample(&astar, &aa).expect("inclusion fails");
        assert!(astar.contains(&cex));
        assert!(!aa.contains(&cex));
    }

    #[test]
    fn both_engines_agree_on_basic_judgments() {
        let aa = Nfa::literal(b"aa");
        let astar = ops::star(&Nfa::literal(b"a"));
        for e in engines() {
            assert!(e.is_subset(&aa, &astar), "{}", e.kind());
            assert!(!e.is_subset(&astar, &aa), "{}", e.kind());
            assert!(e.is_subset(&Nfa::empty_language(), &aa), "{}", e.kind());
            assert!(e.is_subset(&aa, &Nfa::sigma_star()), "{}", e.kind());
            assert!(!e.equivalent(&aa, &astar), "{}", e.kind());
            assert!(!e.equivalent(&astar, &ops::star(&aa)), "{}", e.kind());
        }
    }

    #[test]
    fn both_engines_find_shortest_counterexamples() {
        let astar = ops::star(&Nfa::literal(b"a"));
        let aa = Nfa::literal(b"aa");
        for e in engines() {
            let cex = e.counterexample(&astar, &aa).expect("inclusion fails");
            assert!(astar.contains(&cex), "{}", e.kind());
            assert!(!aa.contains(&cex), "{}", e.kind());
            assert!(cex.len() <= 1, "{}: ε or 'a', got {cex:?}", e.kind());
            assert_eq!(e.counterexample(&aa, &astar), None, "{}", e.kind());
        }
    }

    #[test]
    fn both_engines_agree_on_intersection_emptiness() {
        let a = Nfa::literal(b"ab");
        let b = Nfa::literal(b"ba");
        let pre = ops::concat(&Nfa::literal(b"ab"), &Nfa::sigma_star()).nfa;
        for e in engines() {
            assert!(e.intersection_empty(&a, &b), "{}", e.kind());
            assert!(!e.intersection_empty(&a, &pre), "{}", e.kind());
            assert!(
                e.intersection_empty(&Nfa::empty_language(), &Nfa::sigma_star()),
                "{}",
                e.kind()
            );
        }
    }

    #[test]
    fn antichain_matches_eager_on_random_pairs() {
        let config = RandomNfaConfig {
            states: 6,
            alphabet: vec![b'a', b'b'],
            ..Default::default()
        };
        let eager = engine(EngineKind::Eager);
        let antichain = engine(EngineKind::Antichain);
        for seed in 0..120u64 {
            let a = random_nonempty_nfa(seed, &config);
            let b = random_nonempty_nfa(seed.wrapping_add(1_000_003), &config);
            assert_eq!(
                eager.is_subset(&a, &b),
                antichain.is_subset(&a, &b),
                "seed {seed} a⊆b"
            );
            assert_eq!(
                eager.is_subset(&b, &a),
                antichain.is_subset(&b, &a),
                "seed {seed} b⊆a"
            );
            assert_eq!(
                eager.equivalent(&a, &b),
                antichain.equivalent(&a, &b),
                "seed {seed} a≡b"
            );
            assert_eq!(
                eager.intersection_empty(&a, &b),
                antichain.intersection_empty(&a, &b),
                "seed {seed} a∩b=∅"
            );
            // Counterexamples agree on existence and are valid witnesses of
            // equal (shortest) length.
            let ce = eager.counterexample(&a, &b);
            let ca = antichain.counterexample(&a, &b);
            assert_eq!(ce.is_some(), ca.is_some(), "seed {seed}");
            if let (Some(ce), Some(ca)) = (ce, ca) {
                assert_eq!(ce.len(), ca.len(), "seed {seed}: both are shortest");
                for w in [&ce, &ca] {
                    assert!(a.contains(w), "seed {seed}");
                    assert!(!b.contains(w), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn antichain_prunes_subsumed_macrostates() {
        // A union of redundant branches makes the RHS subset construction
        // revisit comparable subsets; the antichain must report prunes.
        let a = ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b'])));
        let b1 = ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b'])));
        let b2 = ops::concat(
            &Nfa::class(ByteClass::singleton(b'a')),
            &ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b']))),
        )
        .nfa;
        let b = ops::union(&b1, &b2);
        let engine = AntichainEngine;
        let (holds, cost) = engine.is_subset_costed(&a, &b);
        assert!(holds);
        assert!(cost.macrostates > 0);
        assert!(cost.antichain_size > 0);
        assert!(cost.prunes > 0, "redundant RHS branches must be pruned");
    }

    #[test]
    fn frontier_loop_enforces_macrostate_cap() {
        // Σ* ⊆ (ab)* explores several macrostates; a cap of 1 must abort
        // from inside the loop with the partial work attached.
        let a = Nfa::sigma_star();
        let b = ops::star(&Nfa::literal(b"ab"));
        let limits = InclusionLimits {
            max_macrostates: Some(1),
            deadline: None,
        };
        let err = AntichainEngine
            .try_subset(&a, &b, &limits)
            .expect_err("cap of 1 must trip");
        match err {
            InclusionAbort::MacrostateCap { limit, cost } => {
                assert_eq!(limit, 1);
                assert_eq!(cost.macrostates, 1, "exactly the cap was explored");
            }
            other => panic!("expected macrostate cap, got {other:?}"),
        }
        // The same query decides fine above its true cost.
        let unlimited = AntichainEngine.is_subset_costed(&a, &b);
        assert!(!unlimited.0, "Σ* ⊄ (ab)*");
    }

    #[test]
    fn frontier_loop_enforces_deadline() {
        let a = Nfa::sigma_star();
        let b = ops::star(&Nfa::literal(b"ab"));
        let limits = InclusionLimits {
            max_macrostates: None,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        let err = AntichainEngine
            .try_subset(&a, &b, &limits)
            .expect_err("expired deadline must trip");
        assert!(matches!(err, InclusionAbort::Deadline { .. }));
    }

    #[test]
    fn eager_engine_aborts_under_the_same_budget() {
        let a = Nfa::sigma_star();
        let b = ops::star(&Nfa::literal(b"ab"));
        let limits = InclusionLimits {
            max_macrostates: Some(1),
            deadline: None,
        };
        let err = EagerEngine
            .try_subset(&a, &b, &limits)
            .expect_err("cap of 1 must trip the eager path too");
        assert!(matches!(
            err,
            InclusionAbort::MacrostateCap { limit: 1, .. }
        ));
    }

    #[test]
    fn equivalence_budget_spans_both_directions() {
        let lhs = ops::star(&Nfa::literal(b"ab"));
        let rhs = ops::star(&Nfa::literal(b"ab"));
        let unlimited = AntichainEngine
            .try_equivalent(&lhs, &rhs, &InclusionLimits::UNLIMITED)
            .expect("unlimited");
        assert!(unlimited.0);
        let need = unlimited.1.macrostates;
        assert!(need >= 2, "two directions do real work");
        let limits = InclusionLimits {
            max_macrostates: Some(need - 1),
            deadline: None,
        };
        let err = AntichainEngine
            .try_equivalent(&lhs, &rhs, &limits)
            .expect_err("shared budget below the two-direction cost must trip");
        assert!(err.cost().macrostates <= need);
    }
}
