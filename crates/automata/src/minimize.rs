//! DFA minimization by partition refinement.
//!
//! The paper (§4) observes that its prototype tracked large string constants
//! through every machine transformation and that "applying NFA minimization
//! techniques might improve performance" on the pathological `secure` case.
//! This module provides that optimization: determinize, complete, refine the
//! state partition to the Myhill–Nerode congruence (Moore's algorithm over
//! the minterm alphabet), and rebuild.

use crate::byteclass::{minterms, ByteClass};
use crate::dfa::{determinize, determinize_counted, DeterminizeCost, Dfa};
use crate::nfa::{Nfa, StateId};

/// Minimizes a DFA by partition refinement (Moore's algorithm).
///
/// The input is completed first so the transition function is total. The
/// result is the unique (up to isomorphism) minimal complete DFA for the
/// language, with unreachable states removed.
pub fn minimize_dfa(dfa: &Dfa) -> Dfa {
    let dfa = dfa.complete();
    let n = dfa.num_states();
    if n == 0 {
        return dfa;
    }
    // Global minterm alphabet across all transition classes.
    let classes: Vec<ByteClass> = (0..n)
        .flat_map(|q| dfa.transitions(StateId(q as u32)).iter().map(|&(c, _)| c))
        .collect();
    let alphabet = minterms(classes.iter());
    let symbols: Vec<u8> = alphabet
        .iter()
        .map(|c| c.min_byte().expect("minterms nonempty"))
        .collect();

    // Initial partition: finals vs non-finals.
    let mut block_of: Vec<usize> = (0..n)
        .map(|q| usize::from(dfa.is_final(StateId(q as u32))))
        .collect();
    let mut num_blocks = 2;
    loop {
        // Signature of a state: its block plus the blocks of its successors
        // on each alphabet symbol.
        let mut sigs: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for q in 0..n {
            let succ_blocks: Vec<usize> = symbols
                .iter()
                .map(|&b| {
                    let t = dfa.step(StateId(q as u32), b).expect("complete DFA");
                    block_of[t.index()]
                })
                .collect();
            sigs.push((block_of[q], succ_blocks));
        }
        let mut index = std::collections::HashMap::new();
        let mut new_block_of = vec![0usize; n];
        let mut new_num = 0usize;
        for q in 0..n {
            let id = *index.entry(sigs[q].clone()).or_insert_with(|| {
                let id = new_num;
                new_num += 1;
                id
            });
            new_block_of[q] = id;
        }
        if new_num == num_blocks {
            break;
        }
        block_of = new_block_of;
        num_blocks = new_num;
    }

    // Rebuild: keep only blocks reachable from the start block.
    let start_block = block_of[dfa.start().index()];
    // Representative state per block.
    let mut rep: Vec<Option<usize>> = vec![None; num_blocks];
    for q in 0..n {
        rep[block_of[q]].get_or_insert(q);
    }
    let mut states: Vec<Vec<(ByteClass, StateId)>> = vec![Vec::new(); num_blocks];
    let mut finals = vec![false; num_blocks];
    for blk in 0..num_blocks {
        let q = rep[blk].expect("every block has a member");
        finals[blk] = dfa.is_final(StateId(q as u32));
        // Merge transitions by target block.
        let mut by_target: std::collections::HashMap<usize, ByteClass> =
            std::collections::HashMap::new();
        for &(c, t) in dfa.transitions(StateId(q as u32)) {
            let e = by_target
                .entry(block_of[t.index()])
                .or_insert(ByteClass::EMPTY);
            *e = e.union(&c);
        }
        let mut row: Vec<(ByteClass, StateId)> = by_target
            .into_iter()
            .map(|(blk, c)| (c, StateId(blk as u32)))
            .collect();
        row.sort_by_key(|&(_, t)| t);
        states[blk] = row;
    }
    let min = Dfa::from_parts(states, StateId(start_block as u32), finals);
    // Drop unreachable blocks (e.g. a now-unreachable sink) via NFA trim.
    determinize(&min.to_nfa().trim().0)
}

/// Minimizes the language of an NFA: determinize, refine, and convert back.
///
/// The result is a deterministic (epsilon-free) NFA recognizing the same
/// language with the minimal number of live states, rebuilt under the
/// canonical BFS numbering (the one [`canonical_key`] serializes). That
/// makes the output a *value*: any two inputs with the same language
/// produce the identical `Nfa`, not merely isomorphic ones. The parallel
/// solver depends on this — concurrent branches that race to minimize
/// language-equal machines must end up with interchangeable results, or
/// memo-table contents (and everything derived from them, such as product
/// sizes) would vary from run to run.
pub fn minimize(nfa: &Nfa) -> Nfa {
    minimize_counted(nfa).0
}

/// [`minimize`] plus the cost of the *top-level* subset construction it
/// performs: how many DFA states the input determinized into and how much
/// ε-closure work that took. The auxiliary determinizations inside
/// [`minimize_dfa`]'s rebuild are cheap (they run on the already-minimal
/// machine) and are not counted.
pub fn minimize_counted(nfa: &Nfa) -> (Nfa, DeterminizeCost) {
    let (dfa, cost) = determinize_counted(nfa);
    let min = minimize_dfa(&dfa);
    let order = bfs_order(&min);
    let mut rank: Vec<u32> = vec![0; min.num_states()];
    for (new, &old) in order.iter().enumerate() {
        rank[old.index()] = new as u32;
    }
    let mut out = Nfa::new();
    for _ in 1..order.len() {
        out.add_state();
    }
    for (new, &old) in order.iter().enumerate() {
        let mut row: Vec<(ByteClass, StateId)> = min.transitions(old).to_vec();
        row.sort();
        for (class, t) in row {
            out.add_edge(StateId(new as u32), class, StateId(rank[t.index()]));
        }
        if min.is_final(old) {
            out.add_final(StateId(new as u32));
        }
    }
    // Drop the dead sink the completion step introduced, if any. `trim`
    // keeps the start state first and the survivors in ascending id order,
    // so the canonical numbering is preserved.
    (out.trim().0, cost)
}

/// The BFS state order of a DFA with class-sorted edge traversal, starting
/// from the start state. For a *minimal complete* DFA this order is
/// invariant under state renumbering (the minimal DFA is unique up to
/// isomorphism and byte classes are renaming-independent), which is what
/// makes [`canonical_key`] — and the canonical rebuild in [`minimize`] —
/// well defined. Unreachable states are omitted.
fn bfs_order(dfa: &Dfa) -> Vec<StateId> {
    let n = dfa.num_states();
    if n == 0 {
        return Vec::new();
    }
    let mut seen: Vec<bool> = vec![false; n];
    let mut bfs: Vec<StateId> = vec![dfa.start()];
    seen[dfa.start().index()] = true;
    let mut i = 0;
    while i < bfs.len() {
        let q = bfs[i];
        i += 1;
        let mut row: Vec<(ByteClass, StateId)> = dfa.transitions(q).to_vec();
        row.sort();
        for (_, t) in row {
            if !seen[t.index()] {
                seen[t.index()] = true;
                bfs.push(t);
            }
        }
    }
    bfs
}

/// Hopcroft's worklist minimization: O(k·n·log n) over the minterm
/// alphabet, versus Moore's O(k·n²) refinement in [`minimize_dfa`]. Both
/// produce the unique minimal DFA; the `det_min` bench compares them and
/// the property suite cross-checks their outputs.
pub fn minimize_dfa_hopcroft(dfa: &Dfa) -> Dfa {
    let dfa = dfa.complete();
    let n = dfa.num_states();
    if n == 0 {
        return dfa;
    }
    let classes: Vec<ByteClass> = (0..n)
        .flat_map(|q| dfa.transitions(StateId(q as u32)).iter().map(|&(c, _)| c))
        .collect();
    let alphabet = minterms(classes.iter());
    let symbols: Vec<u8> = alphabet
        .iter()
        .map(|c| c.min_byte().expect("minterms nonempty"))
        .collect();
    let k = symbols.len();

    // Reverse transition table per symbol.
    let mut preimage: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; k];
    for q in 0..n {
        for (s, &b) in symbols.iter().enumerate() {
            let t = dfa.step(StateId(q as u32), b).expect("complete DFA");
            preimage[s][t.index()].push(q);
        }
    }

    // Partition as block lists.
    let mut block_of: Vec<usize> = (0..n)
        .map(|q| usize::from(dfa.is_final(StateId(q as u32))))
        .collect();
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
    for q in 0..n {
        blocks[block_of[q]].push(q);
    }
    if blocks[1].is_empty() || blocks[0].is_empty() {
        // Only one nonempty block: all states accept or all reject.
        let keep = usize::from(blocks[0].is_empty());
        blocks = vec![std::mem::take(&mut blocks[keep])];
        for b in block_of.iter_mut() {
            *b = 0;
        }
    }

    use std::collections::BTreeSet;
    let mut work: BTreeSet<(usize, usize)> = BTreeSet::new();
    let smaller = (0..blocks.len())
        .min_by_key(|&b| blocks[b].len())
        .expect("nonempty");
    for s in 0..k {
        work.insert((smaller, s));
    }

    while let Some(&(splitter, s)) = work.iter().next() {
        work.remove(&(splitter, s));
        // X = states with an s-transition into the splitter block.
        let mut x: Vec<usize> = Vec::new();
        for &q in &blocks[splitter] {
            x.extend(preimage[s][q].iter().copied());
        }
        if x.is_empty() {
            continue;
        }
        // Group X by current block.
        let mut touched: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for q in x {
            touched.entry(block_of[q]).or_default().push(q);
        }
        for (b, inside) in touched {
            if inside.len() == blocks[b].len() {
                continue; // no split
            }
            // Split block b into `inside` and the rest.
            let inside_set: BTreeSet<usize> = inside.iter().copied().collect();
            let outside: Vec<usize> = blocks[b]
                .iter()
                .copied()
                .filter(|q| !inside_set.contains(q))
                .collect();
            let new_id = blocks.len();
            blocks[b] = inside;
            blocks.push(outside);
            for &q in &blocks[new_id] {
                block_of[q] = new_id;
            }
            // Hopcroft's rule: if (b, t) is pending, split it too;
            // otherwise enqueue the smaller half.
            for t in 0..k {
                if work.remove(&(b, t)) {
                    work.insert((b, t));
                    work.insert((new_id, t));
                } else if blocks[b].len() <= blocks[new_id].len() {
                    work.insert((b, t));
                } else {
                    work.insert((new_id, t));
                }
            }
        }
    }

    // Rebuild (same as Moore's rebuild).
    let num_blocks = blocks.len();
    let start_block = block_of[dfa.start().index()];
    let mut states: Vec<Vec<(ByteClass, StateId)>> = vec![Vec::new(); num_blocks];
    let mut finals = vec![false; num_blocks];
    for (blk, members) in blocks.iter().enumerate() {
        let q = members[0];
        finals[blk] = dfa.is_final(StateId(q as u32));
        let mut by_target: std::collections::HashMap<usize, ByteClass> =
            std::collections::HashMap::new();
        for &(c, t) in dfa.transitions(StateId(q as u32)) {
            let e = by_target
                .entry(block_of[t.index()])
                .or_insert(ByteClass::EMPTY);
            *e = e.union(&c);
        }
        let mut row: Vec<(ByteClass, StateId)> = by_target
            .into_iter()
            .map(|(blk, c)| (c, StateId(blk as u32)))
            .collect();
        row.sort_by_key(|&(_, t)| t);
        states[blk] = row;
    }
    let min = Dfa::from_parts(states, StateId(start_block as u32), finals);
    determinize(&min.to_nfa().trim().0)
}

/// A canonical fingerprint of an NFA's *language*: two machines have equal
/// keys iff they recognize the same language.
///
/// The key serializes the minimal complete DFA under a breadth-first state
/// numbering with transitions ordered by class, which is unique because the
/// minimal complete DFA is unique up to isomorphism. Comparing keys turns
/// the solver's quadratic pile of language-equivalence queries into one
/// minimization per machine plus cheap `Vec` comparisons.
pub fn canonical_key(nfa: &Nfa) -> CanonicalKey {
    canonical_key_counted(nfa).0
}

/// [`canonical_key`] plus the cost of the top-level subset construction,
/// under the same accounting as [`minimize_counted`].
pub fn canonical_key_counted(nfa: &Nfa) -> (CanonicalKey, DeterminizeCost) {
    let (dfa, cost) = determinize_counted(nfa);
    let min = minimize_dfa(&dfa);
    // BFS renumbering with deterministic edge order.
    let bfs = bfs_order(&min);
    let mut order: Vec<Option<u32>> = vec![None; min.num_states()];
    for (new, &old) in bfs.iter().enumerate() {
        order[old.index()] = Some(new as u32);
    }
    // Serialize: per state in BFS order, finality then sorted transitions.
    let mut words: Vec<u64> = vec![bfs.len() as u64];
    for &q in &bfs {
        words.push(u64::from(min.is_final(q)));
        let mut row: Vec<(ByteClass, StateId)> = min.transitions(q).to_vec();
        row.sort();
        words.push(row.len() as u64);
        for (class, t) in row {
            words.extend(class_words(&class));
            words.push(u64::from(
                order[t.index()].expect("BFS covered all reachable states"),
            ));
        }
    }
    (CanonicalKey(words), cost)
}

fn class_words(class: &ByteClass) -> [u64; 4] {
    let mut out = [0u64; 4];
    for b in class.iter() {
        out[b as usize / 64] |= 1 << (b % 64);
    }
    out
}

/// Opaque language fingerprint produced by [`canonical_key`]. Equal keys ⟺
/// equal languages.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CanonicalKey(Vec<u64>);

impl CanonicalKey {
    /// Approximate heap footprint of the key in bytes (its word payload).
    /// Used by the store's memo byte accounting.
    pub fn byte_len(&self) -> usize {
        self.0.len() * std::mem::size_of::<u64>()
    }

    /// A stable 64-bit digest of the key (FNV-1a over its word payload in
    /// little-endian order), used by the query cost ledger to name
    /// languages compactly. Equal keys — equal languages — always digest
    /// equally, on every platform, so ledger fingerprints can be matched
    /// across machines and runs.
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &word in &self.0 {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::equivalent;
    use crate::ops;

    #[test]
    fn minimize_preserves_language() {
        let n = ops::union(
            &ops::concat(&Nfa::literal(b"a"), &ops::star(&Nfa::literal(b"b"))).nfa,
            &Nfa::literal(b"a"),
        );
        let m = minimize(&n);
        assert!(equivalent(&n, &m));
        assert!(m.num_states() <= n.num_states());
    }

    #[test]
    fn minimize_collapses_redundant_states() {
        // a|b|c as a union has many states; minimal DFA has 2 live states.
        let n = ops::union_all([
            &Nfa::literal(b"a"),
            &Nfa::literal(b"b"),
            &Nfa::literal(b"c"),
        ]);
        let m = minimize(&n);
        assert_eq!(m.num_states(), 2);
        assert!(m.contains(b"b"));
        assert!(!m.contains(b"ab"));
    }

    #[test]
    fn minimize_empty_and_epsilon() {
        let e = minimize(&Nfa::empty_language());
        assert!(e.is_empty_language());
        let eps = minimize(&Nfa::epsilon());
        assert!(eps.contains(b""));
        assert!(!eps.contains(b"a"));
        assert_eq!(eps.num_states(), 1);
    }

    #[test]
    fn minimize_sigma_star_is_one_state() {
        let m = minimize(&Nfa::sigma_star());
        assert_eq!(m.num_states(), 1);
        assert!(m.contains(b""));
        assert!(m.contains(b"xyz"));
    }

    #[test]
    fn minimize_is_value_canonical() {
        // Language-equal but structurally different inputs minimize to the
        // *identical* machine (same state numbering, same edge order), not
        // merely isomorphic ones — the property concurrent memo sharing
        // relies on.
        let a = ops::star(&Nfa::literal(b"ab"));
        let b = ops::union(
            &Nfa::epsilon(),
            &ops::concat(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"ab"))).nfa,
        );
        let (ma, mb) = (minimize(&a), minimize(&b));
        assert_eq!(ma.num_states(), mb.num_states());
        assert_eq!(ma.start(), mb.start());
        assert_eq!(ma.finals(), mb.finals());
        let edges = |m: &Nfa| m.edges().collect::<Vec<_>>();
        assert_eq!(edges(&ma), edges(&mb));
    }

    #[test]
    fn counted_variants_match_uncounted_and_report_cost() {
        let n = ops::union(&Nfa::literal(b"ab"), &Nfa::literal(b"ba"));
        let (m, cost) = minimize_counted(&n);
        assert!(equivalent(&m, &minimize(&n)));
        assert!(cost.dfa_states > 0);
        assert!(cost.closure_visited > 0);
        let (k, kcost) = canonical_key_counted(&n);
        assert_eq!(k, canonical_key(&n));
        assert_eq!(kcost.dfa_states, cost.dfa_states);
        assert!(k.byte_len() >= std::mem::size_of::<u64>());
    }

    #[test]
    fn minimal_dfa_is_canonical_size() {
        // Two structurally different machines for the same language minimize
        // to the same number of states.
        let a = ops::star(&Nfa::literal(b"ab"));
        let b = ops::union(
            &Nfa::epsilon(),
            &ops::concat(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"ab"))).nfa,
        );
        assert!(equivalent(&a, &b));
        assert_eq!(minimize(&a).num_states(), minimize(&b).num_states());
    }
}

#[cfg(test)]
mod hopcroft_tests {
    use super::*;
    use crate::dfa::equivalent;
    use crate::generate::{random_nfa, RandomNfaConfig};
    use crate::ops;

    fn minimal_hopcroft(nfa: &Nfa) -> Nfa {
        minimize_dfa_hopcroft(&determinize(nfa)).to_nfa().trim().0
    }

    #[test]
    fn hopcroft_agrees_with_moore_on_fixtures() {
        let fixtures = [
            Nfa::literal(b"abc"),
            Nfa::epsilon(),
            Nfa::empty_language(),
            Nfa::sigma_star(),
            ops::union(&Nfa::literal(b"a"), &Nfa::literal(b"bb")),
            ops::star(&ops::union(&Nfa::literal(b"ab"), &Nfa::literal(b"ba"))),
        ];
        for m in &fixtures {
            let moore = minimize(m);
            let hopcroft = minimal_hopcroft(m);
            assert!(equivalent(&moore, &hopcroft));
            assert_eq!(moore.num_states(), hopcroft.num_states());
        }
    }

    #[test]
    fn hopcroft_agrees_with_moore_on_random_machines() {
        let cfg = RandomNfaConfig {
            states: 7,
            alphabet: vec![b'a', b'b'],
            ..Default::default()
        };
        for seed in 0..60 {
            let m = random_nfa(seed, &cfg);
            let moore = minimize(&m);
            let hopcroft = minimal_hopcroft(&m);
            assert!(equivalent(&m, &hopcroft), "seed {seed}: language changed");
            assert_eq!(
                moore.num_states(),
                hopcroft.num_states(),
                "seed {seed}: non-minimal result"
            );
        }
    }

    #[test]
    fn hopcroft_single_block_cases() {
        // All-accepting and all-rejecting machines hit the one-block path.
        let all = minimal_hopcroft(&Nfa::sigma_star());
        assert_eq!(all.num_states(), 1);
        let none = minimal_hopcroft(&Nfa::empty_language());
        assert!(none.is_empty_language());
    }
}

#[cfg(test)]
mod canonical_tests {
    use super::*;
    use crate::ops;

    #[test]
    fn equal_languages_equal_keys() {
        // a(ba)* and (ab)*a — same language, very different machines.
        let a = Nfa::literal(b"a");
        let b = Nfa::literal(b"b");
        let lhs = ops::concat(&a, &ops::star(&ops::concat(&b, &a).nfa)).nfa;
        let rhs = ops::concat(&ops::star(&ops::concat(&a, &b).nfa), &a).nfa;
        assert_eq!(canonical_key(&lhs), canonical_key(&rhs));
    }

    #[test]
    fn different_languages_different_keys() {
        assert_ne!(
            canonical_key(&Nfa::literal(b"a")),
            canonical_key(&Nfa::literal(b"b"))
        );
        assert_ne!(
            canonical_key(&Nfa::empty_language()),
            canonical_key(&Nfa::epsilon())
        );
        assert_ne!(
            canonical_key(&Nfa::sigma_star()),
            canonical_key(&Nfa::epsilon())
        );
    }

    #[test]
    fn key_is_structure_independent() {
        let m = ops::union(&Nfa::literal(b"x"), &Nfa::literal(b"x"));
        assert_eq!(canonical_key(&m), canonical_key(&Nfa::literal(b"x")));
    }

    #[test]
    fn keys_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(canonical_key(&Nfa::literal(b"a")));
        set.insert(canonical_key(&Nfa::literal(b"a").normalize()));
        assert_eq!(set.len(), 1);
    }
}
