//! # dprle-automata
//!
//! The finite-automata substrate for the DPRLE decision procedure
//! (Hooimeijer & Weimer, *A Decision Procedure for Subset Constraints over
//! Regular Languages*, PLDI 2009).
//!
//! Everything the decision procedure manipulates is an epsilon-NFA over the
//! byte alphabet with [`ByteClass`] (set-of-bytes) transition labels:
//!
//! * [`Nfa`] — the machine representation, with simulation, trimming,
//!   witness extraction, and the paper's `induce_from_final` /
//!   `induce_from_start` slicing primitives.
//! * [`ops`] — concatenation (reporting the epsilon *bridge* the CI
//!   algorithm slices at), union, Kleene closures, and the cross-product
//!   intersection (reporting operand-state provenance for every product
//!   state).
//! * [`dfa`] — subset construction, complement, language inclusion and
//!   equivalence (the `⊆` judgments of the constraint language).
//! * [`inclusion`] — pluggable engines behind every `⊆` judgment: the
//!   eager determinize/complement/product path and the antichain-based
//!   lazy subset construction the stack defaults to, both with budget
//!   hooks inside their frontier loops.
//! * [`minimize`] — DFA minimization (the optimization the paper suggests
//!   for its Figure 12 `secure` outlier).
//! * [`lang`] — cheap-to-clone interned language handles ([`Lang`]) with
//!   cached canonical fingerprints, and the hash-consing / memoizing
//!   [`LangStore`] the solver shares across worklist branches.
//! * [`quotient`] — existential and universal left/right quotients, used by
//!   the solver when concatenation operands are constants.
//! * [`metrics`] — the sharded, zero-cost-when-disabled metrics registry
//!   ([`Metrics`]) the solver layers resource budgets on top of.
//! * [`dot`] — Graphviz export for regenerating paper-style machine figures.
//! * [`generate`] — seeded random machines for property tests and the
//!   complexity benchmarks.
//!
//! ## Example
//!
//! Build `(c1 · c2) ∩ c3` — the intermediate machine `M₅` of the paper's
//! Figure 4 — and extract a witness:
//!
//! ```
//! use dprle_automata::{Nfa, ops};
//!
//! let c1 = Nfa::literal(b"nid_");                       // string constant
//! let c2 = ops::concat(&Nfa::sigma_star(),
//!                      &Nfa::class((b'0'..=b'9').collect())).nfa; // Σ*[0-9]
//! let quote = ops::concat(&ops::concat(&Nfa::sigma_star(),
//!                                      &Nfa::literal(b"'")).nfa,
//!                         &Nfa::sigma_star()).nfa;      // Σ*'Σ*
//! let m4 = ops::concat(&c1, &c2).nfa;
//! let m5 = ops::intersect(&m4, &quote).nfa.trim().0;
//! let exploit = m5.shortest_member().expect("vulnerable");
//! assert!(exploit.starts_with(b"nid_"));
//! assert!(exploit.contains(&b'\''));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod byteclass;
pub mod costmodel;
pub mod derivative;
pub mod dfa;
pub mod dot;
pub mod generate;
pub mod homomorphism;
pub mod inclusion;
pub mod lang;
pub mod metrics;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod quotient;

pub use analysis::{is_finite, language_size, members, LanguageSize};
pub use byteclass::ByteClass;
pub use costmodel::QueryFeatures;
pub use derivative::DerivativeEngine;
pub use dfa::{
    complement, determinize, determinize_counted, equivalent, inclusion_counterexample, is_subset,
    try_determinize_counted, DeterminizeCost, Dfa,
};
pub use homomorphism::ByteMap;
pub use inclusion::{
    engine as inclusion_engine, AntichainEngine, AutoEngine, EagerEngine, EngineKind,
    InclusionAbort, InclusionCost, InclusionEngine, InclusionLimits,
};
pub use lang::{
    current_stats_scope, install_stats_scope, FingerprintCost, InclusionQuery, Lang, LangStore,
    MemoIdentity, ScopedStoreStats, StatsScopeGuard, StoreObserver, StoreOp, StoreStats,
};
pub use metrics::{MetricEntry, MetricValue, Metrics, MetricsSnapshot};
pub use minimize::{
    canonical_key, canonical_key_counted, minimize, minimize_counted, minimize_dfa,
    minimize_dfa_hopcroft, CanonicalKey,
};
pub use nfa::{Nfa, State, StateId};
