//! Graphviz (DOT) rendering of automata, for debugging and documentation.
//!
//! The paper's figures (4, 10) depict the intermediate machines of the
//! concat-intersect procedure; these exports let users regenerate such
//! pictures from real solver runs (`dprle --dot`).

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use std::fmt::Write as _;

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an NFA as a DOT digraph.
///
/// Final states are drawn as double circles; an arrow from a synthetic
/// `__start` point marks the start state; epsilon edges are labelled `ε`.
pub fn nfa_to_dot(nfa: &Nfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    for q in nfa.state_ids() {
        let shape = if nfa.is_final(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {} [shape={shape}];", q.index());
    }
    let _ = writeln!(out, "  __start -> {};", nfa.start().index());
    for (from, class, to) in nfa.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            from.index(),
            to.index(),
            escape(&class.to_string())
        );
    }
    for (from, to) in nfa.eps_edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"ε\", style=dashed];",
            from.index(),
            to.index()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a DFA as a DOT digraph.
pub fn dfa_to_dot(dfa: &Dfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    for q in 0..dfa.num_states() {
        let shape = if dfa.is_final(StateId(q as u32)) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {q} [shape={shape}];");
    }
    let _ = writeln!(out, "  __start -> {};", dfa.start().index());
    for q in 0..dfa.num_states() {
        for &(class, t) in dfa.transitions(StateId(q as u32)) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                q,
                t.index(),
                escape(&class.to_string())
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::determinize;

    #[test]
    fn nfa_dot_mentions_every_state() {
        let m = Nfa::literal(b"ab");
        let dot = nfa_to_dot(&m, "lit");
        assert!(dot.starts_with("digraph \"lit\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn nfa_dot_marks_epsilon_edges() {
        let m = crate::ops::star(&Nfa::literal(b"a"));
        let dot = nfa_to_dot(&m, "star");
        assert!(dot.contains("ε"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dot_escapes_labels() {
        let m = Nfa::literal(b"\"");
        let dot = nfa_to_dot(&m, "quote\"name");
        assert!(dot.contains("\\\""));
    }

    #[test]
    fn dfa_dot_renders() {
        let d = determinize(&Nfa::literal(b"xy"));
        let dot = dfa_to_dot(&d, "d");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"x\""));
    }
}
