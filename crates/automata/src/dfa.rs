//! Deterministic automata: subset construction, completion, complement.
//!
//! The decision procedure itself works on NFAs, but several supporting
//! judgments — language inclusion, equivalence, complement, universal
//! quotients, and Hopcroft minimization — need a deterministic machine.
//! Determinization runs over the *minterm* alphabet (the coarsest partition
//! of the byte alphabet respecting every transition class), so the effective
//! alphabet size is proportional to the number of distinct classes rather
//! than 256.

use crate::byteclass::{minterms, ByteClass};
use crate::nfa::{Nfa, StateId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A deterministic finite automaton over byte classes.
///
/// Transitions out of a state carry pairwise-disjoint classes; bytes not
/// covered by any class are an implicit dead transition. [`Dfa::complete`]
/// makes the dead state explicit when total transition functions are needed
/// (complementation, minimization).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dfa {
    states: Vec<Vec<(ByteClass, StateId)>>,
    start: StateId,
    finals: Vec<bool>,
}

impl Dfa {
    /// The number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q.index()]
    }

    /// The outgoing transitions of `q`.
    pub fn transitions(&self, q: StateId) -> &[(ByteClass, StateId)] {
        &self.states[q.index()]
    }

    /// The successor of `q` on byte `b`, if any.
    pub fn step(&self, q: StateId, b: u8) -> Option<StateId> {
        self.states[q.index()]
            .iter()
            .find(|(c, _)| c.contains(b))
            .map(|&(_, t)| t)
    }

    /// Tests whether the DFA accepts `word`.
    pub fn contains(&self, word: &[u8]) -> bool {
        let mut q = self.start;
        for &b in word {
            match self.step(q, b) {
                Some(t) => q = t,
                None => return false,
            }
        }
        self.finals[q.index()]
    }

    /// Makes the transition function total by adding an explicit non-final
    /// sink state (if any byte is uncovered anywhere).
    pub fn complete(&self) -> Dfa {
        let mut out = self.clone();
        let sink = StateId(out.states.len() as u32);
        let mut used_sink = false;
        for row in out.states.iter_mut() {
            let mut covered = ByteClass::EMPTY;
            for (c, _) in row.iter() {
                covered = covered.union(c);
            }
            let rest = covered.complement();
            if !rest.is_empty() {
                row.push((rest, sink));
                used_sink = true;
            }
        }
        if used_sink {
            out.states.push(vec![(ByteClass::FULL, sink)]);
            out.finals.push(false);
        }
        out
    }

    /// The DFA for the complement language Σ* \ L.
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for f in out.finals.iter_mut() {
            *f = !*f;
        }
        out
    }

    /// Converts back to an NFA (a DFA is an NFA without epsilon edges).
    pub fn to_nfa(&self) -> Nfa {
        let mut out = Nfa::new();
        let mut map = Vec::with_capacity(self.states.len());
        map.push(out.start());
        for _ in 1..self.states.len() {
            map.push(out.add_state());
        }
        out.set_start(map[self.start.index()]);
        for (i, row) in self.states.iter().enumerate() {
            for &(c, t) in row {
                out.add_edge(map[i], c, map[t.index()]);
            }
        }
        for (i, &f) in self.finals.iter().enumerate() {
            if f {
                out.add_final(map[i]);
            }
        }
        out
    }

    /// Direct construction access for the minimizer.
    pub(crate) fn from_parts(
        states: Vec<Vec<(ByteClass, StateId)>>,
        start: StateId,
        finals: Vec<bool>,
    ) -> Dfa {
        Dfa {
            states,
            start,
            finals,
        }
    }
}

/// Subset construction: converts an epsilon-NFA into an equivalent DFA.
///
/// Runs over the minterm alphabet of the input's transition classes. Only
/// reachable subset-states are materialized. The result's transition
/// function is partial (no explicit dead state).
pub fn determinize(nfa: &Nfa) -> Dfa {
    determinize_counted(nfa).0
}

/// Cost report of one determinization, consumed by the metrics registry's
/// "determinization blowup" histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeterminizeCost {
    /// DFA subset-states produced.
    pub dfa_states: usize,
    /// Total states returned across every ε-closure evaluated by the
    /// construction — the "ε-closure work" cost driver.
    pub closure_visited: usize,
}

/// Like [`determinize`], additionally reporting the subset-construction
/// cost (output states and ε-closure work).
pub fn determinize_counted(nfa: &Nfa) -> (Dfa, DeterminizeCost) {
    try_determinize_counted(nfa, usize::MAX).expect("unlimited determinization cannot exceed cap")
}

/// Like [`determinize_counted`], but aborts — returning `None` — as soon
/// as the subset construction would materialize more than `max_states`
/// DFA states.
///
/// This is the eager inclusion engine's budget enforcement point: the BFS
/// stops *before* exceeding the cap, so at most `max_states` subset-states
/// (and their rows) ever exist, and the bound depends only on the input
/// machine — budgeted judgments stay deterministic.
pub fn try_determinize_counted(nfa: &Nfa, max_states: usize) -> Option<(Dfa, DeterminizeCost)> {
    let mut cost = DeterminizeCost::default();
    if max_states == 0 {
        return None;
    }
    let classes: Vec<ByteClass> = nfa.edges().map(|(_, c, _)| c).collect();
    let alphabet = minterms(classes.iter());
    let start_set = nfa.eps_closure(&BTreeSet::from([nfa.start()]));
    cost.closure_visited += start_set.len();
    let mut index: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
    let mut sets: Vec<BTreeSet<StateId>> = vec![start_set.clone()];
    index.insert(start_set, StateId(0));
    let mut states: Vec<Vec<(ByteClass, StateId)>> = vec![Vec::new()];
    let mut finals: Vec<bool> = Vec::new();
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    finals.push(sets[0].iter().any(|q| nfa.is_final(*q)));
    while let Some(i) = work.pop_front() {
        let cur = sets[i].clone();
        for block in &alphabet {
            // All minterm members behave identically, so step on any one.
            let b = block.min_byte().expect("minterm blocks are nonempty");
            let next = nfa.eps_closure(&nfa.step(&cur, b));
            cost.closure_visited += next.len();
            if next.is_empty() {
                continue;
            }
            let t = match index.get(&next) {
                Some(&t) => t,
                None => {
                    if sets.len() >= max_states {
                        return None;
                    }
                    let t = StateId(sets.len() as u32);
                    index.insert(next.clone(), t);
                    finals.push(next.iter().any(|q| nfa.is_final(*q)));
                    sets.push(next);
                    states.push(Vec::new());
                    work.push_back(t.index());
                    t
                }
            };
            states[i].push((*block, t));
        }
        // Merge parallel edges to the same target into one class.
        let row = &mut states[i];
        let mut merged: HashMap<StateId, ByteClass> = HashMap::new();
        for &(c, t) in row.iter() {
            let e = merged.entry(t).or_insert(ByteClass::EMPTY);
            *e = e.union(&c);
        }
        let mut new_row: Vec<(ByteClass, StateId)> =
            merged.into_iter().map(|(t, c)| (c, t)).collect();
        new_row.sort_by_key(|&(_, t)| t);
        *row = new_row;
    }
    cost.dfa_states = states.len();
    Some((
        Dfa {
            states,
            start: StateId(0),
            finals,
        },
        cost,
    ))
}

/// The NFA for the complement language Σ* \ L(nfa).
pub fn complement(nfa: &Nfa) -> Nfa {
    determinize(nfa).complement().to_nfa().trim().0
}

/// Language inclusion: is `L(a) ⊆ L(b)`?
///
/// Dispatches to the default [`crate::inclusion`] engine (antichain-based
/// lazy subset construction). Callers that need a specific decision
/// strategy or budget enforcement use [`crate::inclusion::engine`]
/// directly.
pub fn is_subset(a: &Nfa, b: &Nfa) -> bool {
    crate::inclusion::default_engine().is_subset(a, b)
}

/// Language equivalence: is `L(a) = L(b)`? Decided by the default
/// [`crate::inclusion`] engine.
pub fn equivalent(a: &Nfa, b: &Nfa) -> bool {
    crate::inclusion::default_engine().equivalent(a, b)
}

/// A shortest counterexample to `L(a) ⊆ L(b)`, i.e. a shortest member of
/// `L(a) \ L(b)`, or `None` when the inclusion holds. Decided by the
/// default [`crate::inclusion`] engine.
pub fn inclusion_counterexample(a: &Nfa, b: &Nfa) -> Option<Vec<u8>> {
    crate::inclusion::default_engine().counterexample(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn determinize_preserves_language() {
        let n = ops::union(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"a")));
        let d = determinize(&n);
        for w in [&b""[..], b"a", b"aa", b"ab", b"aaa", b"b", b"ba", b"abab"] {
            assert_eq!(n.contains(w), d.contains(w), "word {w:?}");
        }
    }

    #[test]
    fn determinize_empty_language() {
        let d = determinize(&Nfa::empty_language());
        assert!(!d.contains(b""));
        assert!(!d.contains(b"a"));
        assert_eq!(d.num_states(), 1);
    }

    #[test]
    fn determinism_invariant() {
        let n = ops::union(&Nfa::literal(b"ab"), &Nfa::literal(b"ac"));
        let d = determinize(&n);
        for q in 0..d.num_states() {
            let row = d.transitions(StateId(q as u32));
            for (i, (c1, _)) in row.iter().enumerate() {
                for (c2, _) in row.iter().skip(i + 1) {
                    assert!(c1.is_disjoint(c2), "overlapping classes in DFA row");
                }
            }
        }
    }

    #[test]
    fn complete_covers_alphabet() {
        let d = determinize(&Nfa::literal(b"a")).complete();
        for q in 0..d.num_states() {
            let mut covered = ByteClass::EMPTY;
            for (c, _) in d.transitions(StateId(q as u32)) {
                covered = covered.union(c);
            }
            assert!(covered.is_full());
        }
    }

    #[test]
    fn complement_flips_membership() {
        let n = Nfa::literal(b"ab");
        let c = complement(&n);
        assert!(!c.contains(b"ab"));
        assert!(c.contains(b""));
        assert!(c.contains(b"a"));
        assert!(c.contains(b"abx"));
        // Double complement restores the language.
        let cc = complement(&c);
        assert!(cc.contains(b"ab"));
        assert!(!cc.contains(b"a"));
    }

    #[test]
    fn complement_of_sigma_star_is_empty() {
        assert!(complement(&Nfa::sigma_star()).is_empty_language());
        assert!(equivalent(
            &complement(&Nfa::empty_language()),
            &Nfa::sigma_star()
        ));
    }

    #[test]
    fn subset_judgments() {
        let a = Nfa::literal(b"aa");
        let astar = ops::star(&Nfa::literal(b"a"));
        assert!(is_subset(&a, &astar));
        assert!(!is_subset(&astar, &a));
        assert!(is_subset(&Nfa::empty_language(), &a));
        assert!(is_subset(&a, &Nfa::sigma_star()));
    }

    #[test]
    fn equivalence_judgments() {
        // a(ba)* == (ab)*a
        let a = Nfa::literal(b"a");
        let b = Nfa::literal(b"b");
        let lhs = ops::concat(&a, &ops::star(&ops::concat(&b, &a).nfa)).nfa;
        let rhs = ops::concat(&ops::star(&ops::concat(&a, &b).nfa), &a).nfa;
        assert!(equivalent(&lhs, &rhs));
        assert!(!equivalent(&lhs, &ops::star(&a)));
    }

    #[test]
    fn counterexample_is_minimal_witness() {
        let astar = ops::star(&Nfa::literal(b"a"));
        let aa = Nfa::literal(b"aa");
        let cex = inclusion_counterexample(&astar, &aa).expect("inclusion fails");
        assert!(astar.contains(&cex));
        assert!(!aa.contains(&cex));
        assert!(
            cex.len() <= 1,
            "shortest counterexample is ε or 'a', got {cex:?}"
        );
        assert_eq!(inclusion_counterexample(&aa, &astar), None);
    }

    #[test]
    fn counted_determinization_reports_cost() {
        let n = ops::union(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"a")));
        let (d, cost) = determinize_counted(&n);
        assert_eq!(cost.dfa_states, d.num_states());
        assert!(cost.closure_visited > 0);
        // The counted path is the path: plain determinize is identical.
        assert_eq!(determinize(&n), d);
    }

    #[test]
    fn capped_determinization_aborts_before_exceeding() {
        let n = ops::union(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"a")));
        let (full, cost) = determinize_counted(&n);
        assert!(cost.dfa_states >= 2);
        assert!(try_determinize_counted(&n, cost.dfa_states - 1).is_none());
        assert!(try_determinize_counted(&n, 0).is_none());
        let (capped, _) = try_determinize_counted(&n, cost.dfa_states).expect("exact cap suffices");
        assert_eq!(capped, full);
    }

    #[test]
    fn dfa_roundtrip_to_nfa() {
        let n = ops::union(&Nfa::literal(b"x"), &Nfa::literal(b"yz"));
        let back = determinize(&n).to_nfa();
        assert!(equivalent(&n, &back));
    }
}
