//! Language-level analyses: cardinality, finiteness, enumeration, set
//! differences, and closures.
//!
//! The decision procedure's clients ask questions beyond membership: *how
//! many* exploits exist, *list me several* (the paper's test-case
//! generation use case wants indicative inputs), or *what changed* between
//! two solution languages. These run on the determinized machine so no
//! word is double-counted.

use crate::dfa::{complement, determinize, Dfa};
use crate::nfa::{Nfa, StateId};
use crate::ops;
use std::collections::VecDeque;

/// The cardinality of a regular language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LanguageSize {
    /// No members.
    Empty,
    /// Exactly this many members (saturating at `u128::MAX`).
    Finite(u128),
    /// Infinitely many members.
    Infinite,
}

impl LanguageSize {
    /// Whether the language has at least one member.
    pub fn is_nonempty(&self) -> bool {
        !matches!(self, LanguageSize::Empty)
    }
}

/// Computes the cardinality of `L(nfa)`.
///
/// A trimmed DFA recognizes an infinite language iff it contains any cycle
/// (every remaining state is live); otherwise the count is a sum over DAG
/// paths weighted by transition-class widths.
pub fn language_size(nfa: &Nfa) -> LanguageSize {
    let (dfa, live) = trimmed_dfa(nfa);
    if live.is_empty() {
        return LanguageSize::Empty;
    }
    // Cycle detection on live states.
    if has_cycle(&dfa, &live) {
        return LanguageSize::Infinite;
    }
    // DAG: count paths from start to finals with multiplicities.
    // paths(q) = [q final] + Σ_edges |class| · paths(target)
    let mut memo: Vec<Option<u128>> = vec![None; dfa.num_states()];
    fn paths(dfa: &Dfa, q: StateId, live: &[bool], memo: &mut Vec<Option<u128>>) -> u128 {
        if let Some(v) = memo[q.index()] {
            return v;
        }
        let mut total: u128 = u128::from(dfa.is_final(q));
        for &(class, t) in dfa.transitions(q) {
            if !live[t.index()] {
                continue;
            }
            let sub = paths(dfa, t, live, memo);
            total = total.saturating_add(sub.saturating_mul(class.len() as u128));
        }
        memo[q.index()] = Some(total);
        total
    }
    let n = paths(&dfa, dfa.start(), &live, &mut memo);
    if n == 0 {
        LanguageSize::Empty
    } else {
        LanguageSize::Finite(n)
    }
}

/// Whether the language is finite (including empty).
pub fn is_finite(nfa: &Nfa) -> bool {
    !matches!(language_size(nfa), LanguageSize::Infinite)
}

/// The number of members of length exactly `n` (saturating).
pub fn count_words_of_length(nfa: &Nfa, n: usize) -> u128 {
    let (dfa, live) = trimmed_dfa(nfa);
    if live.is_empty() {
        return 0;
    }
    // counts[q] = number of live paths of remaining length reaching a final.
    let mut counts: Vec<u128> = (0..dfa.num_states())
        .map(|q| u128::from(dfa.is_final(StateId(q as u32)) && live[q]))
        .collect();
    for _ in 0..n {
        let mut next = vec![0u128; dfa.num_states()];
        for q in 0..dfa.num_states() {
            if !live[q] {
                continue;
            }
            for &(class, t) in dfa.transitions(StateId(q as u32)) {
                if !live[t.index()] {
                    continue;
                }
                next[q] =
                    next[q].saturating_add(counts[t.index()].saturating_mul(class.len() as u128));
            }
        }
        counts = next;
    }
    if live[dfa.start().index()] {
        counts[dfa.start().index()]
    } else {
        0
    }
}

/// Lazily enumerates members in length-lexicographic order.
///
/// The iterator is unbounded for infinite languages; take what you need:
///
/// ```
/// use dprle_automata::{analysis::members, ops, Nfa};
///
/// let m = ops::star(&Nfa::literal(b"ab"));
/// let first: Vec<Vec<u8>> = members(&m).take(3).collect();
/// assert_eq!(first, vec![b"".to_vec(), b"ab".to_vec(), b"abab".to_vec()]);
/// ```
pub fn members(nfa: &Nfa) -> Members {
    let (dfa, live) = trimmed_dfa(nfa);
    let mut queue = VecDeque::new();
    if live.get(dfa.start().index()).copied().unwrap_or(false) {
        queue.push_back((dfa.start(), Vec::new()));
    }
    Members { dfa, live, queue }
}

/// Iterator returned by [`members`].
#[derive(Debug)]
pub struct Members {
    dfa: Dfa,
    live: Vec<bool>,
    queue: VecDeque<(StateId, Vec<u8>)>,
}

impl Iterator for Members {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        while let Some((q, word)) = self.queue.pop_front() {
            // Enqueue successors in byte order for lexicographic output.
            let mut steps: Vec<(u8, StateId)> = Vec::new();
            for &(class, t) in self.dfa.transitions(q) {
                if !self.live[t.index()] {
                    continue;
                }
                for b in class.iter() {
                    steps.push((b, t));
                }
            }
            steps.sort();
            for (b, t) in steps {
                let mut w = word.clone();
                w.push(b);
                self.queue.push_back((t, w));
            }
            if self.dfa.is_final(q) {
                return Some(word);
            }
        }
        None
    }
}

/// The machine for `L(a) \ L(b)`.
pub fn difference(a: &Nfa, b: &Nfa) -> Nfa {
    ops::intersect(a, &complement(b)).nfa.trim().0
}

/// The machine for the symmetric difference `(A \ B) ∪ (B \ A)` — empty iff
/// the languages are equal, and its members are concrete disagreement
/// witnesses.
pub fn symmetric_difference(a: &Nfa, b: &Nfa) -> Nfa {
    ops::union(&difference(a, b), &difference(b, a))
}

/// The prefix closure: every prefix of every member.
///
/// Construction: mark every co-reachable state final.
pub fn prefix_closure(nfa: &Nfa) -> Nfa {
    let (trimmed, _) = nfa.trim();
    let mut out = trimmed.clone();
    for q in trimmed.state_ids() {
        out.add_final(q);
    }
    out.trim().0
}

/// The suffix closure: every suffix of every member.
pub fn suffix_closure(nfa: &Nfa) -> Nfa {
    prefix_closure(&nfa.reverse()).reverse().trim().0
}

/// The factor (infix) closure: every contiguous substring of every member.
pub fn factor_closure(nfa: &Nfa) -> Nfa {
    suffix_closure(&prefix_closure(nfa))
}

fn trimmed_dfa(nfa: &Nfa) -> (Dfa, Vec<bool>) {
    let dfa = determinize(&nfa.trim().0);
    // Live = co-reachable in the DFA (reachability is given by subset
    // construction).
    let as_nfa = dfa.to_nfa();
    let live = as_nfa.co_reachable();
    (dfa, live)
}

fn has_cycle(dfa: &Dfa, live: &[bool]) -> bool {
    // Iterative DFS with colors over live states only.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = dfa.num_states();
    let mut color = vec![Color::White; n];
    for root in 0..n {
        if !live[root] || color[root] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Grey;
        while let Some(&mut (q, ref mut edge)) = stack.last_mut() {
            let row = dfa.transitions(StateId(q as u32));
            // Advance to the next live successor.
            let mut next = None;
            while *edge < row.len() {
                let (_, t) = row[*edge];
                *edge += 1;
                if live[t.index()] {
                    next = Some(t.index());
                    break;
                }
            }
            match next {
                Some(t) => match color[t] {
                    Color::Grey => return true,
                    Color::White => {
                        color[t] = Color::Grey;
                        stack.push((t, 0));
                    }
                    Color::Black => {}
                },
                None => {
                    color[q] = Color::Black;
                    stack.pop();
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::dfa::equivalent;

    #[test]
    fn size_of_basic_languages() {
        assert_eq!(language_size(&Nfa::empty_language()), LanguageSize::Empty);
        assert_eq!(language_size(&Nfa::epsilon()), LanguageSize::Finite(1));
        assert_eq!(
            language_size(&Nfa::literal(b"abc")),
            LanguageSize::Finite(1)
        );
        assert_eq!(language_size(&Nfa::sigma_star()), LanguageSize::Infinite);
        let union = ops::union(&Nfa::literal(b"a"), &Nfa::literal(b"bb"));
        assert_eq!(language_size(&union), LanguageSize::Finite(2));
    }

    #[test]
    fn size_counts_class_widths() {
        // [0-9]{2} has exactly 100 members.
        let two_digits = Nfa::class_repeat(ByteClass::range(b'0', b'9'), 2, 2);
        assert_eq!(language_size(&two_digits), LanguageSize::Finite(100));
        // [0-9]{0,2}: 1 + 10 + 100.
        let upto = Nfa::class_repeat(ByteClass::range(b'0', b'9'), 0, 2);
        assert_eq!(language_size(&upto), LanguageSize::Finite(111));
    }

    #[test]
    fn finiteness_judgments() {
        assert!(is_finite(&Nfa::literal(b"x")));
        assert!(is_finite(&Nfa::empty_language()));
        assert!(!is_finite(&ops::star(&Nfa::literal(b"x"))));
        // A machine with a cycle on a dead path is still finite.
        let mut m = Nfa::literal(b"ok");
        let dead = m.add_state();
        m.add_edge(dead, ByteClass::FULL, dead);
        m.add_edge(m.start(), ByteClass::singleton(b'z'), dead);
        assert!(is_finite(&m));
    }

    #[test]
    fn count_by_length() {
        let m = ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b'])));
        assert_eq!(count_words_of_length(&m, 0), 1);
        assert_eq!(count_words_of_length(&m, 3), 8);
        assert_eq!(count_words_of_length(&Nfa::literal(b"hi"), 2), 1);
        assert_eq!(count_words_of_length(&Nfa::literal(b"hi"), 3), 0);
        assert_eq!(count_words_of_length(&Nfa::empty_language(), 0), 0);
    }

    #[test]
    fn members_in_length_lex_order() {
        let m = ops::union(
            &ops::union(&Nfa::literal(b"b"), &Nfa::literal(b"a")),
            &Nfa::literal(b"ab"),
        );
        let all: Vec<Vec<u8>> = members(&m).collect();
        assert_eq!(all, vec![b"a".to_vec(), b"b".to_vec(), b"ab".to_vec()]);
    }

    #[test]
    fn members_of_empty_language() {
        assert_eq!(members(&Nfa::empty_language()).count(), 0);
    }

    #[test]
    fn members_agree_with_enumerate_upto() {
        let m = ops::concat(&ops::star(&Nfa::literal(b"ab")), &Nfa::literal(b"a")).nfa;
        let from_iter: Vec<Vec<u8>> = members(&m).take_while(|w| w.len() <= 5).collect();
        let reference = m.enumerate_upto(b"ab", 5);
        assert_eq!(from_iter.len(), reference.len());
        for w in &from_iter {
            assert!(reference.contains(w));
        }
    }

    #[test]
    fn difference_and_symmetric_difference() {
        let astar = ops::star(&Nfa::literal(b"a"));
        let aa = Nfa::literal(b"aa");
        let diff = difference(&astar, &aa);
        assert!(diff.contains(b""));
        assert!(diff.contains(b"a"));
        assert!(!diff.contains(b"aa"));
        assert!(diff.contains(b"aaa"));
        let sym = symmetric_difference(&astar, &astar);
        assert!(sym.is_empty_language());
        let sym2 = symmetric_difference(&astar, &aa);
        assert!(equivalent(&sym2, &diff));
    }

    #[test]
    fn closures() {
        let m = Nfa::literal(b"abc");
        let pre = prefix_closure(&m);
        for w in [&b""[..], b"a", b"ab", b"abc"] {
            assert!(pre.contains(w), "prefix {w:?}");
        }
        assert!(!pre.contains(b"b"));
        let suf = suffix_closure(&m);
        for w in [&b""[..], b"c", b"bc", b"abc"] {
            assert!(suf.contains(w), "suffix {w:?}");
        }
        assert!(!suf.contains(b"ab"));
        let fac = factor_closure(&m);
        for w in [&b""[..], b"b", b"ab", b"bc", b"abc"] {
            assert!(fac.contains(w), "factor {w:?}");
        }
        assert!(!fac.contains(b"ac"));
    }

    #[test]
    fn closure_of_infinite_language() {
        let m = ops::concat(&Nfa::literal(b"x"), &ops::star(&Nfa::literal(b"y"))).nfa;
        let pre = prefix_closure(&m);
        assert!(pre.contains(b""));
        assert!(pre.contains(b"x"));
        assert!(pre.contains(b"xyy"));
        assert!(!pre.contains(b"y"));
    }
}
