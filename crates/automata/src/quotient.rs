//! Language quotients.
//!
//! Quotients answer "what can follow (or precede) a known prefix (suffix)
//! language": the *existential* left quotient `C⁻¹L = {w | ∃u ∈ C. uw ∈ L}`
//! and its *universal* refinement `{w | ∀u ∈ C. uw ∈ L}`.
//!
//! The solver uses the universal quotient when a concatenation operand is a
//! *constant*: a constant's language cannot be narrowed by the solver, so
//! the maximal partner language is exactly the universal quotient (see
//! `dprle-core`'s `gci` module). Quotients of regular languages by regular
//! languages are regular; these constructions witness that.

use crate::dfa::complement;
use crate::nfa::{Nfa, StateId};
use crate::ops::intersect;
use std::collections::BTreeSet;

/// Existential left quotient: `{w | ∃u ∈ L(by), u·w ∈ L(of)}`.
///
/// Construction: run the product of `of` and `by` from their joint start;
/// every `of`-state `p` that is paired with a final `by`-state is a point
/// where some `u ∈ L(by)` has just been consumed, so the quotient machine is
/// `of` restarted (by fresh epsilon edges) from all such `p`.
pub fn left_quotient(of: &Nfa, by: &Nfa) -> Nfa {
    let product = intersect(of, by);
    let mut entry_points: BTreeSet<StateId> = BTreeSet::new();
    // Account for epsilon closure on the product side: a pair (p, q) where q
    // can epsilon-reach a by-final means u ends at p as well.
    let closure_memo: Vec<bool> = {
        // For each by-state, can it epsilon-reach a final state of `by`?
        let mut can = vec![false; by.num_states()];
        for q in by.state_ids() {
            let cl = by.eps_closure(&BTreeSet::from([q]));
            can[q.index()] = cl.iter().any(|s| by.is_final(*s));
        }
        can
    };
    for (i, &(p, q)) in product.pairs.iter().enumerate() {
        // Only product states actually reachable matter; `pairs` only holds
        // reachable ones by construction.
        let _ = i;
        if closure_memo[q.index()] {
            entry_points.insert(p);
        }
    }
    let mut out = of.clone();
    let new_start = out.add_state();
    for p in entry_points {
        out.add_eps(new_start, p);
    }
    out.set_start(new_start);
    out.trim().0
}

/// Universal left quotient: `{w | ∀u ∈ L(by), u·w ∈ L(of)}`.
///
/// A word `w` is *bad* iff some `u ∈ L(by)` has `uw ∉ L(of)`, i.e. iff
/// `w ∈ left_quotient(¬L(of), by)`; the universal quotient is the complement
/// of that. When `L(by)` is empty the condition is vacuous and the result is
/// Σ*.
pub fn left_quotient_universal(of: &Nfa, by: &Nfa) -> Nfa {
    let bad = left_quotient(&complement(of), by);
    complement(&bad)
}

/// Existential right quotient: `{w | ∃u ∈ L(by), w·u ∈ L(of)}`.
pub fn right_quotient(of: &Nfa, by: &Nfa) -> Nfa {
    left_quotient(&of.reverse(), &by.reverse())
        .reverse()
        .trim()
        .0
}

/// Universal right quotient: `{w | ∀u ∈ L(by), w·u ∈ L(of)}`.
pub fn right_quotient_universal(of: &Nfa, by: &Nfa) -> Nfa {
    let bad = right_quotient(&complement(of), by);
    complement(&bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::equivalent;
    use crate::ops;

    #[test]
    fn left_quotient_of_literal() {
        let l = Nfa::literal(b"abc");
        let q = left_quotient(&l, &Nfa::literal(b"ab"));
        assert!(q.contains(b"c"));
        assert!(!q.contains(b"bc"));
        assert!(!q.contains(b""));
    }

    #[test]
    fn left_quotient_existential_is_union_over_prefixes() {
        // by = {a, ab}; of = {ax, aby}. ∃-quotient = {x, y, by}? a⁻¹of = {x, by?}
        // a·w ∈ of ⇒ w ∈ {x, by}; ab·w ∈ of ⇒ w ∈ {y}. Union: {x, by, y}.
        let of = ops::union(&Nfa::literal(b"ax"), &Nfa::literal(b"aby"));
        let by = ops::union(&Nfa::literal(b"a"), &Nfa::literal(b"ab"));
        let q = left_quotient(&of, &by);
        for w in [&b"x"[..], b"by", b"y"] {
            assert!(q.contains(w), "missing {w:?}");
        }
        assert!(!q.contains(b"ax"));
    }

    #[test]
    fn left_quotient_universal_requires_all_prefixes() {
        // by = {a, ab}; of = {ab, abb}. ∀-quotient = {b}: a·b=ab ✓, ab·b=abb ✓.
        let of = ops::union(&Nfa::literal(b"ab"), &Nfa::literal(b"abb"));
        let by = ops::union(&Nfa::literal(b"a"), &Nfa::literal(b"ab"));
        let q = left_quotient_universal(&of, &by);
        assert!(q.contains(b"b"));
        assert!(!q.contains(b""));
        assert!(!q.contains(b"bb"));
        let expected = Nfa::literal(b"b");
        assert!(equivalent(&q, &expected));
    }

    #[test]
    fn universal_quotient_by_empty_is_sigma_star() {
        let of = Nfa::literal(b"x");
        let q = left_quotient_universal(&of, &Nfa::empty_language());
        assert!(equivalent(&q, &Nfa::sigma_star()));
    }

    #[test]
    fn universal_equals_existential_for_singleton() {
        let of = ops::concat(&Nfa::literal(b"nid_"), &ops::star(&Nfa::literal(b"7"))).nfa;
        let by = Nfa::literal(b"nid_");
        assert!(equivalent(
            &left_quotient(&of, &by),
            &left_quotient_universal(&of, &by)
        ));
    }

    #[test]
    fn right_quotient_of_literal() {
        let l = Nfa::literal(b"abc");
        let q = right_quotient(&l, &Nfa::literal(b"bc"));
        assert!(q.contains(b"a"));
        assert!(!q.contains(b"ab"));
    }

    #[test]
    fn right_quotient_universal_requires_all_suffixes() {
        // of = {ba, bba}; by = {a, ba}. w·a ∈ of ∧ w·ba ∈ of ⇒ w = b.
        let of = ops::union(&Nfa::literal(b"ba"), &Nfa::literal(b"bba"));
        let by = ops::union(&Nfa::literal(b"a"), &Nfa::literal(b"ba"));
        let q = right_quotient_universal(&of, &by);
        assert!(q.contains(b"b"));
        assert!(!q.contains(b"bb"));
        assert!(!q.contains(b""));
    }

    #[test]
    fn quotient_with_sigma_star_prefix() {
        // Σ*⁻¹ L for L = Σ*'x' is all suffixes of members = Σ*x ∪ ... contains x and ε?
        // ∃u∈Σ*: u·w ∈ Σ*x ⇔ w ∈ Σ*x ∪ {suffixes}: any w that ends in x, plus ε
        // (u can supply the whole word)... ε: u·ε ∈ L possible, so ε included.
        let l = ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"x")).nfa;
        let q = left_quotient(&l, &Nfa::sigma_star());
        assert!(q.contains(b""));
        assert!(q.contains(b"x"));
        assert!(q.contains(b"yx"));
        assert!(!q.contains(b"y"));
    }
}
