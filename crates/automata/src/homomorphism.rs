//! Images and preimages under byte-to-byte homomorphisms.
//!
//! Case folding (`strtolower`), ROT13, and similar per-byte rewritings are
//! *alphabetic homomorphisms*: they map each byte to one byte, extended
//! pointwise to strings. Regular languages are closed under both the image
//! and the preimage of such maps, and both constructions are linear in the
//! machine — so constraints like `strtolower(v) ⊆ c` stay inside the
//! decidable theory (`strtolower(v) ⊆ c ⟺ v ⊆ preimage(c)`). The paper
//! excludes general `replace` (which breaks decidability, §5 citing
//! Bjørner et al.); per-byte maps are the decidable fragment of that
//! feature space.

use crate::byteclass::ByteClass;
use crate::nfa::Nfa;

/// A byte-to-byte map, e.g. ASCII case folding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ByteMap {
    table: [u8; 256],
}

impl ByteMap {
    /// The identity map.
    pub fn identity() -> ByteMap {
        let mut table = [0u8; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = i as u8;
        }
        ByteMap { table }
    }

    /// Builds a map from an explicit table.
    pub fn from_table(table: [u8; 256]) -> ByteMap {
        ByteMap { table }
    }

    /// ASCII lower-casing (PHP `strtolower` on ASCII).
    pub fn to_lowercase() -> ByteMap {
        let mut m = ByteMap::identity();
        for b in b'A'..=b'Z' {
            m.table[b as usize] = b + 32;
        }
        m
    }

    /// ASCII upper-casing.
    pub fn to_uppercase() -> ByteMap {
        let mut m = ByteMap::identity();
        for b in b'a'..=b'z' {
            m.table[b as usize] = b - 32;
        }
        m
    }

    /// ROT13 on ASCII letters.
    pub fn rot13() -> ByteMap {
        let mut m = ByteMap::identity();
        for b in b'a'..=b'z' {
            m.table[b as usize] = (b - b'a' + 13) % 26 + b'a';
        }
        for b in b'A'..=b'Z' {
            m.table[b as usize] = (b - b'A' + 13) % 26 + b'A';
        }
        m
    }

    /// Applies the map to one byte.
    pub fn map(&self, b: u8) -> u8 {
        self.table[b as usize]
    }

    /// Applies the map to a string.
    pub fn map_bytes(&self, s: &[u8]) -> Vec<u8> {
        s.iter().map(|&b| self.map(b)).collect()
    }

    /// The image of a byte class.
    pub fn image_class(&self, class: &ByteClass) -> ByteClass {
        ByteClass::from_bytes(class.iter().map(|b| self.map(b)))
    }

    /// The preimage of a byte class: all bytes mapping into it.
    pub fn preimage_class(&self, class: &ByteClass) -> ByteClass {
        ByteClass::from_bytes((0u8..=255).filter(|&b| class.contains(self.map(b))))
    }
}

/// The machine for `h(L) = {h(w) | w ∈ L}`.
pub fn image(nfa: &Nfa, map: &ByteMap) -> Nfa {
    rewrite_classes(nfa, |c| map.image_class(c))
}

/// The machine for `h⁻¹(L) = {w | h(w) ∈ L}`.
///
/// This is the construction that keeps mapped constraints decidable:
/// `h(v) ⊆ c ⟺ v ⊆ h⁻¹(c)`.
pub fn preimage(nfa: &Nfa, map: &ByteMap) -> Nfa {
    rewrite_classes(nfa, |c| map.preimage_class(c))
}

fn rewrite_classes(nfa: &Nfa, f: impl Fn(&ByteClass) -> ByteClass) -> Nfa {
    let mut out = Nfa::new();
    let mut ids = vec![out.start()];
    for _ in 1..nfa.num_states() {
        ids.push(out.add_state());
    }
    out.set_start(ids[nfa.start().index()]);
    for (from, class, to) in nfa.edges() {
        let mapped = f(&class);
        if !mapped.is_empty() {
            out.add_edge(ids[from.index()], mapped, ids[to.index()]);
        }
    }
    for (from, to) in nfa.eps_edges() {
        out.add_eps(ids[from.index()], ids[to.index()]);
    }
    for &final_ in nfa.finals() {
        out.add_final(ids[final_.index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{equivalent, is_subset};
    use crate::ops;

    #[test]
    fn byte_map_basics() {
        let lower = ByteMap::to_lowercase();
        assert_eq!(lower.map(b'A'), b'a');
        assert_eq!(lower.map(b'a'), b'a');
        assert_eq!(lower.map(b'3'), b'3');
        assert_eq!(lower.map_bytes(b"MiXeD 42"), b"mixed 42");
        let upper = ByteMap::to_uppercase();
        assert_eq!(upper.map_bytes(b"abcZ"), b"ABCZ");
        let rot = ByteMap::rot13();
        assert_eq!(rot.map_bytes(b"Hello"), b"Uryyb");
        assert_eq!(rot.map_bytes(&rot.map_bytes(b"Hello")), b"Hello");
        assert_eq!(ByteMap::identity().map_bytes(b"x"), b"x");
    }

    #[test]
    fn class_image_and_preimage() {
        let lower = ByteMap::to_lowercase();
        let letters = ByteClass::range(b'A', b'Z');
        assert_eq!(lower.image_class(&letters), ByteClass::range(b'a', b'z'));
        let lowercase = ByteClass::range(b'a', b'z');
        let pre = lower.preimage_class(&lowercase);
        assert!(pre.contains(b'a') && pre.contains(b'A'));
        assert!(!pre.contains(b'0'));
        assert_eq!(pre.len(), 52);
    }

    #[test]
    fn image_of_literal() {
        let m = image(&Nfa::literal(b"HeLLo"), &ByteMap::to_lowercase());
        assert!(m.contains(b"hello"));
        assert!(!m.contains(b"HeLLo"));
    }

    #[test]
    fn preimage_of_literal_is_all_casings() {
        let m = preimage(&Nfa::literal(b"ok"), &ByteMap::to_lowercase());
        for w in [&b"ok"[..], b"OK", b"Ok", b"oK"] {
            assert!(m.contains(w), "{w:?}");
        }
        assert!(!m.contains(b"no"));
        // Exactly 4 preimages of a 2-letter word.
        assert_eq!(
            crate::analysis::language_size(&m),
            crate::analysis::LanguageSize::Finite(4)
        );
    }

    #[test]
    fn galois_connection() {
        // h(x) ∈ L ⟺ x ∈ h⁻¹(L), exercised on machines: image(A) ⊆ L ⟺
        // A ⊆ preimage(L).
        let lower = ByteMap::to_lowercase();
        let l = ops::star(&Nfa::class(ByteClass::range(b'a', b'z')));
        let a = ops::star(&Nfa::class(ByteClass::range(b'A', b'Z')));
        assert!(is_subset(&image(&a, &lower), &l));
        assert!(is_subset(&a, &preimage(&l, &lower)));
        // And a negative case: digits are not letters under lowering.
        let digits = Nfa::class(ByteClass::range(b'0', b'9'));
        assert!(!is_subset(&image(&digits, &lower), &l));
        assert!(!is_subset(&digits, &preimage(&l, &lower)));
    }

    #[test]
    fn identity_maps_are_no_ops() {
        let m = ops::union(&Nfa::literal(b"ab"), &ops::star(&Nfa::literal(b"c")));
        assert!(equivalent(&image(&m, &ByteMap::identity()), &m));
        assert!(equivalent(&preimage(&m, &ByteMap::identity()), &m));
    }

    #[test]
    fn rot13_is_an_involution_on_languages() {
        let rot = ByteMap::rot13();
        let m = ops::union(&Nfa::literal(b"attack"), &Nfa::literal(b"AtDawn"));
        let twice = image(&image(&m, &rot), &rot);
        assert!(equivalent(&twice, &m));
    }

    #[test]
    fn mapped_constraint_pushback() {
        // strtolower(v) ⊆ "select" ⟹ v is any casing of "select".
        let bound = Nfa::literal(b"select");
        let v_language = preimage(&bound, &ByteMap::to_lowercase());
        assert!(v_language.contains(b"SELECT"));
        assert!(v_language.contains(b"SeLeCt"));
        assert!(!v_language.contains(b"selec"));
        // Round-trip: the image of the solution is within the bound.
        assert!(is_subset(
            &image(&v_language, &ByteMap::to_lowercase()),
            &bound
        ));
    }
}
