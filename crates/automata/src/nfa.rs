//! Nondeterministic finite automata with epsilon transitions.
//!
//! This is the machine representation the paper's constructions operate on:
//! every constant and intermediate language in the decision procedure is an
//! [`Nfa`]. Transitions are labelled with [`ByteClass`]es (sets of bytes) or
//! are epsilon transitions. Machines carry one start state and a set of final
//! states; the paper's algorithms additionally assume a *normalized* shape
//! (single final state, no edges out of the final state, no edges into the
//! start state) which [`Nfa::normalize`] establishes.

use crate::byteclass::ByteClass;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Identifier of an NFA state. Indexes into the machine's state vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The state's index into the machine's state vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A single NFA state: its labelled out-edges and epsilon out-edges.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct State {
    /// Byte-class-labelled transitions out of this state.
    pub edges: Vec<(ByteClass, StateId)>,
    /// Epsilon transitions out of this state.
    pub eps: Vec<StateId>,
}

/// An epsilon-NFA over the byte alphabet.
///
/// # Examples
///
/// ```
/// use dprle_automata::Nfa;
///
/// let m = Nfa::literal(b"nid_");
/// assert!(m.contains(b"nid_"));
/// assert!(!m.contains(b"nid"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
    finals: BTreeSet<StateId>,
}

impl Nfa {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a machine with a single start state and no transitions or
    /// final states; recognizes the empty language.
    pub fn new() -> Self {
        Nfa {
            states: vec![State::default()],
            start: StateId(0),
            finals: BTreeSet::new(),
        }
    }

    /// The machine for the empty language ∅.
    pub fn empty_language() -> Self {
        Self::new()
    }

    /// The machine for the language {ε} containing only the empty string.
    pub fn epsilon() -> Self {
        let mut m = Self::new();
        m.finals.insert(m.start);
        m
    }

    /// The machine recognizing exactly the byte string `word`.
    pub fn literal(word: &[u8]) -> Self {
        let mut m = Self::new();
        let mut cur = m.start;
        for &b in word {
            let next = m.add_state();
            m.add_edge(cur, ByteClass::singleton(b), next);
            cur = next;
        }
        m.finals.insert(cur);
        m
    }

    /// The machine recognizing exactly the single-byte strings drawn from
    /// `class`. An empty class yields the empty language.
    pub fn class(class: ByteClass) -> Self {
        let mut m = Self::new();
        let f = m.add_state();
        if !class.is_empty() {
            m.add_edge(m.start, class, f);
        }
        m.finals.insert(f);
        m
    }

    /// The machine for Σ* (every byte string). Two states, normalized shape.
    pub fn sigma_star() -> Self {
        let mut m = Self::new();
        let mid = m.add_state();
        let f = m.add_state();
        m.add_eps(m.start, mid);
        m.add_edge(mid, ByteClass::FULL, mid);
        m.add_eps(mid, f);
        m.finals.insert(f);
        m
    }

    /// The machine for all strings of length exactly `n`.
    pub fn exact_length(n: usize) -> Self {
        let mut m = Self::new();
        let mut cur = m.start;
        for _ in 0..n {
            let next = m.add_state();
            m.add_edge(cur, ByteClass::FULL, next);
            cur = next;
        }
        m.finals.insert(cur);
        m
    }

    /// The machine for `class{min,max}`: between `min` and `max` bytes, each
    /// drawn from `class`. A lean chain of `max` states with no epsilon
    /// edges — preferred over composing `class` with `ops::repeat_range`
    /// when machine size matters (e.g. in scaling studies).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn class_repeat(class: ByteClass, min: usize, max: usize) -> Self {
        assert!(min <= max, "class_repeat requires min <= max");
        let mut m = Self::new();
        let mut cur = m.start;
        for i in 0..=max {
            if i >= min {
                m.finals.insert(cur);
            }
            if i < max && !class.is_empty() {
                let next = m.add_state();
                m.add_edge(cur, class, next);
                cur = next;
            } else if i < max {
                break; // empty class: only lengths covered so far (i.e. 0)
            }
        }
        if min > 0 && class.is_empty() {
            m.clear_finals();
        }
        m
    }

    /// The machine for a finite set of words, built as a byte trie —
    /// deterministic and far smaller than a union of literal machines.
    ///
    /// ```
    /// use dprle_automata::Nfa;
    ///
    /// let m = Nfa::from_words([&b"cat"[..], b"car", b"dog"]);
    /// assert!(m.contains(b"car"));
    /// assert!(!m.contains(b"ca"));
    /// ```
    pub fn from_words<'a, I: IntoIterator<Item = &'a [u8]>>(words: I) -> Self {
        let mut m = Self::new();
        for word in words {
            let mut cur = m.start;
            for &b in word {
                // Follow an existing singleton edge when present.
                let existing = m.states[cur.index()]
                    .edges
                    .iter()
                    .find(|(c, _)| c.len() == 1 && c.contains(b))
                    .map(|&(_, t)| t);
                cur = match existing {
                    Some(t) => t,
                    None => {
                        let next = m.add_state();
                        m.add_edge(cur, ByteClass::singleton(b), next);
                        next
                    }
                };
            }
            m.finals.insert(cur);
        }
        m
    }

    /// The machine for all strings whose length lies in `min..=max`.
    pub fn length_between(min: usize, max: usize) -> Self {
        let mut m = Self::new();
        let mut cur = m.start;
        for i in 0..=max {
            if i >= min {
                m.finals.insert(cur);
            }
            if i < max {
                let next = m.add_state();
                m.add_edge(cur, ByteClass::FULL, next);
                cur = next;
            }
        }
        m
    }

    // ------------------------------------------------------------------
    // Raw construction
    // ------------------------------------------------------------------

    /// Appends a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.states.push(State::default());
        StateId((self.states.len() - 1) as u32)
    }

    /// Adds a byte-class transition `from --class--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of range.
    pub fn add_edge(&mut self, from: StateId, class: ByteClass, to: StateId) {
        assert!(to.index() < self.states.len(), "edge target out of range");
        self.states[from.index()].edges.push((class, to));
    }

    /// Adds an epsilon transition `from --ε--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of range.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        assert!(to.index() < self.states.len(), "edge target out of range");
        self.states[from.index()].eps.push(to);
    }

    /// Changes the start state.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn set_start(&mut self, start: StateId) {
        assert!(start.index() < self.states.len(), "start out of range");
        self.start = start;
    }

    /// Marks `state` as final.
    pub fn add_final(&mut self, state: StateId) {
        assert!(state.index() < self.states.len(), "final out of range");
        self.finals.insert(state);
    }

    /// Removes all final markers.
    pub fn clear_finals(&mut self) {
        self.finals.clear();
    }

    /// Replaces the final-state set with exactly `{state}`.
    ///
    /// This is the primitive behind the paper's `induce_from_final`.
    pub fn set_single_final(&mut self, state: StateId) {
        assert!(state.index() < self.states.len(), "final out of range");
        self.finals.clear();
        self.finals.insert(state);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The total number of transitions (byte-class plus epsilon).
    pub fn num_transitions(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.edges.len() + s.eps.len())
            .sum()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The set of final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// Borrows the state record for `state`.
    pub fn state(&self, state: StateId) -> &State {
        &self.states[state.index()]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Iterates over all byte-class edges as `(from, class, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (StateId, ByteClass, StateId)> + '_ {
        self.states
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.edges.iter().map(move |&(c, t)| (StateId(i as u32), c, t)))
    }

    /// Iterates over all epsilon edges as `(from, to)`.
    pub fn eps_edges(&self) -> impl Iterator<Item = (StateId, StateId)> + '_ {
        self.states
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.eps.iter().map(move |&t| (StateId(i as u32), t)))
    }

    // ------------------------------------------------------------------
    // Simulation
    // ------------------------------------------------------------------

    /// The epsilon closure of a set of states.
    pub fn eps_closure(&self, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = set.clone();
        let mut work: Vec<StateId> = set.iter().copied().collect();
        while let Some(q) = work.pop() {
            for &t in &self.states[q.index()].eps {
                if closure.insert(t) {
                    work.push(t);
                }
            }
        }
        closure
    }

    /// One simulation step: all states reachable from `set` by consuming `b`
    /// (without taking the epsilon closure of the result).
    pub fn step(&self, set: &BTreeSet<StateId>, b: u8) -> BTreeSet<StateId> {
        let mut out = BTreeSet::new();
        for &q in set {
            for &(c, t) in &self.states[q.index()].edges {
                if c.contains(b) {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// Tests whether the machine accepts `word`.
    pub fn contains(&self, word: &[u8]) -> bool {
        let mut cur = self.eps_closure(&BTreeSet::from([self.start]));
        for &b in word {
            if cur.is_empty() {
                return false;
            }
            cur = self.eps_closure(&self.step(&cur, b));
        }
        cur.iter().any(|q| self.finals.contains(q))
    }

    /// Tests whether the recognized language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.shortest_member_len().is_none()
    }

    /// Tests whether the machine accepts the empty string.
    pub fn accepts_epsilon(&self) -> bool {
        self.eps_closure(&BTreeSet::from([self.start]))
            .iter()
            .any(|q| self.finals.contains(q))
    }

    // ------------------------------------------------------------------
    // Reachability and witnesses
    // ------------------------------------------------------------------

    /// States reachable from the start state (following any edge kind).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut work = vec![self.start];
        seen[self.start.index()] = true;
        while let Some(q) = work.pop() {
            let st = &self.states[q.index()];
            for &(c, t) in &st.edges {
                if !c.is_empty() && !seen[t.index()] {
                    seen[t.index()] = true;
                    work.push(t);
                }
            }
            for &t in &st.eps {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    work.push(t);
                }
            }
        }
        seen
    }

    /// States from which some final state is reachable (co-reachable states).
    pub fn co_reachable(&self) -> Vec<bool> {
        // Build reverse adjacency once, then BFS from all finals.
        let mut radj: Vec<Vec<StateId>> = vec![Vec::new(); self.states.len()];
        for (i, st) in self.states.iter().enumerate() {
            for &(c, t) in &st.edges {
                if !c.is_empty() {
                    radj[t.index()].push(StateId(i as u32));
                }
            }
            for &t in &st.eps {
                radj[t.index()].push(StateId(i as u32));
            }
        }
        let mut seen = vec![false; self.states.len()];
        let mut work: Vec<StateId> = Vec::new();
        for &f in &self.finals {
            if !seen[f.index()] {
                seen[f.index()] = true;
                work.push(f);
            }
        }
        while let Some(q) = work.pop() {
            for &p in &radj[q.index()] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    work.push(p);
                }
            }
        }
        seen
    }

    /// The length of a shortest accepted string, or `None` if the language is
    /// empty. Epsilon edges cost 0; byte edges cost 1 (0-1 BFS).
    pub fn shortest_member_len(&self) -> Option<usize> {
        let mut dist: Vec<Option<usize>> = vec![None; self.states.len()];
        let mut dq: VecDeque<StateId> = VecDeque::new();
        dist[self.start.index()] = Some(0);
        dq.push_back(self.start);
        while let Some(q) = dq.pop_front() {
            let d = dist[q.index()].expect("queued state has distance");
            if self.finals.contains(&q) {
                return Some(d);
            }
            for &t in &self.states[q.index()].eps {
                if dist[t.index()].is_none_or(|old| d < old) {
                    dist[t.index()] = Some(d);
                    dq.push_front(t);
                }
            }
            for &(c, t) in &self.states[q.index()].edges {
                if !c.is_empty() && dist[t.index()].is_none_or(|old| d + 1 < old) {
                    dist[t.index()] = Some(d + 1);
                    dq.push_back(t);
                }
            }
        }
        None
    }

    /// A shortest accepted string, or `None` if the language is empty.
    ///
    /// When several bytes label the chosen edge a printable representative is
    /// preferred, so witnesses produced for, e.g., SQL-injection exploits are
    /// readable.
    pub fn shortest_member(&self) -> Option<Vec<u8>> {
        #[derive(Clone)]
        enum Back {
            Root,
            Eps(StateId),
            Byte(StateId, u8),
        }
        let mut back: Vec<Option<(usize, Back)>> = vec![None; self.states.len()];
        let mut dq: VecDeque<StateId> = VecDeque::new();
        back[self.start.index()] = Some((0, Back::Root));
        dq.push_back(self.start);
        let mut hit: Option<StateId> = None;
        while let Some(q) = dq.pop_front() {
            let d = back[q.index()].as_ref().expect("queued state has entry").0;
            if self.finals.contains(&q) {
                hit = Some(q);
                break;
            }
            for &t in &self.states[q.index()].eps {
                if back[t.index()].as_ref().is_none_or(|(old, _)| d < *old) {
                    back[t.index()] = Some((d, Back::Eps(q)));
                    dq.push_front(t);
                }
            }
            for &(c, t) in &self.states[q.index()].edges {
                if c.is_empty() {
                    continue;
                }
                if back[t.index()].as_ref().is_none_or(|(old, _)| d + 1 < *old) {
                    let b = c.pick_representative().expect("nonempty class");
                    back[t.index()] = Some((d + 1, Back::Byte(q, b)));
                    dq.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        loop {
            match back[cur.index()].as_ref().expect("path entry").1.clone() {
                Back::Root => break,
                Back::Eps(p) => cur = p,
                Back::Byte(p, b) => {
                    word.push(b);
                    cur = p;
                }
            }
        }
        word.reverse();
        Some(word)
    }

    /// Enumerates every accepted string over the restricted alphabet
    /// `alphabet` with length at most `max_len`, in length-lexicographic
    /// order. Intended for exhaustive cross-checking in tests; cost is
    /// O(|alphabet|^max_len).
    pub fn enumerate_upto(&self, alphabet: &[u8], max_len: usize) -> BTreeSet<Vec<u8>> {
        let mut out = BTreeSet::new();
        let mut layer: Vec<(Vec<u8>, BTreeSet<StateId>)> =
            vec![(Vec::new(), self.eps_closure(&BTreeSet::from([self.start])))];
        if layer[0].1.iter().any(|q| self.finals.contains(q)) {
            out.insert(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (word, set) in &layer {
                for &b in alphabet {
                    let stepped = self.eps_closure(&self.step(set, b));
                    if stepped.is_empty() {
                        continue;
                    }
                    let mut w = word.clone();
                    w.push(b);
                    if stepped.iter().any(|q| self.finals.contains(q)) {
                        out.insert(w.clone());
                    }
                    next.push((w, stepped));
                }
            }
            layer = next;
            if layer.is_empty() {
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Structural transformations
    // ------------------------------------------------------------------

    /// Removes states that are unreachable from the start or from which no
    /// final state is reachable, renumbering the survivors.
    ///
    /// The start state is always kept (a trimmed empty language keeps its
    /// start state and nothing else). Returns the trimmed machine and, for
    /// bookkeeping by callers that track state provenance, the mapping from
    /// new state ids to old ones.
    pub fn trim(&self) -> (Nfa, Vec<StateId>) {
        let reach = self.reachable();
        let co = self.co_reachable();
        let mut new_of_old: Vec<Option<StateId>> = vec![None; self.states.len()];
        let mut old_of_new: Vec<StateId> = Vec::new();
        let keep =
            |q: StateId, old_of_new: &mut Vec<StateId>, new_of_old: &mut Vec<Option<StateId>>| {
                let id = StateId(old_of_new.len() as u32);
                new_of_old[q.index()] = Some(id);
                old_of_new.push(q);
                id
            };
        // Keep the start unconditionally so the result is a valid machine.
        keep(self.start, &mut old_of_new, &mut new_of_old);
        for q in self.state_ids() {
            if q != self.start && reach[q.index()] && co[q.index()] {
                keep(q, &mut old_of_new, &mut new_of_old);
            }
        }
        let mut out = Nfa {
            states: vec![State::default(); old_of_new.len()],
            start: StateId(0),
            finals: BTreeSet::new(),
        };
        for (new_idx, &old) in old_of_new.iter().enumerate() {
            if !(reach[old.index()] && co[old.index()]) {
                continue; // the kept-but-dead start state gets no edges
            }
            let st = &self.states[old.index()];
            for &(c, t) in &st.edges {
                if c.is_empty() {
                    continue;
                }
                if let Some(nt) = new_of_old[t.index()] {
                    out.states[new_idx].edges.push((c, nt));
                }
            }
            for &t in &st.eps {
                if let Some(nt) = new_of_old[t.index()] {
                    out.states[new_idx].eps.push(nt);
                }
            }
        }
        for &f in &self.finals {
            if let Some(nf) = new_of_old[f.index()] {
                if reach[f.index()] {
                    out.finals.insert(nf);
                }
            }
        }
        (out, old_of_new)
    }

    /// Returns a copy of the machine with `state` as the *only* final state,
    /// trimmed (paper Figure 3, `induce_from_final`).
    pub fn induce_from_final(&self, state: StateId) -> Nfa {
        let mut m = self.clone();
        m.set_single_final(state);
        m.trim().0
    }

    /// Returns a copy of the machine with `state` as the start state, trimmed
    /// (paper Figure 3, `induce_from_start`).
    pub fn induce_from_start(&self, state: StateId) -> Nfa {
        let mut m = self.clone();
        m.set_start(state);
        m.trim().0
    }

    /// Returns a copy with `start` as start state and `final_` as the only
    /// final state, trimmed. This extracts one *segment* of a concatenation
    /// machine; the generalized concat-intersect procedure uses it to slice
    /// shared solution machines.
    pub fn induce_segment(&self, start: StateId, final_: StateId) -> Nfa {
        let mut m = self.clone();
        m.set_start(start);
        m.set_single_final(final_);
        m.trim().0
    }

    /// Whether the machine is in *normalized* shape: exactly one final state,
    /// no out-edges from the final state, no in-edges to the start state, and
    /// start ≠ final.
    pub fn is_normalized(&self) -> bool {
        if self.finals.len() != 1 {
            return false;
        }
        let f = *self.finals.iter().next().expect("one final");
        if f == self.start {
            return false;
        }
        let fst = &self.states[f.index()];
        if !fst.edges.is_empty() || !fst.eps.is_empty() {
            return false;
        }
        for st in &self.states {
            if st.eps.contains(&self.start) {
                return false;
            }
            if st.edges.iter().any(|&(_, t)| t == self.start) {
                return false;
            }
        }
        true
    }

    /// Produces an equivalent machine in normalized shape (single start with
    /// no in-edges, single final with no out-edges).
    ///
    /// The paper's constructions (Figure 3 onward) assume this shape "without
    /// loss of generality"; this function is the generality.
    pub fn normalize(&self) -> Nfa {
        if self.is_normalized() {
            return self.clone();
        }
        let mut m = self.clone();
        let new_start = m.add_state();
        let new_final = m.add_state();
        let old_start = m.start;
        m.states[new_start.index()].eps.push(old_start);
        let old_finals: Vec<StateId> = m.finals.iter().copied().collect();
        for f in old_finals {
            m.states[f.index()].eps.push(new_final);
        }
        m.start = new_start;
        m.finals.clear();
        m.finals.insert(new_final);
        m
    }

    /// The single final state of a normalized machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not have exactly one final state.
    pub fn single_final(&self) -> StateId {
        assert_eq!(
            self.finals.len(),
            1,
            "machine must have exactly one final state"
        );
        *self.finals.iter().next().expect("one final")
    }

    /// The machine recognizing the reversed language.
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa {
            states: vec![State::default(); self.states.len() + 1],
            start: StateId(self.states.len() as u32),
            finals: BTreeSet::from([self.start]),
        };
        for (i, st) in self.states.iter().enumerate() {
            for &(c, t) in &st.edges {
                out.states[t.index()].edges.push((c, StateId(i as u32)));
            }
            for &t in &st.eps {
                out.states[t.index()].eps.push(StateId(i as u32));
            }
        }
        let start_idx = out.start.index();
        for &f in &self.finals {
            out.states[start_idx].eps.push(f);
        }
        out
    }
}

impl Default for Nfa {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Nfa {
    /// A compact structural summary, e.g. `NFA(5 states, 6 edges, start=q0,
    /// finals={q4})`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NFA({} states, {} edges, start={}, finals={{",
            self.num_states(),
            self.num_transitions(),
            self.start
        )?;
        for (i, q) in self.finals.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_language_machine() {
        let m = Nfa::empty_language();
        assert!(m.is_empty_language());
        assert!(!m.contains(b""));
        assert!(!m.contains(b"a"));
        assert_eq!(m.shortest_member(), None);
    }

    #[test]
    fn epsilon_machine() {
        let m = Nfa::epsilon();
        assert!(m.contains(b""));
        assert!(!m.contains(b"a"));
        assert!(m.accepts_epsilon());
        assert_eq!(m.shortest_member(), Some(Vec::new()));
    }

    #[test]
    fn literal_machine() {
        let m = Nfa::literal(b"abc");
        assert!(m.contains(b"abc"));
        assert!(!m.contains(b"ab"));
        assert!(!m.contains(b"abcd"));
        assert_eq!(m.shortest_member(), Some(b"abc".to_vec()));
        assert_eq!(m.shortest_member_len(), Some(3));
    }

    #[test]
    fn class_machine() {
        let m = Nfa::class(ByteClass::range(b'0', b'9'));
        assert!(m.contains(b"5"));
        assert!(!m.contains(b"a"));
        assert!(!m.contains(b""));
        assert!(!m.contains(b"55"));
        assert!(Nfa::class(ByteClass::EMPTY).is_empty_language());
    }

    #[test]
    fn sigma_star_machine() {
        let m = Nfa::sigma_star();
        assert!(m.contains(b""));
        assert!(m.contains(b"anything at all \x00\xff"));
        assert!(m.is_normalized());
    }

    #[test]
    fn exact_length_machine() {
        let m = Nfa::exact_length(3);
        assert!(m.contains(b"abc"));
        assert!(!m.contains(b"ab"));
        assert!(!m.contains(b"abcd"));
        assert!(Nfa::exact_length(0).contains(b""));
    }

    #[test]
    fn from_words_is_a_trie() {
        let m = Nfa::from_words([&b"cat"[..], b"car", b"cart", b"dog", b""]);
        for w in [&b"cat"[..], b"car", b"cart", b"dog", b""] {
            assert!(m.contains(w), "{w:?}");
        }
        for w in [&b"ca"[..], b"do", b"carts", b"x"] {
            assert!(!m.contains(w), "{w:?}");
        }
        // Shared prefixes share states: 8 edges for the five words.
        assert_eq!(m.num_transitions(), 8);
        assert!(Nfa::from_words(std::iter::empty()).is_empty_language());
    }

    #[test]
    fn class_repeat_machine() {
        let digits = ByteClass::range(b'0', b'9');
        let m = Nfa::class_repeat(digits, 1, 3);
        assert!(!m.contains(b""));
        assert!(m.contains(b"7"));
        assert!(m.contains(b"123"));
        assert!(!m.contains(b"1234"));
        assert!(!m.contains(b"ab"));
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.num_transitions(), 3);
        // Edge cases.
        assert!(Nfa::class_repeat(digits, 0, 0).contains(b""));
        assert!(Nfa::class_repeat(ByteClass::EMPTY, 0, 5).contains(b""));
        assert!(Nfa::class_repeat(ByteClass::EMPTY, 1, 5).is_empty_language());
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn class_repeat_validates_bounds() {
        Nfa::class_repeat(ByteClass::FULL, 3, 1);
    }

    #[test]
    fn length_between_machine() {
        let m = Nfa::length_between(1, 3);
        assert!(!m.contains(b""));
        assert!(m.contains(b"a"));
        assert!(m.contains(b"abc"));
        assert!(!m.contains(b"abcd"));
        let exact = Nfa::length_between(2, 2);
        assert!(exact.contains(b"xy") && !exact.contains(b"x"));
    }

    #[test]
    fn eps_closure_transitive() {
        let mut m = Nfa::new();
        let a = m.add_state();
        let b = m.add_state();
        m.add_eps(m.start(), a);
        m.add_eps(a, b);
        let cl = m.eps_closure(&BTreeSet::from([m.start()]));
        assert_eq!(cl.len(), 3);
        assert!(cl.contains(&b));
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut m = Nfa::literal(b"ab");
        // Unreachable state and a reachable dead-end.
        let dead = m.add_state();
        m.add_edge(m.start(), ByteClass::singleton(b'z'), dead);
        let unreachable = m.add_state();
        m.add_edge(unreachable, ByteClass::FULL, unreachable);
        let (t, map) = m.trim();
        assert_eq!(t.num_states(), 3);
        assert!(t.contains(b"ab"));
        assert!(!t.contains(b"z"));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn trim_empty_language_keeps_start() {
        let m = Nfa::empty_language();
        let (t, _) = m.trim();
        assert_eq!(t.num_states(), 1);
        assert!(t.is_empty_language());
    }

    #[test]
    fn trim_preserves_language_with_loops() {
        // (ab)* built by hand with an extra dead branch.
        let mut m = Nfa::new();
        let a = m.add_state();
        m.add_edge(m.start(), ByteClass::singleton(b'a'), a);
        m.add_edge(a, ByteClass::singleton(b'b'), m.start());
        m.add_final(m.start());
        let dead = m.add_state();
        m.add_edge(a, ByteClass::singleton(b'x'), dead);
        let (t, _) = m.trim();
        for w in [&b""[..], b"ab", b"abab"] {
            assert!(t.contains(w));
        }
        assert!(!t.contains(b"ax"));
        assert_eq!(t.num_states(), 2);
    }

    #[test]
    fn normalize_establishes_shape() {
        let mut m = Nfa::literal(b"a");
        // Loop back into the start state breaks normalized shape.
        let f = *m.finals().iter().next().expect("final");
        m.add_eps(f, m.start());
        assert!(!m.is_normalized());
        let n = m.normalize();
        assert!(n.is_normalized());
        assert!(n.contains(b"a"));
        assert!(n.contains(b"aa"));
        assert!(!n.contains(b""));
        // Normalizing a normalized machine is a no-op clone.
        assert_eq!(n.normalize().num_states(), n.num_states());
    }

    #[test]
    fn induce_from_final_and_start() {
        // Machine for "ab" — inducing at the middle state splits the word.
        let m = Nfa::literal(b"ab");
        let mid = StateId(1);
        let left = m.induce_from_final(mid);
        assert!(left.contains(b"a"));
        assert!(!left.contains(b"ab"));
        let right = m.induce_from_start(mid);
        assert!(right.contains(b"b"));
        assert!(!right.contains(b"ab"));
    }

    #[test]
    fn induce_segment_extracts_middle() {
        let m = Nfa::literal(b"abcd");
        let seg = m.induce_segment(StateId(1), StateId(3));
        assert!(seg.contains(b"bc"));
        assert!(!seg.contains(b"abc"));
        assert!(!seg.contains(b"b"));
    }

    #[test]
    fn reverse_language() {
        let m = Nfa::literal(b"abc");
        let r = m.reverse();
        assert!(r.contains(b"cba"));
        assert!(!r.contains(b"abc"));
        // Reversal is an involution on the language.
        let rr = r.reverse();
        assert!(rr.contains(b"abc"));
        assert!(!rr.contains(b"cba"));
    }

    #[test]
    fn enumerate_upto_small() {
        let m = Nfa::literal(b"ab");
        let words = m.enumerate_upto(b"ab", 3);
        assert_eq!(words, BTreeSet::from([b"ab".to_vec()]));
        let s = Nfa::sigma_star().enumerate_upto(b"a", 2);
        assert_eq!(s.len(), 3); // "", "a", "aa"
    }

    #[test]
    fn shortest_member_prefers_printable() {
        let mut m = Nfa::new();
        let f = m.add_state();
        m.add_edge(m.start(), ByteClass::from_bytes([0x00, b'q']), f);
        m.add_final(f);
        assert_eq!(m.shortest_member(), Some(vec![b'q']));
    }

    #[test]
    fn display_summary() {
        let m = Nfa::literal(b"a");
        let s = m.to_string();
        assert!(s.contains("2 states"), "got {s}");
        assert!(s.contains("start=q0"), "got {s}");
    }
}
