//! Derivative-based inclusion engine.
//!
//! [`DerivativeEngine`] decides the solver's language queries in the style
//! of Brzozowski/Antimirov derivatives (Champarnaud et al., *Constrained
//! expressions and their derivatives*): the derivative of an NFA language
//! by a word `w` is itself a regular language, represented here by the
//! ε-closed set of states reachable on `w`. A query over two languages is
//! then a search over *derivative pairs* `(S_A, S_B)` — both residuals
//! taken by the same word — and never materializes a product automaton or
//! an up-front subset construction:
//!
//! * `L(a) ⊆ L(b)` fails iff some word leads to a pair where `S_A` accepts
//!   (contains a final state) and `S_B` rejects — i.e. `ε` separates the
//!   two residuals.
//! * `L(a) ∩ L(b) ≠ ∅` iff some pair has both residuals accepting.
//!
//! The search is a BFS over one representative byte per minterm block of
//! the two machines' byte-classes (within a block every byte induces the
//! same derivative), so shortest counterexamples fall out for free, same
//! as the antichain engine.
//!
//! What keeps the pair space tractable is *similarity-based memoization*:
//! derivatives are compared up to the similarity preorder induced by set
//! inclusion. For a subset query, a candidate pair `(S, T)` is dominated
//! by a visited `(S', T')` when `S ⊆ S'` and `T' ⊆ T` — every separating
//! word reachable from `(S, T)` is reachable from the dominator no later,
//! so the candidate is dropped without exploration. (For intersection
//! emptiness the order is `S ⊆ S'` and `T ⊆ T'`.) The store keeps only
//! maximal pairs under that order — exact repeats are the special case of
//! mutual domination — which is the derivative analogue of the antichain
//! engine's subsumption pruning, except it applies to *both* sides of the
//! query instead of only the RHS subset construction.
//!
//! Costs map onto the shared [`InclusionCost`] vocabulary: `macrostates`
//! counts derivative pairs popped from the frontier, `prunes` counts
//! similarity-dominated candidates, and `antichain_size` reports the
//! maximal pairs retained in the memo. Budgets ([`InclusionLimits`]) are
//! enforced at every pop, exactly like the antichain engine's loop.

use crate::byteclass::{minterms, ByteClass};
use crate::inclusion::{
    subset_precheck, EngineKind, InclusionAbort, InclusionCost, InclusionEngine, InclusionLimits,
};
use crate::nfa::{Nfa, StateId};
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

/// One ε-closed derivative, shared between the queue and the memo.
type StateSet = Rc<BTreeSet<StateId>>;

/// Derivative-pair inclusion engine: explores `(S_A, S_B)` residual pairs
/// with similarity-based memoization instead of building products or
/// subset constructions. See the module docs for the search and pruning
/// invariants.
#[derive(Clone, Copy, Debug, Default)]
pub struct DerivativeEngine;

/// Which similarity preorder the memo prunes under; fixed per query kind.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PairOrder {
    /// Subset/counterexample search: `(S', T')` dominates `(S, T)` when
    /// `S ⊆ S'` and `T' ⊆ T` (a bigger LHS residual accepts more, a
    /// smaller RHS residual rejects more — either way at least the same
    /// separating words remain reachable).
    Separation,
    /// Intersection-emptiness search: `(S', T')` dominates `(S, T)` when
    /// `S ⊆ S'` and `T ⊆ T'` (both residuals accept at least as much).
    Joint,
}

impl PairOrder {
    fn dominates(self, big: &(StateSet, StateSet), small: &(StateSet, StateSet)) -> bool {
        match self {
            PairOrder::Separation => small.0.is_subset(&big.0) && big.1.is_subset(&small.1),
            PairOrder::Joint => small.0.is_subset(&big.0) && small.1.is_subset(&big.1),
        }
    }
}

/// The similarity memo: maximal derivative pairs under the query's
/// [`PairOrder`]. Dominated candidates are pruned; inserting a new maximal
/// pair evicts the strictly-dominated pairs it supersedes (they stay
/// queued, preserving BFS order, but no longer block future inserts —
/// anything evicted stays dominated by its evictor transitively, so no
/// pair is ever admitted twice and the search terminates).
struct PairMemo {
    order: PairOrder,
    pairs: Vec<(StateSet, StateSet)>,
}

impl PairMemo {
    fn new(order: PairOrder) -> PairMemo {
        PairMemo {
            order,
            pairs: Vec::new(),
        }
    }

    /// Admits `pair` unless a visited pair dominates it. Returns whether
    /// the pair is new (and must be queued).
    fn insert(&mut self, pair: &(StateSet, StateSet), cost: &mut InclusionCost) -> bool {
        if self.pairs.iter().any(|p| self.order.dominates(p, pair)) {
            cost.prunes += 1;
            return false;
        }
        let order = self.order;
        self.pairs.retain(|p| !order.dominates(pair, p));
        self.pairs.push(pair.clone());
        true
    }

    fn size(&self) -> u64 {
        self.pairs.len() as u64
    }
}

/// Representative bytes: one per minterm block of both machines' classes.
/// Within a block every byte induces the same derivative pair.
fn representative_bytes(a: &Nfa, b: &Nfa) -> Vec<u8> {
    let classes: Vec<ByteClass> = a
        .edges()
        .map(|(_, c, _)| c)
        .chain(b.edges().map(|(_, c, _)| c))
        .collect();
    minterms(classes.iter())
        .iter()
        .map(|block| block.min_byte().expect("minterm blocks are nonempty"))
        .collect()
}

fn closure_of_start(m: &Nfa) -> StateSet {
    Rc::new(m.eps_closure(&BTreeSet::from([m.start()])))
}

fn deadline_passed(limits: &InclusionLimits) -> bool {
    limits
        .deadline
        .is_some_and(|d| std::time::Instant::now() >= d)
}

impl DerivativeEngine {
    /// The shared separation search: a shortest member of `L(a) \ L(b)`,
    /// or `None` when `L(a) ⊆ L(b)`.
    fn counterexample_budgeted(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        if subset_precheck(a, b) == Some(true) {
            return Ok((None, cost));
        }
        let alphabet = representative_bytes(a, b);
        let accepting = |m: &Nfa, s: &BTreeSet<StateId>| s.iter().any(|q| m.is_final(*q));

        let a0 = closure_of_start(a);
        let b0 = closure_of_start(b);
        if accepting(a, &a0) && !accepting(b, &b0) {
            // ε separates the root derivatives: ε ∈ L(a) \ L(b).
            return Ok((Some(Vec::new()), cost));
        }
        let mut memo = PairMemo::new(PairOrder::Separation);
        let mut queue: VecDeque<(StateSet, StateSet, Vec<u8>)> = VecDeque::new();
        let root = (a0, b0);
        memo.insert(&root, &mut cost);
        queue.push_back((root.0, root.1, Vec::new()));

        while let Some((sa, sb, word)) = queue.pop_front() {
            if let Some(cap) = limits.max_macrostates {
                if cost.macrostates >= cap {
                    cost.antichain_size = memo.size();
                    return Err(InclusionAbort::MacrostateCap { limit: cap, cost });
                }
            }
            if deadline_passed(limits) {
                cost.antichain_size = memo.size();
                return Err(InclusionAbort::Deadline { cost });
            }
            cost.macrostates += 1;
            for &byte in &alphabet {
                let da = a.eps_closure(&a.step(&sa, byte));
                if da.is_empty() {
                    // The LHS derivative is ∅: no word below separates.
                    continue;
                }
                let db = Rc::new(b.eps_closure(&b.step(&sb, byte)));
                if accepting(a, &da) && !accepting(b, &db) {
                    // First separating derivative discovered is shortest:
                    // BFS pops in word-length order and similarity pruning
                    // only drops pairs dominated by an earlier (thus
                    // no-longer-worded) pair.
                    let mut witness = word.clone();
                    witness.push(byte);
                    cost.antichain_size = memo.size();
                    return Ok((Some(witness), cost));
                }
                let next = (Rc::new(da), db);
                if memo.insert(&next, &mut cost) {
                    let mut w = word.clone();
                    w.push(byte);
                    queue.push_back((next.0, next.1, w));
                }
            }
        }
        cost.antichain_size = memo.size();
        Ok((None, cost))
    }
}

impl InclusionEngine for DerivativeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Derivative
    }

    fn try_subset(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let (cex, cost) = self.counterexample_budgeted(a, b, limits)?;
        Ok((cex.is_none(), cost))
    }

    fn try_counterexample(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(Option<Vec<u8>>, InclusionCost), InclusionAbort> {
        self.counterexample_budgeted(a, b, limits)
    }

    /// Joint derivative search: `L(a) ∩ L(b) ≠ ∅` iff some pair of
    /// residuals both accept.
    fn try_intersection_empty(
        &self,
        a: &Nfa,
        b: &Nfa,
        limits: &InclusionLimits,
    ) -> Result<(bool, InclusionCost), InclusionAbort> {
        let mut cost = InclusionCost::default();
        if a.is_empty_language() || b.is_empty_language() {
            return Ok((true, cost));
        }
        let alphabet = representative_bytes(a, b);
        let accepting = |m: &Nfa, s: &BTreeSet<StateId>| s.iter().any(|q| m.is_final(*q));

        let a0 = closure_of_start(a);
        let b0 = closure_of_start(b);
        if accepting(a, &a0) && accepting(b, &b0) {
            // ε ∈ L(a) ∩ L(b).
            return Ok((false, cost));
        }
        let mut memo = PairMemo::new(PairOrder::Joint);
        let mut queue: VecDeque<(StateSet, StateSet)> = VecDeque::new();
        let root = (a0, b0);
        memo.insert(&root, &mut cost);
        queue.push_back(root);

        while let Some((sa, sb)) = queue.pop_front() {
            if let Some(cap) = limits.max_macrostates {
                if cost.macrostates >= cap {
                    cost.antichain_size = memo.size();
                    return Err(InclusionAbort::MacrostateCap { limit: cap, cost });
                }
            }
            if deadline_passed(limits) {
                cost.antichain_size = memo.size();
                return Err(InclusionAbort::Deadline { cost });
            }
            cost.macrostates += 1;
            for &byte in &alphabet {
                let da = a.eps_closure(&a.step(&sa, byte));
                if da.is_empty() {
                    continue;
                }
                let db = b.eps_closure(&b.step(&sb, byte));
                if db.is_empty() {
                    continue;
                }
                if accepting(a, &da) && accepting(b, &db) {
                    cost.antichain_size = memo.size();
                    return Ok((false, cost));
                }
                let next = (Rc::new(da), Rc::new(db));
                if memo.insert(&next, &mut cost) {
                    queue.push_back(next);
                }
            }
        }
        cost.antichain_size = memo.size();
        Ok((true, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inclusion::engine;
    use crate::ops;

    #[test]
    fn decides_basic_judgments() {
        let e = DerivativeEngine;
        let aa = Nfa::literal(b"aa");
        let astar = ops::star(&Nfa::literal(b"a"));
        assert!(e.is_subset(&aa, &astar));
        assert!(!e.is_subset(&astar, &aa));
        assert!(e.is_subset(&Nfa::empty_language(), &aa));
        assert!(e.is_subset(&aa, &Nfa::sigma_star()));
        assert!(!e.equivalent(&aa, &astar));
        assert!(e.equivalent(&astar, &ops::star(&Nfa::literal(b"a"))));
    }

    #[test]
    fn finds_shortest_counterexamples() {
        let e = DerivativeEngine;
        let astar = ops::star(&Nfa::literal(b"a"));
        let aa = Nfa::literal(b"aa");
        let cex = e.counterexample(&astar, &aa).expect("inclusion fails");
        assert!(astar.contains(&cex));
        assert!(!aa.contains(&cex));
        assert!(cex.len() <= 1, "ε or 'a', got {cex:?}");
        assert_eq!(e.counterexample(&aa, &astar), None);
    }

    #[test]
    fn decides_intersection_emptiness() {
        let e = DerivativeEngine;
        let a = Nfa::literal(b"ab");
        let b = Nfa::literal(b"ba");
        let pre = ops::concat(&Nfa::literal(b"ab"), &Nfa::sigma_star()).nfa;
        assert!(e.intersection_empty(&a, &b));
        assert!(!e.intersection_empty(&a, &pre));
        assert!(e.intersection_empty(&Nfa::empty_language(), &Nfa::sigma_star()));
    }

    #[test]
    fn similarity_memo_prunes_dominated_pairs() {
        // A union of redundant RHS branches yields comparable residuals:
        // the similarity memo must report prunes while deciding correctly.
        let a = ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b'])));
        let b1 = ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b'])));
        let b2 = ops::concat(
            &Nfa::class(ByteClass::singleton(b'a')),
            &ops::star(&Nfa::class(ByteClass::from_bytes([b'a', b'b']))),
        )
        .nfa;
        let b = ops::union(&b1, &b2);
        let (holds, cost) = DerivativeEngine.is_subset_costed(&a, &b);
        assert!(holds);
        assert!(cost.macrostates > 0);
        assert!(cost.antichain_size > 0);
        assert!(cost.prunes > 0, "comparable residual pairs must be pruned");
    }

    #[test]
    fn frontier_loop_enforces_macrostate_cap() {
        // (ab)* ⊆ (ab)* holds, so the search must exhaust the pair space:
        // a cap of 1 aborts at the second pop with exactly the cap spent.
        // (Σ*-style queries with a length-1 counterexample decide during
        // the first pop — one derivative pair spans the whole LHS closure,
        // so this engine legitimately answers under caps that abort the
        // per-LHS-state antichain search.)
        let a = ops::star(&Nfa::literal(b"ab"));
        let b = ops::star(&Nfa::literal(b"ab"));
        let limits = InclusionLimits {
            max_macrostates: Some(1),
            deadline: None,
        };
        let err = DerivativeEngine
            .try_subset(&a, &b, &limits)
            .expect_err("cap of 1 must trip");
        match err {
            InclusionAbort::MacrostateCap { limit, cost } => {
                assert_eq!(limit, 1);
                assert_eq!(cost.macrostates, 1, "exactly the cap was explored");
            }
            other => panic!("expected macrostate cap, got {other:?}"),
        }
        assert!(DerivativeEngine.is_subset(&a, &b), "(ab)* ⊆ (ab)*");
        // And a query the antichain engine needs two pops for is decided
        // under a cap of 1 here: the pair frontier is coarser.
        let sigma = Nfa::sigma_star();
        let decided = DerivativeEngine
            .try_subset(&sigma, &b, &limits)
            .expect("decides within one pop");
        assert!(!decided.0, "Σ* ⊄ (ab)*");
    }

    #[test]
    fn frontier_loop_enforces_deadline() {
        let a = Nfa::sigma_star();
        let b = ops::star(&Nfa::literal(b"ab"));
        let limits = InclusionLimits {
            max_macrostates: None,
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        };
        let err = DerivativeEngine
            .try_subset(&a, &b, &limits)
            .expect_err("expired deadline must trip");
        assert!(matches!(err, InclusionAbort::Deadline { .. }));
        // The joint search enters its loop only when ε settles nothing:
        // use ε-free operands so the deadline is what trips.
        let err = DerivativeEngine
            .try_intersection_empty(&Nfa::literal(b"ab"), &Nfa::literal(b"ba"), &limits)
            .expect_err("expired deadline must trip the joint search too");
        assert!(matches!(err, InclusionAbort::Deadline { .. }));
    }

    #[test]
    fn agrees_with_both_existing_engines_on_random_pairs() {
        use crate::generate::{random_nonempty_nfa, RandomNfaConfig};
        let config = RandomNfaConfig {
            states: 6,
            alphabet: vec![b'a', b'b'],
            ..Default::default()
        };
        let derivative = engine(EngineKind::Derivative);
        let antichain = engine(EngineKind::Antichain);
        for seed in 0..120u64 {
            let a = random_nonempty_nfa(seed, &config);
            let b = random_nonempty_nfa(seed.wrapping_add(1_000_003), &config);
            assert_eq!(
                derivative.is_subset(&a, &b),
                antichain.is_subset(&a, &b),
                "seed {seed} a⊆b"
            );
            assert_eq!(
                derivative.is_subset(&b, &a),
                antichain.is_subset(&b, &a),
                "seed {seed} b⊆a"
            );
            assert_eq!(
                derivative.equivalent(&a, &b),
                antichain.equivalent(&a, &b),
                "seed {seed} a≡b"
            );
            assert_eq!(
                derivative.intersection_empty(&a, &b),
                antichain.intersection_empty(&a, &b),
                "seed {seed} a∩b=∅"
            );
            let cd = derivative.counterexample(&a, &b);
            let ca = antichain.counterexample(&a, &b);
            assert_eq!(cd.is_some(), ca.is_some(), "seed {seed}");
            if let (Some(cd), Some(ca)) = (cd, ca) {
                assert_eq!(cd.len(), ca.len(), "seed {seed}: both are shortest");
                for w in [&cd, &ca] {
                    assert!(a.contains(w), "seed {seed}");
                    assert!(!b.contains(w), "seed {seed}");
                }
            }
        }
    }
}
