//! Interned language handles with cached canonical fingerprints.
//!
//! The worklist solver branches on every disjunctive group solution and
//! carries whole machines through each branch; with owned [`Nfa`] values
//! that means deep copies at every branch, leaf binding, and constant
//! lookup, plus a fresh determinize+minimize pass every time two solutions
//! are compared for language equality. [`Lang`] makes a language a
//! cheap-to-clone handle (`Arc` internally) with interior-cached, lazily
//! computed properties — the canonical minimal-DFA fingerprint
//! ([`canonical_key`]), emptiness, ε-freeness, and edge counts — so each of
//! those is paid at most once per underlying machine no matter how many
//! branches share it. [`LangStore`] layers hash-consing (one representative
//! handle per distinct language) and memoization of the binary operations
//! the solver runs repeatedly (intersection, inclusion) keyed by operand
//! fingerprints, with counters that the solver surfaces as cache
//! observability stats.

use crate::dfa::DeterminizeCost;
use crate::inclusion::{self, EngineKind, InclusionAbort, InclusionCost, InclusionLimits};
use crate::metrics::{id, Metrics};
use crate::minimize::{canonical_key_counted, minimize_counted, CanonicalKey};
use crate::nfa::Nfa;
use crate::ops;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Approximate per-state heap footprint of an [`Nfa`] in bytes, used by the
/// store's memo byte accounting. Shape-derived (never allocator-derived) so
/// the accounting is identical across runs and thread counts.
const STATE_BYTES: u64 = 24;
/// Approximate per-transition heap footprint, same accounting.
const EDGE_BYTES: u64 = 40;
/// Flat charge for one inclusion-memo entry (a boolean plus two `Arc` key
/// references).
const INCLUSION_ENTRY_BYTES: u64 = 24;

/// A regular language: a shared, immutable [`Nfa`] with lazily cached
/// canonical properties.
///
/// Cloning is O(1) (an `Arc` bump); the wrapped machine is immutable, which
/// is what makes the interior caches sound. `Lang` dereferences to [`Nfa`],
/// so read-only machine APIs (`contains`, `num_states`, …) work unchanged
/// on handles.
#[derive(Clone)]
pub struct Lang {
    inner: Arc<LangInner>,
}

struct LangInner {
    nfa: Nfa,
    fingerprint: OnceLock<Arc<CanonicalKey>>,
    empty: OnceLock<bool>,
    eps_free: OnceLock<bool>,
    edge_count: OnceLock<usize>,
}

impl Lang {
    /// Wraps a machine in a shareable handle.
    pub fn new(nfa: Nfa) -> Self {
        Lang {
            inner: Arc::new(LangInner {
                nfa,
                fingerprint: OnceLock::new(),
                empty: OnceLock::new(),
                eps_free: OnceLock::new(),
                edge_count: OnceLock::new(),
            }),
        }
    }

    /// The wrapped machine.
    pub fn nfa(&self) -> &Nfa {
        &self.inner.nfa
    }

    /// Recovers an owned machine (clones only if the handle is shared).
    pub fn into_nfa(self) -> Nfa {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.nfa,
            Err(shared) => shared.nfa.clone(),
        }
    }

    /// Whether two handles share one underlying machine.
    pub fn ptr_eq(a: &Lang, b: &Lang) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// The canonical minimal-DFA fingerprint of the language. Computed on
    /// first use (one determinize+minimize), then cached: language equality
    /// and hashing are O(key length) afterwards. Equal fingerprints hold
    /// exactly for equal languages.
    pub fn fingerprint(&self) -> Arc<CanonicalKey> {
        self.fingerprint_tracked_costed().0
    }

    /// Whether [`Lang::fingerprint`] has already been computed (used by
    /// [`LangStore`] to count cache hits without forcing computation).
    pub fn fingerprint_is_cached(&self) -> bool {
        self.inner.fingerprint.get().is_some()
    }

    /// Like [`Lang::fingerprint`], additionally reporting whether *this
    /// call* ran the canonicalization. Under concurrency the underlying
    /// `OnceLock` runs its initializer exactly once, so exactly one caller
    /// ever observes `true` per handle — which makes hit/miss accounting
    /// race-free (checking [`Lang::fingerprint_is_cached`] first and then
    /// computing would let two racing threads both count a miss).
    pub fn fingerprint_tracked(&self) -> (Arc<CanonicalKey>, bool) {
        let (key, cost) = self.fingerprint_tracked_costed();
        (key, cost.is_some())
    }

    /// Like [`Lang::fingerprint_tracked`], but the "this call computed"
    /// signal carries the computation's cost: the subset-construction work
    /// and the serialized key footprint. Exactly one caller per handle ever
    /// observes `Some` (the `OnceLock` winner), which is what lets the
    /// metrics registry charge each canonicalization exactly once no matter
    /// how many threads race on the handle.
    pub fn fingerprint_tracked_costed(&self) -> (Arc<CanonicalKey>, Option<FingerprintCost>) {
        let cost = std::cell::Cell::new(None);
        let key = self
            .inner
            .fingerprint
            .get_or_init(|| {
                let (key, determinize) = canonical_key_counted(&self.inner.nfa);
                cost.set(Some(FingerprintCost {
                    determinize,
                    key_bytes: key.byte_len() as u64,
                }));
                Arc::new(key)
            })
            .clone();
        (key, cost.get())
    }

    /// Rough heap footprint of the wrapped machine in bytes, derived only
    /// from its shape (states and transitions), so identical machines are
    /// charged identically on every run. Used by the store's memo byte
    /// accounting.
    pub fn approx_bytes(&self) -> u64 {
        self.num_states() as u64 * STATE_BYTES + self.num_edges() as u64 * EDGE_BYTES
    }

    /// An address identifying this handle's shared allocation, stable for
    /// as long as any clone of the handle is alive. Used as the identity of
    /// per-handle cache slots (see [`MemoIdentity::Fingerprint`]); callers
    /// comparing addresses across time must hold a clone so the allocation
    /// cannot be reused.
    pub fn handle_addr(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Language-level equality: pointer equality fast path, then cached
    /// fingerprints.
    pub fn same_language(&self, other: &Lang) -> bool {
        Lang::ptr_eq(self, other) || self.fingerprint() == other.fingerprint()
    }

    /// Whether the language is empty (cached).
    pub fn is_empty_language(&self) -> bool {
        *self
            .inner
            .empty
            .get_or_init(|| self.inner.nfa.is_empty_language())
    }

    /// Whether the machine has no ε-transitions (cached).
    pub fn is_eps_free(&self) -> bool {
        *self
            .inner
            .eps_free
            .get_or_init(|| self.inner.nfa.eps_edges().next().is_none())
    }

    /// Number of states of the underlying machine.
    pub fn num_states(&self) -> usize {
        self.inner.nfa.num_states()
    }

    /// Number of byte-class transitions of the underlying machine (cached:
    /// the count walks every state).
    pub fn num_edges(&self) -> usize {
        *self
            .inner
            .edge_count
            .get_or_init(|| self.inner.nfa.num_transitions())
    }
}

/// Cost of one canonical-fingerprint computation, reported by
/// [`Lang::fingerprint_tracked_costed`] to the single caller that ran it.
#[derive(Clone, Copy, Debug)]
pub struct FingerprintCost {
    /// Subset-construction cost of the canonicalization.
    pub determinize: DeterminizeCost,
    /// Serialized key footprint in bytes.
    pub key_bytes: u64,
}

impl std::ops::Deref for Lang {
    type Target = Nfa;
    fn deref(&self) -> &Nfa {
        &self.inner.nfa
    }
}

impl From<Nfa> for Lang {
    fn from(nfa: Nfa) -> Self {
        Lang::new(nfa)
    }
}

impl From<&Nfa> for Lang {
    fn from(nfa: &Nfa) -> Self {
        Lang::new(nfa.clone())
    }
}

impl AsRef<Nfa> for Lang {
    fn as_ref(&self) -> &Nfa {
        &self.inner.nfa
    }
}

impl fmt::Debug for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lang")
            .field("states", &self.num_states())
            .field("fingerprinted", &self.fingerprint_is_cached())
            .finish()
    }
}

/// The memoized operations a [`LangStore`] performs, as reported to a
/// [`StoreObserver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Canonical-fingerprint lookup (`key_of`; a miss is one
    /// determinize+minimize pass).
    Fingerprint,
    /// Language intersection.
    Intersect,
    /// Language inclusion.
    Inclusion,
    /// Language-preserving minimization.
    Minimize,
}

impl StoreOp {
    /// Stable lower-case name (used by trace sinks and JSON exports).
    pub fn name(self) -> &'static str {
        match self {
            StoreOp::Fingerprint => "fingerprint",
            StoreOp::Intersect => "intersect",
            StoreOp::Inclusion => "inclusion",
            StoreOp::Minimize => "minimize",
        }
    }
}

/// The identity of one memo-cache slot, as reported to
/// [`StoreObserver::memo_event_keyed`]. Two events with equal identities
/// landed on the same cache slot, which is what lets a deterministic
/// replay of a parallel run reassign hit/miss outcomes in a canonical
/// order: the first touch of a slot in replay order is the miss,
/// regardless of which thread actually won the race.
#[derive(Clone, Debug)]
pub enum MemoIdentity {
    /// A handle's per-allocation fingerprint slot. Holding the `Lang`
    /// clone pins the allocation, so the address-based identity cannot be
    /// reused while the identity is alive.
    Fingerprint(Lang),
    /// The minimization memo slot for a language.
    Minimize(Arc<CanonicalKey>),
    /// The intersection memo slot for an (unordered, pre-normalized)
    /// fingerprint pair.
    Intersect(Arc<CanonicalKey>, Arc<CanonicalKey>),
    /// The inclusion memo slot for an (ordered) fingerprint pair.
    Inclusion(Arc<CanonicalKey>, Arc<CanonicalKey>),
}

impl PartialEq for MemoIdentity {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MemoIdentity::Fingerprint(a), MemoIdentity::Fingerprint(b)) => Lang::ptr_eq(a, b),
            (MemoIdentity::Minimize(a), MemoIdentity::Minimize(b)) => a == b,
            (MemoIdentity::Intersect(a0, a1), MemoIdentity::Intersect(b0, b1)) => {
                a0 == b0 && a1 == b1
            }
            (MemoIdentity::Inclusion(a0, a1), MemoIdentity::Inclusion(b0, b1)) => {
                a0 == b0 && a1 == b1
            }
            _ => false,
        }
    }
}

impl Eq for MemoIdentity {}

impl std::hash::Hash for MemoIdentity {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            MemoIdentity::Fingerprint(l) => {
                0u8.hash(state);
                l.handle_addr().hash(state);
            }
            MemoIdentity::Minimize(k) => {
                1u8.hash(state);
                k.hash(state);
            }
            MemoIdentity::Intersect(a, b) => {
                2u8.hash(state);
                a.hash(state);
                b.hash(state);
            }
            MemoIdentity::Inclusion(a, b) => {
                3u8.hash(state);
                a.hash(state);
                b.hash(state);
            }
        }
    }
}

/// One answered inclusion query, reported to
/// [`StoreObserver::inclusion_query`] by [`LangStore::try_is_subset`].
/// Structural pre-checks (pointer equality, empty LHS, equal fingerprints)
/// answer before a query exists and are not reported.
pub struct InclusionQuery<'a> {
    /// The engine configured to answer the query (it ran only when
    /// `engine_ran`).
    pub engine: EngineKind,
    /// Left-hand operand.
    pub lhs: &'a Nfa,
    /// Right-hand operand.
    pub rhs: &'a Nfa,
    /// Canonical fingerprint of the LHS, when the store computed one
    /// (`None` on the pass-through path, which never fingerprints).
    pub lhs_key: Option<&'a CanonicalKey>,
    /// Canonical fingerprint of the RHS, when the store computed one.
    pub rhs_key: Option<&'a CanonicalKey>,
    /// The memo slot this query touched, `None` for pass-through stores.
    pub identity: Option<MemoIdentity>,
    /// Whether the memo (or a lost insert race) answered the query.
    pub memo_hit: bool,
    /// Whether the engine actually ran. `memo_hit && engine_ran` marks a
    /// lost insert race: the engine ran but another thread's result won.
    pub engine_ran: bool,
    /// The verdict; `None` when the budget was exhausted mid-query.
    pub outcome: Option<bool>,
    /// Engine work for this query (zero when the engine did not run).
    pub cost: InclusionCost,
    /// Wall-clock microseconds spent answering the query.
    pub wall_us: u64,
}

/// A hook notified of every memoized-operation outcome, in addition to the
/// store's own [`StoreStats`] counters. Installed with
/// [`LangStore::set_observer`]; the solver's tracing layer uses this to
/// emit per-operation `MemoHit`/`MemoMiss` events without the automata
/// crate knowing about the trace format.
pub trait StoreObserver: Send + Sync {
    /// Called once per memoized operation with its hit/miss outcome.
    fn memo_event(&self, op: StoreOp, hit: bool);

    /// Like [`StoreObserver::memo_event`], additionally carrying the cache
    /// slot's identity when the store can name one (`None` for pass-through
    /// stores, which have no slots — every operation is a deterministic
    /// miss). The default forwards to `memo_event`, so observers that do
    /// not care about identities need not change.
    fn memo_event_keyed(&self, op: StoreOp, identity: Option<&MemoIdentity>, hit: bool) {
        let _ = identity;
        self.memo_event(op, hit);
    }

    /// Whether this observer wants per-query [`InclusionQuery`] reports.
    /// When `false` (the default) the store skips the wall-clock reads and
    /// report construction entirely, preserving the zero-cost-when-disabled
    /// contract of the query ledger.
    fn wants_queries(&self) -> bool {
        false
    }

    /// Called once per [`LangStore::try_is_subset`] query that reaches the
    /// memo table or an engine, with operands, verdict, and cost. Only
    /// invoked when [`StoreObserver::wants_queries`] returns `true`.
    fn inclusion_query(&self, query: &InclusionQuery<'_>) {
        let _ = query;
    }
}

/// Counters for the interning layer, surfaced through `SolveStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Fingerprint requests answered from a handle's cache.
    pub fingerprint_hits: u64,
    /// Fingerprint requests that ran determinize+minimize.
    pub fingerprint_misses: u64,
    /// Binary operations (intersection, inclusion) answered from the memo
    /// tables.
    pub op_hits: u64,
    /// Binary operations computed directly (and, with interning enabled,
    /// recorded in the memo tables).
    pub op_misses: u64,
    /// Distinct languages hash-consed into the store.
    pub interned: u64,
    /// States of machines materialized by store-computed operations.
    pub states_materialized: u64,
    /// Approximate bytes currently retained by the memo tables and
    /// interner (shape-derived estimates; see [`Lang::approx_bytes`]).
    /// Charged only by the insert winner and released by eviction, so on
    /// an unbounded store the total is deterministic across thread counts;
    /// with a byte cap installed ([`LangStore::set_max_bytes`]) eviction
    /// order — and therefore this value — may vary with scheduling, but
    /// never answers. Fingerprint keys are not memo entries (they live on
    /// the handles) and are accounted separately under
    /// `automata.fingerprint.bytes`.
    pub memo_bytes: u64,
    /// Memo entries dropped by size-bounded LRU eviction. Zero unless a
    /// byte cap is installed.
    pub evictions: u64,
    /// Approximate bytes reclaimed by size-bounded LRU eviction.
    pub evicted_bytes: u64,
    /// Macrostates explored by store-computed inclusion queries (engine
    /// work; see [`crate::inclusion::InclusionCost`]). Incremented only by
    /// the memo insert winner, so the total is deterministic across thread
    /// counts — but it does depend on the selected engine.
    pub inclusion_macrostates: u64,
}

impl StoreStats {
    /// Total minimization passes the store triggered (each fingerprint miss
    /// is one determinize+minimize run).
    pub fn minimizations(&self) -> u64 {
        self.fingerprint_misses
    }
}

/// Request-scoped mirror of the store counters.
///
/// A shared [`LangStore`] accumulates work from every concurrent session,
/// so before/after diffs of [`LangStore::stats`] attribute neighbors' work
/// to whichever request happened to be diffing. Installing a scope with
/// [`install_stats_scope`] makes every counter bump on the *installing
/// thread* also land here, giving the request an accurate private view
/// without touching the global totals. Atomic so one scope can be shared
/// across the worker threads of a parallel solve (`--jobs N`): adds
/// commute, so scoped totals are as deterministic as the global ones.
///
/// Byte accounting is recorded as gross flows (`bytes_charged` /
/// `bytes_evicted`) rather than a net figure because eviction triggered by
/// this scope's inserts may reclaim entries charged by *other* requests;
/// [`ScopedStoreStats::net_bytes`] reproduces the store-level
/// `memo_bytes` delta exactly in a single-request window and stays
/// request-attributable under concurrency.
#[derive(Debug, Default)]
pub struct ScopedStoreStats {
    /// Fingerprint requests answered from a handle's cache.
    pub fingerprint_hits: AtomicU64,
    /// Fingerprint requests that ran determinize+minimize.
    pub fingerprint_misses: AtomicU64,
    /// Binary operations answered from the memo tables.
    pub op_hits: AtomicU64,
    /// Binary operations computed directly.
    pub op_misses: AtomicU64,
    /// States of machines materialized through the store.
    pub states_materialized: AtomicU64,
    /// Macrostates explored by inclusion queries in this scope.
    pub inclusion_macrostates: AtomicU64,
    /// Memo entries evicted while this scope was active.
    pub evictions: AtomicU64,
    /// Bytes charged for memo inserts won by this scope.
    pub bytes_charged: AtomicU64,
    /// Bytes reclaimed by evictions while this scope was active.
    pub bytes_evicted: AtomicU64,
}

impl ScopedStoreStats {
    /// Net memo-table growth observed by this scope: bytes charged minus
    /// bytes evicted, floored at zero. In a single-request window this is
    /// byte-identical to the `memo_bytes` before/after delta it replaces.
    pub fn net_bytes(&self) -> u64 {
        self.bytes_charged
            .load(Ordering::Relaxed)
            .saturating_sub(self.bytes_evicted.load(Ordering::Relaxed))
    }
}

thread_local! {
    /// The ambient stats scope of this thread, if any. An `Arc` (not a
    /// borrow) so parallel solve workers can install their spawner's scope.
    static STATS_SCOPE: RefCell<Option<Arc<ScopedStoreStats>>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`install_stats_scope`]; restores the previous
/// scope (if any) on drop, so scopes nest — an unsat-core re-solve inside a
/// request keeps charging the request's scope.
pub struct StatsScopeGuard {
    prev: Option<Arc<ScopedStoreStats>>,
    /// Guards are thread-affine (thread-local state), not Send.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for StatsScopeGuard {
    fn drop(&mut self) {
        STATS_SCOPE.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

/// Installs `scope` as this thread's ambient stats scope until the returned
/// guard drops. Every store counter bump performed *by this thread* while
/// the guard lives is mirrored into `scope`.
pub fn install_stats_scope(scope: Arc<ScopedStoreStats>) -> StatsScopeGuard {
    let prev = STATS_SCOPE.with(|slot| slot.borrow_mut().replace(scope));
    StatsScopeGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// The calling thread's ambient stats scope, if one is installed. Parallel
/// drivers capture this before spawning workers and re-install it on each
/// worker so scoped accounting survives the thread hop.
pub fn current_stats_scope() -> Option<Arc<ScopedStoreStats>> {
    STATS_SCOPE.with(|slot| slot.borrow().clone())
}

/// Runs `bump` against the ambient scope, if any. Free when no scope is
/// installed (one TLS read); called at every `StoreStats` increment site.
fn scope_bump(bump: impl FnOnce(&ScopedStoreStats)) {
    STATS_SCOPE.with(|slot| {
        if let Some(scope) = slot.borrow().as_deref() {
            bump(scope);
        }
    });
}

/// The identity of one retained memo entry — the currency of the store's
/// LRU bookkeeping. Unlike [`MemoIdentity`] (which also names per-handle
/// fingerprint slots that the store does not retain), every variant here
/// maps to exactly one entry of one of the four memo tables, so evicting a
/// slot is an O(1) map removal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum SlotKey {
    /// One hash-consed representative in the interner.
    Interned(Arc<CanonicalKey>),
    /// One intersection result, keyed by the unordered fingerprint pair.
    Intersect(Arc<CanonicalKey>, Arc<CanonicalKey>),
    /// One inclusion verdict, keyed by the ordered fingerprint pair.
    Inclusion(Arc<CanonicalKey>, Arc<CanonicalKey>),
    /// One minimized machine, keyed by the input fingerprint.
    Minimize(Arc<CanonicalKey>),
}

#[derive(Default)]
struct StoreInner {
    interned: HashMap<Arc<CanonicalKey>, Lang>,
    intersect_memo: HashMap<(Arc<CanonicalKey>, Arc<CanonicalKey>), Lang>,
    inclusion_memo: HashMap<(Arc<CanonicalKey>, Arc<CanonicalKey>), bool>,
    minimize_memo: HashMap<Arc<CanonicalKey>, Lang>,
    stats: StoreStats,
    /// Registry the store records operation costs into. Kept inside the
    /// existing mutex (no extra lock); the handle's atomic operations are
    /// no-ops when metrics are disabled, and every recording site below is
    /// winner-only (first memo writer / fingerprint computer), so totals
    /// are deterministic across thread counts.
    metrics: Metrics,
    /// Byte cap on the memo tables; `None` (the default) never evicts.
    max_bytes: Option<u64>,
    /// Monotonic access clock ordering the LRU queue.
    tick: u64,
    /// tick → slot, recency-ordered: the first entry is the next victim.
    by_recency: BTreeMap<u64, SlotKey>,
    /// slot → (last-touch tick, byte charge); mirrors the four memo maps.
    charges: HashMap<SlotKey, (u64, u64)>,
}

impl StoreInner {
    /// Publishes the current retained-bytes figure to the metrics gauge.
    /// Called after every mutation of `stats.memo_bytes` so the gauge (and
    /// its tracked peak) is continuously accurate, not a snapshot-time read.
    fn publish_memo_gauge(&mut self) {
        self.metrics
            .gauge_set(id::STORE_MEMO_BYTES, self.stats.memo_bytes);
    }

    /// Refreshes `slot`'s recency after a memo hit. No-op for slots the
    /// store does not retain (e.g. already evicted between lookup and
    /// re-check, which cannot happen under the single lock but keeps this
    /// total).
    fn touch(&mut self, slot: SlotKey) {
        self.tick += 1;
        let next = self.tick;
        let Some(entry) = self.charges.get_mut(&slot) else {
            return;
        };
        let prev = entry.0;
        entry.0 = next;
        self.by_recency.remove(&prev);
        self.by_recency.insert(next, slot);
    }

    /// Charges a freshly inserted memo entry (the caller has already put it
    /// into its table) and evicts least-recently-used entries until the
    /// store is back under its byte cap, if one is installed. The gauge is
    /// published only after eviction settles, so observers never see an
    /// over-cap figure.
    fn charge_insert(&mut self, slot: SlotKey, bytes: u64) {
        self.stats.memo_bytes += bytes;
        scope_bump(|s| {
            s.bytes_charged.fetch_add(bytes, Ordering::Relaxed);
        });
        self.tick += 1;
        let tick = self.tick;
        debug_assert!(!self.charges.contains_key(&slot), "double charge");
        self.charges.insert(slot.clone(), (tick, bytes));
        self.by_recency.insert(tick, slot);
        self.evict_over_cap();
        self.publish_memo_gauge();
    }

    /// Drops LRU entries while retained bytes exceed the cap. Each victim
    /// is removed from its owning table, its charge released, and the
    /// eviction counted in both [`StoreStats`] and the metrics registry.
    fn evict_over_cap(&mut self) {
        let Some(cap) = self.max_bytes else { return };
        while self.stats.memo_bytes > cap {
            let Some((_, slot)) = self.by_recency.pop_first() else {
                break;
            };
            let (_, bytes) = self.charges.remove(&slot).expect("charged slot");
            match &slot {
                SlotKey::Interned(k) => {
                    self.interned.remove(k);
                }
                SlotKey::Intersect(a, b) => {
                    self.intersect_memo.remove(&(a.clone(), b.clone()));
                }
                SlotKey::Inclusion(a, b) => {
                    self.inclusion_memo.remove(&(a.clone(), b.clone()));
                }
                SlotKey::Minimize(k) => {
                    self.minimize_memo.remove(k);
                }
            }
            self.stats.memo_bytes = self.stats.memo_bytes.saturating_sub(bytes);
            self.stats.evictions += 1;
            self.stats.evicted_bytes += bytes;
            scope_bump(|s| {
                s.evictions.fetch_add(1, Ordering::Relaxed);
                s.bytes_evicted.fetch_add(bytes, Ordering::Relaxed);
            });
            self.metrics.add(id::STORE_EVICTIONS, 1);
            self.metrics.add(id::STORE_EVICTED_BYTES, bytes);
        }
    }

    /// Mirrors one cache hit into the metrics registry and refreshes the
    /// slot's recency.
    fn note_hit(&mut self, slot: SlotKey) {
        self.metrics.add(id::STORE_MEMO_HITS, 1);
        self.touch(slot);
    }

    /// Mirrors one cache miss (a fresh computation) into the registry.
    fn note_miss(&mut self) {
        self.metrics.add(id::STORE_MEMO_MISSES, 1);
    }
}

/// Hash-consing interner and binary-operation memo table for [`Lang`].
///
/// All methods take `&self`; the store is internally synchronized, so one
/// store can be shared across incremental solver checks (and, later,
/// parallel branch exploration). With `interning(false)` the store becomes
/// a pass-through that computes every operation directly — the
/// `ablation_interning` benchmark compares the two modes.
pub struct LangStore {
    inner: Mutex<StoreInner>,
    /// Optional per-operation hook (hit/miss events for tracing). Kept
    /// outside `inner` so observers are notified after the store lock is
    /// released and may themselves use the store.
    observer: RwLock<Option<Arc<dyn StoreObserver>>>,
    /// Which [`crate::inclusion`] engine answers inclusion queries. Kept
    /// outside `inner` so the (potentially long) engine run never holds
    /// the store lock.
    engine: RwLock<EngineKind>,
    enabled: bool,
}

impl Default for LangStore {
    fn default() -> Self {
        LangStore::new()
    }
}

impl LangStore {
    /// A store with interning and memoization enabled.
    pub fn new() -> Self {
        LangStore::interning(true)
    }

    /// A store with the caching layer toggled; `interning(false)` computes
    /// everything directly (ablation baseline).
    pub fn interning(enabled: bool) -> Self {
        LangStore {
            inner: Mutex::new(StoreInner::default()),
            observer: RwLock::new(None),
            engine: RwLock::new(EngineKind::default()),
            enabled,
        }
    }

    /// A store with interning enabled and an LRU byte cap on its memo
    /// tables: whenever an insert pushes the retained estimate past
    /// `max_bytes`, least-recently-used entries are dropped until it fits.
    /// Eviction changes hit rates, never answers — an evicted entry is
    /// simply recomputed on next use.
    pub fn bounded(max_bytes: u64) -> Self {
        let store = LangStore::new();
        store.set_max_bytes(Some(max_bytes));
        store
    }

    /// Installs (or, with `None`, removes) the LRU byte cap, evicting
    /// immediately if the store is already over the new cap.
    pub fn set_max_bytes(&self, max_bytes: Option<u64>) {
        let mut inner = self.inner.lock().expect("store lock");
        inner.max_bytes = max_bytes;
        inner.evict_over_cap();
        inner.publish_memo_gauge();
    }

    /// The installed LRU byte cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.inner.lock().expect("store lock").max_bytes
    }

    /// Selects the [`crate::inclusion`] engine behind
    /// [`LangStore::is_subset`] / [`LangStore::try_is_subset`]. Engine
    /// choice never changes an answer (the engines are differentially
    /// tested to agree), so the inclusion memo is engine-invariant and
    /// survives switches.
    pub fn set_inclusion_engine(&self, kind: EngineKind) {
        *self.engine.write().expect("engine lock") = kind;
    }

    /// The currently selected inclusion engine kind.
    pub fn inclusion_engine(&self) -> EngineKind {
        *self.engine.read().expect("engine lock")
    }

    /// Whether the caching layer is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Installs `observer`, replacing any previous one. Every subsequent
    /// memoized operation reports its hit/miss outcome to it (in addition
    /// to the [`StoreStats`] counters, which always accumulate).
    pub fn set_observer(&self, observer: Arc<dyn StoreObserver>) {
        *self.observer.write().expect("observer lock") = Some(observer);
    }

    /// Removes the installed observer, if any.
    pub fn clear_observer(&self) {
        *self.observer.write().expect("observer lock") = None;
    }

    /// Installs the metrics registry handle the store records operation
    /// costs into (replacing any previous one). A [`Metrics::disabled`]
    /// handle — the default — makes every recording a no-op.
    pub fn set_metrics(&self, metrics: Metrics) {
        let mut inner = self.inner.lock().expect("store lock");
        inner.metrics = metrics;
        // Seed the gauge so a registry installed after the store warmed up
        // still reports the current retained bytes.
        inner.publish_memo_gauge();
    }

    fn notify(&self, op: StoreOp, identity: Option<MemoIdentity>, hit: bool) {
        // Clone the Arc out of the read guard so the observer runs without
        // any store lock held.
        let observer = self.observer.read().expect("observer lock").clone();
        if let Some(observer) = observer {
            observer.memo_event_keyed(op, identity.as_ref(), hit);
        }
    }

    /// The installed observer when it opted into per-query reports, else
    /// `None` (the cheap common case: one lock-free-ish read, no clock).
    fn query_observer(&self) -> Option<Arc<dyn StoreObserver>> {
        let observer = self.observer.read().expect("observer lock").clone()?;
        observer.wants_queries().then_some(observer)
    }

    /// The language's fingerprint, with hit/miss accounting. The hit/miss
    /// split is race-free: [`Lang::fingerprint_tracked`] reports whether
    /// *this* call ran the canonicalization, so concurrent callers racing
    /// on one handle record exactly one miss between them — total misses
    /// equal the number of distinct handles canonicalized, independent of
    /// scheduling.
    pub fn key_of(&self, lang: &Lang) -> Arc<CanonicalKey> {
        let (key, cost) = lang.fingerprint_tracked_costed();
        let computed = cost.is_some();
        {
            let mut inner = self.inner.lock().expect("store lock");
            if let Some(cost) = cost {
                inner.stats.fingerprint_misses += 1;
                scope_bump(|s| {
                    s.fingerprint_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                // Key bytes live on the handle, not in the memo tables, so
                // they are charged to `automata.fingerprint.bytes` only —
                // the memo gauge tracks evictable entries exclusively.
                inner.metrics.add(id::FINGERPRINT_BYTES, cost.key_bytes);
                inner.metrics.add(
                    id::EPS_CLOSURE_VISITED,
                    cost.determinize.closure_visited as u64,
                );
                inner
                    .metrics
                    .observe(id::DETERMINIZE_IN, lang.num_states() as u64);
                inner
                    .metrics
                    .observe(id::DETERMINIZE_OUT, cost.determinize.dfa_states as u64);
            } else {
                inner.stats.fingerprint_hits += 1;
                scope_bump(|s| {
                    s.fingerprint_hits.fetch_add(1, Ordering::Relaxed);
                });
                inner.metrics.add(id::STORE_MEMO_HITS, 1);
            }
        }
        self.notify(
            StoreOp::Fingerprint,
            Some(MemoIdentity::Fingerprint(lang.clone())),
            !computed,
        );
        key
    }

    /// Hash-conses `lang`: returns the store's representative handle for
    /// the same language, inserting `lang` if it is new. Sharing the
    /// representative means later fingerprint and emptiness queries on any
    /// equal-language handle hit the same caches.
    pub fn intern(&self, lang: Lang) -> Lang {
        if !self.enabled {
            return lang;
        }
        let key = self.key_of(&lang);
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(existing) = inner.interned.get(&key) {
            let existing = existing.clone();
            inner.touch(SlotKey::Interned(key));
            return existing;
        }
        inner.stats.interned += 1;
        inner.interned.insert(key.clone(), lang.clone());
        inner.charge_insert(SlotKey::Interned(key), lang.approx_bytes());
        lang
    }

    /// Memoized language intersection. The memo key is the unordered
    /// fingerprint pair (intersection is commutative on languages), so
    /// `intersect(a, b)` and `intersect(b, a)` share one entry.
    pub fn intersect(&self, a: &Lang, b: &Lang) -> Lang {
        if !self.enabled {
            let (nfa, cost) = ops::intersect_lang_counted(a.nfa(), b.nfa());
            let result = Lang::new(nfa);
            {
                let mut inner = self.inner.lock().expect("store lock");
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                inner.stats.states_materialized += result.num_states() as u64;
                scope_bump(|s| {
                    s.states_materialized
                        .fetch_add(result.num_states() as u64, Ordering::Relaxed);
                });
                record_intersect_cost(&inner.metrics, &cost, &result);
            }
            self.notify(StoreOp::Intersect, None, false);
            return result;
        }
        let (ka, kb) = (self.key_of(a), self.key_of(b));
        let key = if ka <= kb { (ka, kb) } else { (kb, ka) };
        let identity = || MemoIdentity::Intersect(key.0.clone(), key.1.clone());
        if let Some(hit) = self.lookup_intersect(&key) {
            self.notify(StoreOp::Intersect, Some(identity()), true);
            return hit;
        }
        let (nfa, cost) = ops::intersect_lang_counted(a.nfa(), b.nfa());
        let result = Lang::new(nfa);
        let (result, hit) = {
            let mut inner = self.inner.lock().expect("store lock");
            // Re-check under the insert lock: a concurrent caller may have
            // computed the same operation since our lookup missed. Keep the
            // first representative so every equal-language handle is shared,
            // and count the race as a hit, not a second miss. Cost metrics
            // follow the same rule: only the insert winner records, so the
            // recorded totals match the deterministic memo contents rather
            // than the scheduling-dependent set of racers.
            if let Some(existing) = inner.intersect_memo.get(&key).cloned() {
                inner.stats.op_hits += 1;
                scope_bump(|s| {
                    s.op_hits.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_hit(SlotKey::Intersect(key.0.clone(), key.1.clone()));
                (existing, true)
            } else {
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                inner.stats.states_materialized += result.num_states() as u64;
                scope_bump(|s| {
                    s.states_materialized
                        .fetch_add(result.num_states() as u64, Ordering::Relaxed);
                });
                record_intersect_cost(&inner.metrics, &cost, &result);
                inner.intersect_memo.insert(key.clone(), result.clone());
                inner.charge_insert(
                    SlotKey::Intersect(key.0.clone(), key.1.clone()),
                    result.approx_bytes(),
                );
                (result, false)
            }
        };
        self.notify(StoreOp::Intersect, Some(identity()), hit);
        result
    }

    fn lookup_intersect(&self, key: &(Arc<CanonicalKey>, Arc<CanonicalKey>)) -> Option<Lang> {
        let mut inner = self.inner.lock().expect("store lock");
        let hit = inner.intersect_memo.get(key).cloned();
        if hit.is_some() {
            inner.stats.op_hits += 1;
            scope_bump(|s| {
                s.op_hits.fetch_add(1, Ordering::Relaxed);
            });
            inner.note_hit(SlotKey::Intersect(key.0.clone(), key.1.clone()));
        }
        hit
    }

    /// Memoized language inclusion (`a ⊆ b`), keyed by the ordered
    /// fingerprint pair and decided by the selected [`crate::inclusion`]
    /// engine. Unlimited: see [`LangStore::try_is_subset`] for the
    /// budget-enforcing variant.
    pub fn is_subset(&self, a: &Lang, b: &Lang) -> bool {
        self.try_is_subset(a, b, &InclusionLimits::UNLIMITED)
            .expect("unlimited inclusion cannot abort")
    }

    /// Budgeted [`LangStore::is_subset`]: structural pre-checks and memo
    /// hits answer for free; an actual engine run observes `limits` inside
    /// its frontier loop. A breach memoizes nothing (a later unbudgeted
    /// retry recomputes), but the partial work is still recorded into the
    /// metrics registry so an exhaustion snapshot reflects it.
    pub fn try_is_subset(
        &self,
        a: &Lang,
        b: &Lang,
        limits: &InclusionLimits,
    ) -> Result<bool, InclusionAbort> {
        if Lang::ptr_eq(a, b) {
            return Ok(true);
        }
        // Structural pre-check shared by both engines: ∅ ⊆ L(b). The
        // emptiness bit is cached on the handle, so this is O(1) after
        // first touch and deterministic across thread counts.
        if a.is_empty_language() {
            return Ok(true);
        }
        // Resolve `auto` to its per-query winner up front: the worker's
        // kind (not the `auto` alias) is what the ledger and the metrics
        // attribute the cost to. Resolution is pure arithmetic over the
        // operands, so it is identical across threads and runs.
        let engine_kind = inclusion::engine(self.inclusion_engine()).resolve(a.nfa(), b.nfa());
        let engine = inclusion::engine(engine_kind);
        // Per-query reporting (the cost ledger) is opt-in: a disabled
        // ledger costs one observer read here and no clock reads at all.
        let reporter = self.query_observer();
        let started = reporter.as_ref().map(|_| std::time::Instant::now());
        let report = |keys: Option<(&Arc<CanonicalKey>, &Arc<CanonicalKey>)>,
                      identity: Option<MemoIdentity>,
                      memo_hit: bool,
                      engine_ran: bool,
                      outcome: Option<bool>,
                      cost: InclusionCost| {
            if let Some(observer) = &reporter {
                observer.inclusion_query(&InclusionQuery {
                    engine: engine_kind,
                    lhs: a.nfa(),
                    rhs: b.nfa(),
                    lhs_key: keys.map(|(k, _)| &**k),
                    rhs_key: keys.map(|(_, k)| &**k),
                    identity,
                    memo_hit,
                    engine_ran,
                    outcome,
                    cost,
                    wall_us: started.map_or(0, |t| t.elapsed().as_micros() as u64),
                });
            }
        };
        if !self.enabled {
            let (result, cost) = match engine.try_subset(a.nfa(), b.nfa(), limits) {
                Ok(computed) => computed,
                Err(abort) => {
                    self.record_partial_inclusion(engine_kind, abort.cost());
                    report(None, None, false, true, None, abort.cost());
                    return Err(abort);
                }
            };
            {
                let mut inner = self.inner.lock().expect("store lock");
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                record_inclusion_cost(&mut inner, engine_kind, &cost);
            }
            report(None, None, false, true, Some(result), cost);
            self.notify(StoreOp::Inclusion, None, false);
            return Ok(result);
        }
        let key = (self.key_of(a), self.key_of(b));
        if key.0 == key.1 {
            // Second shared pre-check: equal fingerprints mean equal
            // languages, so the inclusion holds without engine work.
            return Ok(true);
        }
        let identity = || MemoIdentity::Inclusion(key.0.clone(), key.1.clone());
        {
            let hit = {
                let mut inner = self.inner.lock().expect("store lock");
                let hit = inner.inclusion_memo.get(&key).copied();
                if hit.is_some() {
                    inner.stats.op_hits += 1;
                    scope_bump(|s| {
                        s.op_hits.fetch_add(1, Ordering::Relaxed);
                    });
                    inner.note_hit(SlotKey::Inclusion(key.0.clone(), key.1.clone()));
                }
                hit
            };
            if let Some(hit) = hit {
                report(
                    Some((&key.0, &key.1)),
                    Some(identity()),
                    true,
                    false,
                    Some(hit),
                    InclusionCost::default(),
                );
                self.notify(StoreOp::Inclusion, Some(identity()), true);
                return Ok(hit);
            }
        }
        let (result, cost) = match engine.try_subset(a.nfa(), b.nfa(), limits) {
            Ok(computed) => computed,
            Err(abort) => {
                self.record_partial_inclusion(engine_kind, abort.cost());
                report(
                    Some((&key.0, &key.1)),
                    Some(identity()),
                    false,
                    true,
                    None,
                    abort.cost(),
                );
                return Err(abort);
            }
        };
        let hit = {
            let mut inner = self.inner.lock().expect("store lock");
            // Same race re-check as `intersect`: first writer wins the
            // entry, and only the winner records the engine cost, so the
            // totals stay deterministic across thread counts.
            if inner.inclusion_memo.contains_key(&key) {
                inner.stats.op_hits += 1;
                scope_bump(|s| {
                    s.op_hits.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_hit(SlotKey::Inclusion(key.0.clone(), key.1.clone()));
                true
            } else {
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                record_inclusion_cost(&mut inner, engine_kind, &cost);
                inner.inclusion_memo.insert(key.clone(), result);
                inner.charge_insert(
                    SlotKey::Inclusion(key.0.clone(), key.1.clone()),
                    INCLUSION_ENTRY_BYTES,
                );
                false
            }
        };
        report(
            Some((&key.0, &key.1)),
            Some(identity()),
            hit,
            true,
            Some(result),
            cost,
        );
        self.notify(StoreOp::Inclusion, Some(identity()), hit);
        Ok(result)
    }

    /// Folds an aborted inclusion run's partial cost into the metrics (but
    /// never into the memo): the exhaustion snapshot carries the wasted
    /// frontier work.
    fn record_partial_inclusion(&self, kind: EngineKind, cost: InclusionCost) {
        let mut inner = self.inner.lock().expect("store lock");
        record_inclusion_cost(&mut inner, kind, &cost);
    }

    /// Memoized language-preserving minimization, keyed by fingerprint.
    pub fn minimized(&self, a: &Lang) -> Lang {
        if !self.enabled {
            let (nfa, det) = minimize_counted(a.nfa());
            let result = Lang::new(nfa);
            {
                let mut inner = self.inner.lock().expect("store lock");
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                inner.stats.states_materialized += result.num_states() as u64;
                scope_bump(|s| {
                    s.states_materialized
                        .fetch_add(result.num_states() as u64, Ordering::Relaxed);
                });
                record_minimize_cost(&inner.metrics, a, &det, &result);
            }
            self.notify(StoreOp::Minimize, None, false);
            return result;
        }
        let key = self.key_of(a);
        {
            let hit = {
                let mut inner = self.inner.lock().expect("store lock");
                let hit = inner.minimize_memo.get(&key).cloned();
                if hit.is_some() {
                    inner.stats.op_hits += 1;
                    scope_bump(|s| {
                        s.op_hits.fetch_add(1, Ordering::Relaxed);
                    });
                    inner.note_hit(SlotKey::Minimize(key.clone()));
                }
                hit
            };
            if let Some(hit) = hit {
                self.notify(StoreOp::Minimize, Some(MemoIdentity::Minimize(key)), true);
                return hit;
            }
        }
        let (nfa, det) = minimize_counted(a.nfa());
        let result = Lang::new(nfa);
        let (result, hit) = {
            let mut inner = self.inner.lock().expect("store lock");
            // Same race re-check as `intersect`: first writer wins the entry.
            if let Some(existing) = inner.minimize_memo.get(&key).cloned() {
                inner.stats.op_hits += 1;
                scope_bump(|s| {
                    s.op_hits.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_hit(SlotKey::Minimize(key.clone()));
                (existing, true)
            } else {
                inner.stats.op_misses += 1;
                scope_bump(|s| {
                    s.op_misses.fetch_add(1, Ordering::Relaxed);
                });
                inner.note_miss();
                inner.stats.states_materialized += result.num_states() as u64;
                scope_bump(|s| {
                    s.states_materialized
                        .fetch_add(result.num_states() as u64, Ordering::Relaxed);
                });
                record_minimize_cost(&inner.metrics, a, &det, &result);
                inner.minimize_memo.insert(key.clone(), result.clone());
                inner.charge_insert(SlotKey::Minimize(key.clone()), result.approx_bytes());
                (result, false)
            }
        };
        self.notify(StoreOp::Minimize, Some(MemoIdentity::Minimize(key)), hit);
        result
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().expect("store lock").stats
    }

    /// Adds `states` to the materialization counter (for machines built by
    /// the solver outside the store's own operations).
    pub fn note_materialized(&self, states: usize) {
        let mut inner = self.inner.lock().expect("store lock");
        inner.stats.states_materialized += states as u64;
        scope_bump(|s| {
            s.states_materialized
                .fetch_add(states as u64, Ordering::Relaxed);
        });
        inner.metrics.add(id::STORE_MATERIALIZED, states as u64);
    }
}

/// Records one computed inclusion query's engine cost: macrostates
/// explored, the final antichain size (zero for the eager engine), and
/// subsumption prunes. Called winner-only on the success path and once on
/// the abort path. The derivative engine's work additionally mirrors into
/// the `automata.inclusion.derivative.*` series, keyed by the *resolved*
/// kind so `auto` queries are charged to the engine that actually ran.
fn record_inclusion_cost(inner: &mut StoreInner, kind: EngineKind, cost: &InclusionCost) {
    inner.stats.inclusion_macrostates += cost.macrostates;
    scope_bump(|s| {
        s.inclusion_macrostates
            .fetch_add(cost.macrostates, Ordering::Relaxed);
    });
    inner
        .metrics
        .add(id::INCLUSION_MACROSTATES, cost.macrostates);
    inner
        .metrics
        .observe(id::INCLUSION_ANTICHAIN_SIZE, cost.antichain_size);
    inner.metrics.add(id::INCLUSION_PRUNES, cost.prunes);
    if kind == EngineKind::Derivative {
        inner
            .metrics
            .add(id::INCLUSION_DERIVATIVE_PAIRS, cost.macrostates);
        inner
            .metrics
            .observe(id::INCLUSION_DERIVATIVE_MEMO, cost.antichain_size);
        inner
            .metrics
            .add(id::INCLUSION_DERIVATIVE_PRUNES, cost.prunes);
    }
}

/// Records one computed intersection's cost: product states explored vs.
/// reachable after trimming, plus the materialized result.
fn record_intersect_cost(metrics: &Metrics, cost: &ops::IntersectCost, result: &Lang) {
    metrics.add(id::INTERSECT_PRODUCTS, cost.explored as u64);
    metrics.observe(id::INTERSECT_EXPLORED, cost.explored as u64);
    metrics.observe(id::INTERSECT_REACHABLE, cost.reachable as u64);
    metrics.add(id::STORE_MATERIALIZED, result.num_states() as u64);
}

/// Records one computed minimization's cost: the determinization blowup
/// (input NFA states → subset-construction states), ε-closure work, and the
/// materialized result.
fn record_minimize_cost(metrics: &Metrics, input: &Lang, det: &DeterminizeCost, result: &Lang) {
    metrics.observe(id::DETERMINIZE_IN, input.num_states() as u64);
    metrics.observe(id::DETERMINIZE_OUT, det.dfa_states as u64);
    metrics.add(id::EPS_CLOSURE_VISITED, det.closure_visited as u64);
    metrics.add(id::STORE_MATERIALIZED, result.num_states() as u64);
}

impl fmt::Debug for LangStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LangStore")
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::equivalent;

    fn ab_star() -> Nfa {
        ops::star(&Nfa::from_words([b"ab".as_slice()]))
    }

    #[test]
    fn handles_share_the_fingerprint() {
        let l = Lang::new(ab_star());
        let l2 = l.clone();
        assert!(!l2.fingerprint_is_cached());
        let k = l.fingerprint();
        assert!(l2.fingerprint_is_cached(), "clones share the cache");
        assert_eq!(k, l2.fingerprint());
    }

    #[test]
    fn same_language_matches_equivalence() {
        let a = Lang::new(ab_star());
        let b = Lang::new(ab_star().normalize());
        let c = Lang::new(Nfa::literal(b"ab"));
        assert!(a.same_language(&b));
        assert!(!a.same_language(&c));
        assert!(equivalent(a.nfa(), b.nfa()));
    }

    #[test]
    fn interning_returns_one_representative() {
        let store = LangStore::new();
        let a = store.intern(Lang::new(ab_star()));
        let b = store.intern(Lang::new(ab_star().normalize()));
        assert!(Lang::ptr_eq(&a, &b));
        assert_eq!(store.stats().interned, 1);
    }

    #[test]
    fn intersect_is_memoized_and_correct() {
        let store = LangStore::new();
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        let first = store.intersect(&a, &b);
        let again = store.intersect(&b, &a);
        assert!(Lang::ptr_eq(&first, &again), "commutative memo hit");
        assert!(equivalent(
            first.nfa(),
            &ops::intersect_lang(a.nfa(), b.nfa())
        ));
        let stats = store.stats();
        assert_eq!((stats.op_hits, stats.op_misses), (1, 1));
    }

    #[test]
    fn inclusion_is_memoized() {
        let store = LangStore::new();
        let small = Lang::new(Nfa::literal(b"ab"));
        let big = Lang::new(ab_star());
        assert!(store.is_subset(&small, &big));
        assert!(store.is_subset(&small, &big));
        assert!(!store.is_subset(&big, &small));
        let stats = store.stats();
        assert_eq!(stats.op_hits, 1);
    }

    #[test]
    fn disabled_store_still_computes() {
        let store = LangStore::interning(false);
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        let first = store.intersect(&a, &b);
        let again = store.intersect(&a, &b);
        assert!(!Lang::ptr_eq(&first, &again), "no memo when disabled");
        assert!(equivalent(first.nfa(), again.nfa()));
        assert!(store.is_subset(&a, &a));
    }

    #[test]
    fn observer_sees_every_memoized_operation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counting {
            hits: AtomicUsize,
            misses: AtomicUsize,
        }
        impl StoreObserver for Counting {
            fn memo_event(&self, _op: StoreOp, hit: bool) {
                if hit {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let store = LangStore::new();
        let observer = Arc::new(Counting::default());
        store.set_observer(observer.clone());
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        store.intersect(&a, &b);
        let stats = store.stats();
        // Observer totals match the store's own counters exactly.
        assert_eq!(
            observer.hits.load(Ordering::Relaxed) as u64,
            stats.op_hits + stats.fingerprint_hits
        );
        assert_eq!(
            observer.misses.load(Ordering::Relaxed) as u64,
            stats.op_misses + stats.fingerprint_misses
        );
        // After clearing, operations stop reporting.
        store.clear_observer();
        let before =
            observer.hits.load(Ordering::Relaxed) + observer.misses.load(Ordering::Relaxed);
        store.minimized(&a);
        let after = observer.hits.load(Ordering::Relaxed) + observer.misses.load(Ordering::Relaxed);
        assert_eq!(before, after);
    }

    #[test]
    fn fingerprint_tracked_reports_one_computation_per_handle() {
        let l = Lang::new(ab_star());
        let (k1, computed1) = l.fingerprint_tracked();
        let (k2, computed2) = l.clone().fingerprint_tracked();
        assert!(computed1, "first call canonicalizes");
        assert!(!computed2, "clones share the cached key");
        assert_eq!(k1, k2);
        // Concurrent first touches: exactly one caller computes.
        let fresh = Lang::new(ab_star());
        let computed_count = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let (_, computed) = fresh.fingerprint_tracked();
                    if computed {
                        computed_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(computed_count.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    // False positive: `MemoIdentity` hashes by handle address and
    // immutable `Arc<CanonicalKey>`s, not through `Lang`'s interior cache.
    #[allow(clippy::mutable_key_type)]
    fn memo_identity_distinguishes_slots() {
        use std::collections::HashSet;
        let a = Lang::new(ab_star());
        let b = a.clone();
        let c = Lang::new(ab_star());
        // Clones share a slot; a fresh structurally-equal handle does not.
        assert_eq!(
            MemoIdentity::Fingerprint(a.clone()),
            MemoIdentity::Fingerprint(b.clone())
        );
        assert_ne!(
            MemoIdentity::Fingerprint(a.clone()),
            MemoIdentity::Fingerprint(c.clone())
        );
        let ka = a.fingerprint();
        let kc = c.fingerprint();
        assert_eq!(
            MemoIdentity::Minimize(ka.clone()),
            MemoIdentity::Minimize(kc.clone()),
            "value-keyed slots compare by language"
        );
        assert_ne!(
            MemoIdentity::Minimize(ka.clone()),
            MemoIdentity::Intersect(ka.clone(), kc.clone())
        );
        let mut set = HashSet::new();
        set.insert(MemoIdentity::Fingerprint(a));
        set.insert(MemoIdentity::Fingerprint(b));
        set.insert(MemoIdentity::Fingerprint(c));
        set.insert(MemoIdentity::Minimize(ka));
        set.insert(MemoIdentity::Minimize(kc));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn keyed_observer_receives_slot_identities() {
        #[derive(Default)]
        struct Recording {
            identities: Mutex<Vec<(StoreOp, Option<MemoIdentity>, bool)>>,
        }
        impl StoreObserver for Recording {
            fn memo_event(&self, _op: StoreOp, _hit: bool) {}
            fn memo_event_keyed(&self, op: StoreOp, identity: Option<&MemoIdentity>, hit: bool) {
                self.identities
                    .lock()
                    .expect("recording")
                    .push((op, identity.cloned(), hit));
            }
        }
        let store = LangStore::new();
        let observer = Arc::new(Recording::default());
        store.set_observer(observer.clone());
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        store.intersect(&b, &a);
        let events = observer.identities.lock().expect("recording").clone();
        // Every enabled-store event carries an identity.
        assert!(events.iter().all(|(_, id, _)| id.is_some()));
        let intersects: Vec<_> = events
            .iter()
            .filter(|(op, _, _)| *op == StoreOp::Intersect)
            .collect();
        assert_eq!(intersects.len(), 2);
        assert_eq!(
            intersects[0].1, intersects[1].1,
            "commuted operands land on one slot"
        );
        assert!(!intersects[0].2, "first touch misses");
        assert!(intersects[1].2, "second touch hits");
        // A pass-through store reports no identities.
        let plain = LangStore::interning(false);
        plain.set_observer(observer.clone());
        plain.intersect(&a, &b);
        let last = observer
            .identities
            .lock()
            .expect("recording")
            .last()
            .cloned()
            .expect("event recorded");
        assert!(last.1.is_none());
    }

    #[test]
    fn inclusion_engine_is_selectable_and_answers_agree() {
        for kind in EngineKind::ALL {
            let store = LangStore::new();
            store.set_inclusion_engine(kind);
            assert_eq!(store.inclusion_engine(), kind);
            let small = Lang::new(Nfa::literal(b"ab"));
            let big = Lang::new(ab_star());
            assert!(store.is_subset(&small, &big), "{kind}");
            assert!(!store.is_subset(&big, &small), "{kind}");
            let stats = store.stats();
            assert!(
                stats.inclusion_macrostates > 0,
                "{kind}: engine work must be counted"
            );
        }
    }

    #[test]
    fn structural_prechecks_skip_engine_work() {
        let store = LangStore::new();
        let empty = Lang::new(Nfa::empty_language());
        let big = Lang::new(ab_star());
        let same = Lang::new(ab_star().normalize());
        assert!(store.is_subset(&empty, &big), "∅ ⊆ L");
        assert!(store.is_subset(&big, &big), "ptr-equal handles");
        assert!(store.is_subset(&big, &same), "equal fingerprints");
        let stats = store.stats();
        assert_eq!(stats.inclusion_macrostates, 0, "no engine ran");
        assert_eq!(stats.op_misses, 0, "no memo entry was needed");
    }

    #[test]
    fn budgeted_inclusion_aborts_without_memoizing() {
        let store = LangStore::new();
        let metrics = Metrics::enabled();
        store.set_metrics(metrics.clone());
        let a = Lang::new(Nfa::sigma_star());
        let b = Lang::new(ab_star());
        let limits = InclusionLimits {
            max_macrostates: Some(1),
            deadline: None,
        };
        let err = store
            .try_is_subset(&a, &b, &limits)
            .expect_err("cap of 1 must trip");
        assert!(matches!(
            err,
            InclusionAbort::MacrostateCap { limit: 1, .. }
        ));
        // Partial work landed in the metrics snapshot, not in the memo.
        let snap = metrics.snapshot().expect("enabled registry");
        match snap
            .get("automata.inclusion.macrostates")
            .expect("def")
            .value
        {
            crate::metrics::MetricValue::Counter { value } => assert!(value > 0),
            ref other => panic!("counter expected, got {other:?}"),
        }
        assert_eq!(store.stats().op_misses, 0, "aborts memoize nothing");
        // The same query completes once the budget is lifted.
        assert!(!store.is_subset(&a, &b));
    }

    #[test]
    fn memo_bytes_grow_only_on_insert_wins() {
        let store = LangStore::new();
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        let after_first = store.stats().memo_bytes;
        assert!(after_first > 0, "the memo entry was charged");
        store.intersect(&b, &a);
        assert_eq!(store.stats().memo_bytes, after_first, "hits charge nothing");
        store.is_subset(&a, &b);
        assert_eq!(
            store.stats().memo_bytes,
            after_first + INCLUSION_ENTRY_BYTES
        );
    }

    #[test]
    fn store_records_costs_into_an_installed_registry() {
        let store = LangStore::new();
        let metrics = Metrics::enabled();
        store.set_metrics(metrics.clone());
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        store.intersect(&a, &b); // memo hit: records nothing new
        let snap = metrics.snapshot().expect("enabled registry");
        let counter = |name: &str| match snap.get(name).expect(name).value {
            crate::metrics::MetricValue::Counter { value } => value,
            ref other => panic!("{name} is {other:?}"),
        };
        assert!(counter("automata.intersect.products") > 0);
        assert!(counter("automata.fingerprint.bytes") > 0);
        assert!(counter("automata.eps_closure.visited_states") > 0);
        let (value, peak) = match snap.get("core.store.memo_bytes").expect("gauge").value {
            crate::metrics::MetricValue::Gauge { value, peak } => (value, peak),
            ref other => panic!("core.store.memo_bytes is {other:?}"),
        };
        assert_eq!(
            value,
            store.stats().memo_bytes,
            "registry and StoreStats agree on the byte accounting"
        );
        assert_eq!(peak, value, "no eviction: the gauge only ever grew");
        // Hit/miss mirrors match the store's own counters.
        let stats = store.stats();
        assert_eq!(
            counter("core.store.memo_hits"),
            stats.fingerprint_hits + stats.op_hits
        );
        assert_eq!(
            counter("core.store.memo_misses"),
            stats.fingerprint_misses + stats.op_misses
        );
        assert_eq!(counter("core.store.evictions"), 0);
    }

    #[test]
    fn bounded_store_evicts_lru_and_stays_under_cap() {
        let store = LangStore::bounded(1); // every insert immediately over cap
        let metrics = Metrics::enabled();
        store.set_metrics(metrics.clone());
        assert_eq!(store.max_bytes(), Some(1));
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        store.is_subset(&a, &b);
        let stats = store.stats();
        assert!(stats.memo_bytes <= 1, "cap is enforced after every insert");
        assert!(stats.evictions > 0, "inserts were evicted");
        assert!(stats.evicted_bytes > 0);
        // Evicted entries recompute instead of hitting.
        let before = store.stats().op_misses;
        store.intersect(&a, &b);
        assert_eq!(
            store.stats().op_misses,
            before + 1,
            "the evicted entry is a miss again"
        );
        // Answers are unchanged by eviction.
        assert!(!store.is_subset(&Lang::new(ab_star()), &b));
        let snap = metrics.snapshot().expect("enabled registry");
        let counter = |name: &str| match snap.get(name).expect(name).value {
            crate::metrics::MetricValue::Counter { value } => value,
            ref other => panic!("{name} is {other:?}"),
        };
        assert_eq!(counter("core.store.evictions"), store.stats().evictions);
        assert_eq!(
            counter("core.store.evicted_bytes"),
            store.stats().evicted_bytes
        );
        match snap.get("core.store.memo_bytes").expect("gauge").value {
            crate::metrics::MetricValue::Gauge { value, peak } => {
                assert!(value <= 1, "published gauge respects the cap");
                assert!(peak <= 1, "gauge is published only after eviction settles");
            }
            ref other => panic!("gauge expected, got {other:?}"),
        }
    }

    #[test]
    fn lru_eviction_keeps_recently_touched_entries() {
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        let c = Lang::new(Nfa::length_between(0, 2));
        // Size the cap so both intersection results fit, but nothing else.
        let probe = LangStore::new();
        let ab = probe.intersect(&a, &b).approx_bytes();
        let ac = probe.intersect(&a, &c).approx_bytes();
        let store = LangStore::new();
        store.set_max_bytes(Some(ab + ac));
        store.intersect(&a, &b);
        store.intersect(&a, &c);
        // Touch (a, b) so (a, c) is now least recently used.
        store.intersect(&a, &b);
        let hits_before = store.stats().op_hits;
        // A third entry forces an eviction: (a, c) must be the victim.
        store.is_subset(&c, &a);
        assert!(store.stats().evictions > 0, "cap forced an eviction");
        store.intersect(&a, &b);
        assert_eq!(
            store.stats().op_hits,
            hits_before + 1,
            "recently-touched entry survived"
        );
        let misses_before = store.stats().op_misses;
        store.intersect(&a, &c);
        assert_eq!(
            store.stats().op_misses,
            misses_before + 1,
            "LRU entry was evicted"
        );
    }

    #[test]
    fn set_max_bytes_evicts_immediately_and_lifts() {
        let store = LangStore::new();
        let a = Lang::new(ab_star());
        let b = Lang::new(Nfa::length_between(0, 4));
        store.intersect(&a, &b);
        assert!(store.stats().memo_bytes > 0);
        store.set_max_bytes(Some(0));
        assert_eq!(store.stats().memo_bytes, 0, "everything evicted");
        assert!(store.stats().evictions > 0);
        store.set_max_bytes(None);
        assert_eq!(store.max_bytes(), None);
        let evictions = store.stats().evictions;
        store.intersect(&a, &b);
        store.is_subset(&a, &b);
        assert_eq!(
            store.stats().evictions,
            evictions,
            "unbounded again: no further eviction"
        );
    }

    #[test]
    fn cached_properties_match_direct_computation() {
        let l = Lang::new(ab_star());
        assert_eq!(l.is_empty_language(), l.nfa().is_empty_language());
        assert_eq!(l.num_edges(), l.nfa().num_transitions());
        assert!(!l.is_eps_free(), "star introduces ε-edges");
        assert!(Lang::new(Nfa::literal(b"x")).is_eps_free());
    }
}
