//! Cost-predicted inclusion-engine selection (the `auto` engine's brain).
//!
//! The per-query cost ledger (PR 6) records, for every inclusion query the
//! solver issues, a feature vector — operand state/transition counts and
//! the byte-class width — next to the engine work it cost (`dprle profile
//! model` aggregates the ledger into one row per observed feature vector).
//! This module closes the loop: a small checked-in linear model, fitted
//! offline on `BENCH_fig12_ledger.jsonl` runs of all three concrete
//! engines over the fig12 corpus, predicts each engine's work from the
//! features, and [`select`] picks the cheapest engine per query.
//!
//! Everything here is deterministic integer arithmetic: the same operands
//! always produce the same features, predictions, and selection, on every
//! platform and at every thread count — a hard requirement, because the
//! selected engine's name is serialized into ledgers and journals that CI
//! diffs byte-for-byte across `--jobs` values.
//!
//! The model is intentionally tiny (ridge-regularized weighted least
//! squares on five features, re-fitted by hand when the corpus shifts;
//! see DESIGN.md §12 for the fitting procedure). It does not need to be
//! accurate in absolute terms — only the *argmin* matters, and the
//! engines' costs diverge by orders of magnitude exactly where choosing
//! right matters (determinization blowups).

use crate::byteclass::ByteClass;
use crate::inclusion::EngineKind;
use crate::nfa::Nfa;
use std::collections::BTreeSet;

/// The ledger's per-query feature vector, recomputed store-side so the
/// selection can run before any engine does.
///
/// Field definitions match `core::ledger`'s record schema exactly:
/// `classes` is the number of *distinct* byte-classes across both
/// machines' edges (the alphabet width the engines actually explore after
/// minterm splitting is bounded by a function of this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryFeatures {
    /// LHS state count.
    pub lhs_states: u64,
    /// LHS edge count (ε-edges excluded).
    pub lhs_transitions: u64,
    /// RHS state count.
    pub rhs_states: u64,
    /// RHS edge count (ε-edges excluded).
    pub rhs_transitions: u64,
    /// Distinct byte-classes across both machines.
    pub classes: u64,
}

/// Distinct byte-classes across both machines' edges — the `classes`
/// ledger feature. (`core::ledger` delegates here so the serialized
/// feature and the selection feature can never drift apart.)
pub fn distinct_classes(lhs: &Nfa, rhs: &Nfa) -> u64 {
    let mut classes: BTreeSet<ByteClass> = BTreeSet::new();
    classes.extend(lhs.edges().map(|(_, c, _)| c));
    classes.extend(rhs.edges().map(|(_, c, _)| c));
    classes.len() as u64
}

/// Extracts the selection features for an `a`-vs-`b` query.
pub fn features(a: &Nfa, b: &Nfa) -> QueryFeatures {
    QueryFeatures {
        lhs_states: a.num_states() as u64,
        lhs_transitions: a.num_transitions() as u64,
        rhs_states: b.num_states() as u64,
        rhs_transitions: b.num_transitions() as u64,
        classes: distinct_classes(a, b),
    }
}

/// One engine's fitted cost predictor: predicted per-query wall time (in
/// milli-microsecond units, so small fractional weights survive integer
/// arithmetic) is the dot product of the weights with `[1, lhs_states,
/// lhs_transitions, rhs_states, rhs_transitions, classes]`, clamped at
/// zero.
#[derive(Clone, Copy, Debug)]
pub struct EngineWeights {
    /// The engine these weights predict.
    pub kind: EngineKind,
    /// Constant term (milli-units).
    pub bias: i64,
    /// Weight on `lhs_states` (milli-units).
    pub lhs_states: i64,
    /// Weight on `lhs_transitions` (milli-units).
    pub lhs_transitions: i64,
    /// Weight on `rhs_states` (milli-units).
    pub rhs_states: i64,
    /// Weight on `rhs_transitions` (milli-units).
    pub rhs_transitions: i64,
    /// Weight on `classes` (milli-units).
    pub classes: i64,
}

/// The checked-in model, one row per concrete engine, in tie-breaking
/// order: on equal predictions the earlier row wins, so the default
/// engine is preferred when the model cannot distinguish.
///
/// Fitted by ridge-regularized weighted least squares (λ = 0.5, scaled
/// per-diagonal) on the union of `BENCH_fig12_ledger.jsonl` regenerations
/// under `--inclusion eager`, `--inclusion antichain`, and `--inclusion
/// derivative` (one `dprle profile model` table per engine; each
/// aggregate row weighted by its query count, target per-query `wall_us`,
/// weights in milli-µs). On the fitting corpus the argmin matches the
/// measured-fastest engine on 919 of 1023 queries, and every miss is a
/// sub-3 µs toss-up between near-tied engines (total selection regret
/// 89 µs vs 15.9 ms for always picking the default engine). See
/// DESIGN.md §12 for the exact procedure and the fitting snapshot.
pub const MODEL: [EngineWeights; 3] = [
    EngineWeights {
        kind: EngineKind::Antichain,
        bias: -5041,
        lhs_states: 1229,
        lhs_transitions: 1208,
        rhs_states: -242,
        rhs_transitions: -247,
        classes: 1142,
    },
    EngineWeights {
        kind: EngineKind::Derivative,
        bias: -474_505,
        lhs_states: 91_393,
        lhs_transitions: 89_768,
        rhs_states: -40_665,
        rhs_transitions: -35_328,
        classes: -8473,
    },
    EngineWeights {
        kind: EngineKind::Eager,
        bias: 1635,
        lhs_states: 40,
        lhs_transitions: 40,
        rhs_states: 240,
        rhs_transitions: 214,
        classes: 237,
    },
];

/// Predicted per-query wall time for `kind` on a query with features
/// `f`, in milli-microseconds. Panics if `kind` has no model row (only
/// the three concrete engines are predictable).
pub fn predict(kind: EngineKind, f: &QueryFeatures) -> u64 {
    let w = MODEL
        .iter()
        .find(|w| w.kind == kind)
        .expect("only concrete engines have cost predictions");
    let raw = w.bias
        + w.lhs_states * f.lhs_states as i64
        + w.lhs_transitions * f.lhs_transitions as i64
        + w.rhs_states * f.rhs_states as i64
        + w.rhs_transitions * f.rhs_transitions as i64
        + w.classes * f.classes as i64;
    raw.max(0) as u64
}

/// The engine with the smallest predicted work for `f`; ties break toward
/// the earlier [`MODEL`] row (the default engine first).
pub fn select(f: &QueryFeatures) -> EngineKind {
    let mut best = MODEL[0].kind;
    let mut best_cost = predict(best, f);
    for w in &MODEL[1..] {
        let cost = predict(w.kind, f);
        if cost < best_cost {
            best = w.kind;
            best_cost = cost;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn features_match_the_ledger_schema_definitions() {
        let a = Nfa::literal(b"ab");
        let b = ops::star(&Nfa::literal(b"a"));
        let f = features(&a, &b);
        assert_eq!(f.lhs_states, a.num_states() as u64);
        assert_eq!(f.lhs_transitions, a.num_transitions() as u64);
        assert_eq!(f.rhs_states, b.num_states() as u64);
        assert_eq!(f.rhs_transitions, b.num_transitions() as u64);
        // 'a' and 'b' singleton classes are distinct; the reverse query
        // shares the same class set, so the feature is symmetric here.
        assert_eq!(f.classes, 2);
        assert_eq!(f.classes, features(&b, &a).classes);
    }

    #[test]
    fn selection_is_deterministic_and_concrete() {
        let a = Nfa::literal(b"ab");
        let b = ops::star(&Nfa::literal(b"a"));
        let f = features(&a, &b);
        let first = select(&f);
        assert_ne!(first, EngineKind::Auto, "auto must resolve to a worker");
        for _ in 0..10 {
            assert_eq!(select(&features(&a, &b)), first);
        }
    }

    #[test]
    fn model_prefers_eager_on_determinization_heavy_queries() {
        // Anchors the fitted weights to the fig12 corpus: once the LHS
        // grows past a few dozen states the eager engine is measured
        // fastest by an order of magnitude (18-32 µs vs 93-643000 µs),
        // and the model must keep routing those queries to it.
        for (lhs_states, lhs_transitions, classes) in
            [(38, 41, 27), (50, 53, 30), (60, 63, 34), (2826, 2829, 42)]
        {
            let f = QueryFeatures {
                lhs_states,
                lhs_transitions,
                rhs_states: 8,
                rhs_transitions: 9,
                classes,
            };
            assert_eq!(select(&f), EngineKind::Eager, "{f:?}");
        }
        // ... while the small constraint-graph queries that dominate the
        // corpus by count stay on the cheap lazy engines.
        let small = QueryFeatures {
            lhs_states: 3,
            lhs_transitions: 4,
            rhs_states: 3,
            rhs_transitions: 4,
            classes: 3,
        };
        assert_ne!(select(&small), EngineKind::Eager, "{small:?}");
    }

    #[test]
    fn every_concrete_engine_has_exactly_one_model_row() {
        for kind in [
            EngineKind::Eager,
            EngineKind::Antichain,
            EngineKind::Derivative,
        ] {
            assert_eq!(MODEL.iter().filter(|w| w.kind == kind).count(), 1, "{kind}");
        }
        assert!(MODEL.iter().all(|w| w.kind != EngineKind::Auto));
        assert_eq!(
            MODEL[0].kind,
            EngineKind::default(),
            "ties must break toward the default engine"
        );
    }
}
