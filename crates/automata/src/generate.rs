//! Random machine generation for property testing and scaling studies.
//!
//! The benchmark harness sweeps machine size `Q` to validate the paper's
//! §3.5 state-space complexity bounds, and the property-test suites exercise
//! the algebra of machine operations on random instances; both need
//! reproducible random automata, produced here from explicit seeds.

use crate::byteclass::ByteClass;
use crate::nfa::Nfa;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random NFA generation.
#[derive(Clone, Debug)]
pub struct RandomNfaConfig {
    /// Number of states (≥ 1).
    pub states: usize,
    /// Expected number of byte-class edges per state.
    pub edges_per_state: f64,
    /// Expected number of epsilon edges per state.
    pub eps_per_state: f64,
    /// Bytes the generated transition classes draw from.
    pub alphabet: Vec<u8>,
    /// Probability that a non-start state is final.
    pub final_probability: f64,
}

impl Default for RandomNfaConfig {
    fn default() -> Self {
        RandomNfaConfig {
            states: 8,
            edges_per_state: 2.0,
            eps_per_state: 0.3,
            alphabet: vec![b'a', b'b', b'c'],
            final_probability: 0.2,
        }
    }
}

/// Generates a random NFA from `seed`. Deterministic per seed/config pair.
///
/// At least one state is made final, so generated languages are nonempty
/// *as machines*; the language itself may still be empty if finals are
/// unreachable — callers that need a nonempty language should use
/// [`random_nonempty_nfa`].
pub fn random_nfa(seed: u64, config: &RandomNfaConfig) -> Nfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.states.max(1);
    let mut m = Nfa::new();
    let mut ids = vec![m.start()];
    for _ in 1..n {
        ids.push(m.add_state());
    }
    for &from in &ids {
        let n_edges = poissonish(&mut rng, config.edges_per_state);
        for _ in 0..n_edges {
            let to = ids[rng.gen_range(0..n)];
            let class = random_class(&mut rng, &config.alphabet);
            if !class.is_empty() {
                m.add_edge(from, class, to);
            }
        }
        let n_eps = poissonish(&mut rng, config.eps_per_state);
        for _ in 0..n_eps {
            let to = ids[rng.gen_range(0..n)];
            m.add_eps(from, to);
        }
    }
    let mut any_final = false;
    for &q in &ids {
        if rng.gen_bool(config.final_probability) {
            m.add_final(q);
            any_final = true;
        }
    }
    if !any_final {
        m.add_final(ids[rng.gen_range(0..n)]);
    }
    m
}

/// Generates a random NFA whose language is guaranteed nonempty, by retrying
/// seeds derived from `seed` until one has a reachable final state.
pub fn random_nonempty_nfa(seed: u64, config: &RandomNfaConfig) -> Nfa {
    for attempt in 0..u64::MAX {
        let m = random_nfa(
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(attempt),
            config,
        );
        if !m.is_empty_language() {
            return m;
        }
    }
    unreachable!("some random machine has a nonempty language")
}

/// A "string-constant-like" machine: a long literal with optional loops,
/// mimicking the large constants the paper's prototype tracked through its
/// transformations (the source of the `secure` outlier in Figure 12).
pub fn random_literal_chain(seed: u64, len: usize, alphabet: &[u8]) -> Nfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let word: Vec<u8> = (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len().max(1))])
        .collect();
    Nfa::literal(&word)
}

fn poissonish(rng: &mut StdRng, mean: f64) -> usize {
    // Cheap discrete approximation: floor(mean) plus a Bernoulli for the
    // fractional part; adequate for test-input shaping.
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

fn random_class(rng: &mut StdRng, alphabet: &[u8]) -> ByteClass {
    let mut c = ByteClass::EMPTY;
    if alphabet.is_empty() {
        return c;
    }
    // Mostly singletons; occasionally multi-byte classes.
    let k = if rng.gen_bool(0.8) {
        1
    } else {
        rng.gen_range(1..=alphabet.len())
    };
    for _ in 0..k {
        c.insert(alphabet[rng.gen_range(0..alphabet.len())]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomNfaConfig::default();
        let a = random_nfa(42, &cfg);
        let b = random_nfa(42, &cfg);
        assert_eq!(a, b);
        let c = random_nfa(43, &cfg);
        assert!(a != c || a.num_states() == c.num_states());
    }

    #[test]
    fn respects_state_count() {
        let cfg = RandomNfaConfig {
            states: 17,
            ..Default::default()
        };
        assert_eq!(random_nfa(1, &cfg).num_states(), 17);
        let tiny = RandomNfaConfig {
            states: 0,
            ..Default::default()
        };
        assert_eq!(random_nfa(1, &tiny).num_states(), 1);
    }

    #[test]
    fn nonempty_generator_is_nonempty() {
        let cfg = RandomNfaConfig {
            final_probability: 0.05,
            ..Default::default()
        };
        for seed in 0..20 {
            assert!(!random_nonempty_nfa(seed, &cfg).is_empty_language());
        }
    }

    #[test]
    fn alphabet_is_respected() {
        let cfg = RandomNfaConfig {
            alphabet: vec![b'x'],
            ..Default::default()
        };
        let m = random_nfa(7, &cfg);
        for (_, class, _) in m.edges() {
            for b in class.iter() {
                assert_eq!(b, b'x');
            }
        }
    }

    #[test]
    fn literal_chain_is_single_word() {
        let m = random_literal_chain(3, 10, b"ab");
        assert_eq!(m.num_states(), 11);
        let w = m.shortest_member().expect("literal chain nonempty");
        assert_eq!(w.len(), 10);
        assert!(m.contains(&w));
    }
}
