//! Regular operations on NFAs: concatenation, union, Kleene closures, and
//! the cross-product intersection.
//!
//! Concatenation and intersection return *provenance* alongside the machine:
//! the decision procedure (paper Figure 3 and §3.4.3) must later locate the
//! epsilon transition introduced by a concatenation inside derived product
//! machines, so [`concat`] reports where operand states landed and
//! [`intersect`] reports which operand pair each product state represents.

use crate::nfa::{Nfa, StateId};
use std::collections::{HashMap, VecDeque};

/// Result of [`concat`]: the machine for `L(a)·L(b)` plus provenance.
#[derive(Clone, Debug)]
pub struct Concatenation {
    /// The concatenation machine, in normalized shape.
    pub nfa: Nfa,
    /// For each state of the (normalized) left operand, its id in `nfa`.
    pub left_map: Vec<StateId>,
    /// For each state of the (normalized) right operand, its id in `nfa`.
    pub right_map: Vec<StateId>,
    /// The single epsilon *bridge* `(f₁, s₂)` joining the operands
    /// (paper Figure 3, line 6). Slicing the machine at instances of this
    /// edge is the heart of the CI algorithm.
    pub bridge: (StateId, StateId),
}

/// Concatenates two machines with a single epsilon bridge between the left
/// operand's final state and the right operand's start state.
///
/// Operands are normalized first, so the resulting machine is itself
/// normalized and the bridge is the unique epsilon edge between the two
/// halves.
///
/// # Examples
///
/// ```
/// use dprle_automata::{Nfa, ops};
///
/// let ab = ops::concat(&Nfa::literal(b"a"), &Nfa::literal(b"b"));
/// assert!(ab.nfa.contains(b"ab"));
/// assert!(!ab.nfa.contains(b"a"));
/// ```
pub fn concat(a: &Nfa, b: &Nfa) -> Concatenation {
    let a = a.normalize();
    let b = b.normalize();
    // Copy the left operand one-for-one: left_map[i] == i.
    let mut out = Nfa::new();
    let mut left_map = Vec::with_capacity(a.num_states());
    left_map.push(out.start());
    for _ in 1..a.num_states() {
        left_map.push(out.add_state());
    }
    out.set_start(left_map[a.start().index()]);
    for (from, class, to) in a.edges() {
        out.add_edge(left_map[from.index()], class, left_map[to.index()]);
    }
    for (from, to) in a.eps_edges() {
        out.add_eps(left_map[from.index()], left_map[to.index()]);
    }
    // Copy right operand.
    let mut right_map = Vec::with_capacity(b.num_states());
    for _ in b.state_ids() {
        right_map.push(out.add_state());
    }
    for (from, class, to) in b.edges() {
        out.add_edge(right_map[from.index()], class, right_map[to.index()]);
    }
    for (from, to) in b.eps_edges() {
        out.add_eps(right_map[from.index()], right_map[to.index()]);
    }
    let f1 = left_map[a.single_final().index()];
    let s2 = right_map[b.start().index()];
    out.add_eps(f1, s2);
    out.add_final(right_map[b.single_final().index()]);
    Concatenation {
        nfa: out,
        left_map,
        right_map,
        bridge: (f1, s2),
    }
}

/// The machine for `L(a) ∪ L(b)`, in normalized shape.
pub fn union(a: &Nfa, b: &Nfa) -> Nfa {
    union_all([a, b])
}

/// The machine for the union of any number of languages, in normalized
/// shape. An empty iterator yields the empty language.
pub fn union_all<'a, I: IntoIterator<Item = &'a Nfa>>(machines: I) -> Nfa {
    let mut out = Nfa::new();
    let final_ = out.add_state();
    for m in machines {
        let m = m.normalize();
        let mut map = Vec::with_capacity(m.num_states());
        for _ in m.state_ids() {
            map.push(out.add_state());
        }
        for (from, class, to) in m.edges() {
            out.add_edge(map[from.index()], class, map[to.index()]);
        }
        for (from, to) in m.eps_edges() {
            out.add_eps(map[from.index()], map[to.index()]);
        }
        out.add_eps(out.start(), map[m.start().index()]);
        out.add_eps(map[m.single_final().index()], final_);
    }
    out.add_final(final_);
    out
}

/// The machine for `L(a)*` (Kleene star), in normalized shape.
pub fn star(a: &Nfa) -> Nfa {
    let a = a.normalize();
    let mut out = Nfa::new();
    let mut map = Vec::with_capacity(a.num_states());
    for _ in a.state_ids() {
        map.push(out.add_state());
    }
    for (from, class, to) in a.edges() {
        out.add_edge(map[from.index()], class, map[to.index()]);
    }
    for (from, to) in a.eps_edges() {
        out.add_eps(map[from.index()], map[to.index()]);
    }
    let s = map[a.start().index()];
    let f = map[a.single_final().index()];
    let final_ = out.add_state();
    out.add_eps(out.start(), s);
    out.add_eps(out.start(), final_); // zero iterations
    out.add_eps(f, s); // loop
    out.add_eps(f, final_);
    out.add_final(final_);
    out
}

/// The machine for `L(a)+` (one or more repetitions), in normalized shape.
pub fn plus(a: &Nfa) -> Nfa {
    concat(a, &star(a)).nfa
}

/// The machine for `L(a)?` (zero or one occurrence), in normalized shape.
pub fn optional(a: &Nfa) -> Nfa {
    union(a, &Nfa::epsilon())
}

/// The machine for `L(a)` repeated exactly `n` times.
pub fn repeat_exact(a: &Nfa, n: usize) -> Nfa {
    let mut out = Nfa::epsilon();
    for _ in 0..n {
        out = concat(&out, a).nfa;
    }
    out.normalize()
}

/// The machine for `L(a){min,max}` (between `min` and `max` repetitions).
///
/// # Panics
///
/// Panics if `min > max`.
pub fn repeat_range(a: &Nfa, min: usize, max: usize) -> Nfa {
    assert!(min <= max, "repeat_range requires min <= max");
    let mut out = repeat_exact(a, min);
    let opt = optional(a);
    for _ in min..max {
        out = concat(&out, &opt).nfa;
    }
    out
}

/// Result of [`intersect`]: the product machine plus, for each product
/// state, the pair of operand states it represents (paper Figure 3,
/// lines 7–8: states of `M₅` are written `q_x q_y`).
#[derive(Clone, Debug)]
pub struct Product {
    /// The product machine. Only pairs reachable from the start pair are
    /// materialized.
    pub nfa: Nfa,
    /// `pairs[i]` is the `(left, right)` operand-state pair represented by
    /// product state `i`.
    pub pairs: Vec<(StateId, StateId)>,
}

impl Product {
    /// Finds the product state representing `(left, right)`, if reachable.
    pub fn state_for(&self, left: StateId, right: StateId) -> Option<StateId> {
        self.pairs
            .iter()
            .position(|&p| p == (left, right))
            .map(|i| StateId(i as u32))
    }
}

/// Cross-product intersection of two epsilon-NFAs: the language of the
/// result is `L(a) ∩ L(b)`.
///
/// Epsilon transitions are handled asynchronously (an ε-move of either
/// operand is an ε-move of the product), which is the standard construction
/// and the one the paper's correctness argument relies on: every ε-edge of
/// the left operand reappears as product ε-edges whose right component is
/// unchanged.
///
/// # Examples
///
/// ```
/// use dprle_automata::{Nfa, ops};
///
/// let p = ops::intersect(&Nfa::sigma_star(), &Nfa::literal(b"hi"));
/// assert!(p.nfa.contains(b"hi"));
/// assert!(!p.nfa.contains(b"h"));
/// ```
pub fn intersect(a: &Nfa, b: &Nfa) -> Product {
    try_intersect(a, b, usize::MAX).expect("unlimited product cannot exceed its cap")
}

/// Like [`intersect`], but aborts — returning `None` — as soon as the
/// product would materialize more than `max_states` states.
///
/// This is the enforcement point for the solver's `max_product_states`
/// resource budget: the BFS stops *before* exceeding the cap, so at most
/// `max_states` product states (and their edges) ever exist. The bound
/// depends only on the operands, which keeps budgeted solves
/// deterministic across worklist thread counts.
pub fn try_intersect(a: &Nfa, b: &Nfa, max_states: usize) -> Option<Product> {
    let mut out = Nfa::new();
    let mut pairs: Vec<(StateId, StateId)> = vec![(a.start(), b.start())];
    if max_states == 0 {
        return None;
    }
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    index.insert((a.start(), b.start()), out.start());
    let mut work: VecDeque<StateId> = VecDeque::from([out.start()]);
    let mut exhausted = false;
    while let Some(pq) = work.pop_front() {
        let (p, q) = pairs[pq.index()];
        let mut intern = |pair: (StateId, StateId),
                          out: &mut Nfa,
                          pairs: &mut Vec<(StateId, StateId)>,
                          work: &mut VecDeque<StateId>|
         -> Option<StateId> {
            if let Some(&id) = index.get(&pair) {
                return Some(id);
            }
            if pairs.len() >= max_states {
                return None;
            }
            let id = out.add_state();
            index.insert(pair, id);
            pairs.push(pair);
            work.push_back(id);
            Some(id)
        };
        // Synchronized byte moves.
        let pa = a.state(p).edges.clone();
        let qb = b.state(q).edges.clone();
        for &(ca, t1) in &pa {
            for &(cb, t2) in &qb {
                let c = ca.intersect(&cb);
                if c.is_empty() {
                    continue;
                }
                match intern((t1, t2), &mut out, &mut pairs, &mut work) {
                    Some(t) => out.add_edge(pq, c, t),
                    None => exhausted = true,
                }
            }
        }
        // Asynchronous epsilon moves.
        for &t1 in &a.state(p).eps.clone() {
            match intern((t1, q), &mut out, &mut pairs, &mut work) {
                Some(t) => out.add_eps(pq, t),
                None => exhausted = true,
            }
        }
        for &t2 in &b.state(q).eps.clone() {
            match intern((p, t2), &mut out, &mut pairs, &mut work) {
                Some(t) => out.add_eps(pq, t),
                None => exhausted = true,
            }
        }
        if exhausted {
            return None;
        }
        if a.is_final(p) && b.is_final(q) {
            out.add_final(pq);
        }
    }
    Some(Product { nfa: out, pairs })
}

/// Convenience wrapper: the intersection machine without provenance,
/// trimmed.
pub fn intersect_lang(a: &Nfa, b: &Nfa) -> Nfa {
    intersect_lang_counted(a, b).0
}

/// Cost report of one intersection: the §3.5 "product states explored vs.
/// reachable" numbers the metrics registry records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntersectCost {
    /// Product states materialized by the BFS (explored pairs).
    pub explored: usize,
    /// Product states surviving the trim (on a live start→final path).
    pub reachable: usize,
}

/// Like [`intersect_lang`], additionally reporting the explored and
/// reachable product-state counts so callers can record them without
/// recomputing the product.
pub fn intersect_lang_counted(a: &Nfa, b: &Nfa) -> (Nfa, IntersectCost) {
    let product = intersect(a, b);
    let explored = product.pairs.len();
    let trimmed = product.nfa.trim().0;
    let cost = IntersectCost {
        explored,
        reachable: trimmed.num_states(),
    };
    (trimmed, cost)
}

/// The intersection of any number of languages, trimmed after each step
/// (pairwise products would otherwise grow multiplicatively). An empty
/// iterator yields Σ* (the intersection's identity).
pub fn intersect_all<'a, I: IntoIterator<Item = &'a Nfa>>(machines: I) -> Nfa {
    let mut out: Option<Nfa> = None;
    for m in machines {
        out = Some(match out {
            None => m.clone(),
            Some(acc) => intersect_lang(&acc, m),
        });
    }
    out.unwrap_or_else(Nfa::sigma_star)
}

/// Convenience wrapper: the concatenation machine without provenance.
pub fn concat_lang(a: &Nfa, b: &Nfa) -> Nfa {
    concat(a, b).nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    const AB: &[u8] = b"ab";

    fn langs_equal_upto(a: &Nfa, b: &Nfa, alphabet: &[u8], n: usize) -> bool {
        a.enumerate_upto(alphabet, n) == b.enumerate_upto(alphabet, n)
    }

    #[test]
    fn concat_bridge_is_the_join() {
        let c = concat(&Nfa::literal(b"x"), &Nfa::literal(b"y"));
        assert!(c.nfa.contains(b"xy"));
        assert!(!c.nfa.contains(b"x"));
        assert!(c.nfa.is_normalized());
        let (f1, s2) = c.bridge;
        // The bridge connects the left final to the right start.
        assert!(c.left_map.contains(&f1));
        assert!(c.right_map.contains(&s2));
        assert!(c.nfa.state(f1).eps.contains(&s2));
    }

    #[test]
    fn concat_with_epsilon_identity() {
        let a = Nfa::literal(b"ab");
        let left = concat(&Nfa::epsilon(), &a).nfa;
        let right = concat(&a, &Nfa::epsilon()).nfa;
        assert!(langs_equal_upto(&left, &a, AB, 4));
        assert!(langs_equal_upto(&right, &a, AB, 4));
    }

    #[test]
    fn concat_with_empty_is_empty() {
        let a = Nfa::literal(b"ab");
        assert!(concat(&a, &Nfa::empty_language()).nfa.is_empty_language());
        assert!(concat(&Nfa::empty_language(), &a).nfa.is_empty_language());
    }

    #[test]
    fn union_covers_both() {
        let u = union(&Nfa::literal(b"a"), &Nfa::literal(b"bb"));
        assert!(u.contains(b"a"));
        assert!(u.contains(b"bb"));
        assert!(!u.contains(b"b"));
        assert!(u.is_normalized());
    }

    #[test]
    fn union_all_empty_iterator() {
        let u = union_all(std::iter::empty());
        assert!(u.is_empty_language());
    }

    #[test]
    fn union_all_empty_iterator_pins_shape() {
        // Pinned behavior (not a panic): the empty union is the empty
        // language, materialized as a start state plus a disconnected
        // final — never zero states, so budget/metrics accounting that
        // divides by or logs state counts sees a nonzero machine.
        let u = union_all(std::iter::empty());
        assert_eq!(u.num_states(), 2);
        assert!(!u.contains(b""));
        assert!(u.is_empty_language());
        // Degenerate singleton union is the identity.
        let one = union_all([&Nfa::literal(b"q")]);
        assert!(one.contains(b"q"));
        assert!(!one.contains(b""));
    }

    #[test]
    fn intersect_all_empty_iterator_pins_sigma_star() {
        // Pinned behavior (not a panic): the empty intersection is the
        // neutral element Σ*, a nonzero-state machine.
        let top = intersect_all(std::iter::empty());
        assert!(top.num_states() >= 1);
        assert!(top.contains(b""));
        assert!(top.contains(b"anything"));
        // Degenerate singleton intersection is the identity.
        let one = intersect_all([&Nfa::literal(b"q")]);
        assert!(one.contains(b"q"));
        assert!(!one.contains(b"qq"));
    }

    #[test]
    fn star_and_plus() {
        let a = Nfa::literal(b"ab");
        let s = star(&a);
        for w in [&b""[..], b"ab", b"abab", b"ababab"] {
            assert!(s.contains(w), "star should accept {w:?}");
        }
        assert!(!s.contains(b"aba"));
        let p = plus(&a);
        assert!(!p.contains(b""));
        assert!(p.contains(b"ab"));
        assert!(p.contains(b"abab"));
    }

    #[test]
    fn star_of_empty_language_is_epsilon() {
        let s = star(&Nfa::empty_language());
        assert!(s.contains(b""));
        assert_eq!(s.enumerate_upto(AB, 2), BTreeSet::from([vec![]]));
    }

    #[test]
    fn optional_adds_epsilon() {
        let o = optional(&Nfa::literal(b"a"));
        assert!(o.contains(b""));
        assert!(o.contains(b"a"));
        assert!(!o.contains(b"aa"));
    }

    #[test]
    fn repeat_exact_and_range() {
        let a = Nfa::literal(b"a");
        let three = repeat_exact(&a, 3);
        assert!(three.contains(b"aaa"));
        assert!(!three.contains(b"aa"));
        let r = repeat_range(&a, 1, 3);
        assert!(!r.contains(b""));
        assert!(r.contains(b"a"));
        assert!(r.contains(b"aaa"));
        assert!(!r.contains(b"aaaa"));
        assert!(repeat_exact(&a, 0).contains(b""));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn repeat_range_validates() {
        repeat_range(&Nfa::epsilon(), 3, 1);
    }

    #[test]
    fn intersect_is_conjunction() {
        // (xx)+y  ∩  x*y  — the paper's §3.1.1 example: equal to (xx)+y.
        let xx_plus_y = concat(&plus(&Nfa::literal(b"xx")), &Nfa::literal(b"y")).nfa;
        let xstar_y = concat(&star(&Nfa::literal(b"x")), &Nfa::literal(b"y")).nfa;
        let i = intersect(&xx_plus_y, &xstar_y).nfa;
        assert!(langs_equal_upto(&i, &xx_plus_y, b"xy", 7));
    }

    #[test]
    fn intersect_tracks_pairs() {
        let a = Nfa::literal(b"ab");
        let b = Nfa::sigma_star();
        let p = intersect(&a, &b);
        // Every product state's left component is a state of `a`.
        for &(l, _) in &p.pairs {
            assert!(l.index() < a.num_states());
        }
        assert_eq!(p.state_for(a.start(), b.start()), Some(p.nfa.start()));
        assert!(p.nfa.contains(b"ab"));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let i = intersect_lang(&Nfa::literal(b"a"), &Nfa::literal(b"b"));
        assert!(i.is_empty_language());
    }

    #[test]
    fn intersect_epsilon_asynchrony() {
        // Left machine reaches finals only through epsilon chains.
        let mut a = Nfa::new();
        let m1 = a.add_state();
        let m2 = a.add_state();
        a.add_eps(a.start(), m1);
        a.add_edge(m1, crate::byteclass::ByteClass::singleton(b'z'), m2);
        let f = a.add_state();
        a.add_eps(m2, f);
        a.add_final(f);
        let i = intersect_lang(&a, &Nfa::literal(b"z"));
        assert!(i.contains(b"z"));
        assert!(!i.contains(b""));
    }

    #[test]
    fn intersect_all_folds() {
        let a = ops_star_ab();
        fn ops_star_ab() -> Nfa {
            star(&union(&Nfa::literal(b"a"), &Nfa::literal(b"b")))
        }
        let ends_b = concat(&a, &Nfa::literal(b"b")).nfa;
        let starts_a = concat(&Nfa::literal(b"a"), &a).nfa;
        let both = intersect_all([&ends_b, &starts_a]);
        assert!(both.contains(b"ab"));
        assert!(!both.contains(b"ba"));
        assert!(!both.contains(b"a"));
        // Identity case.
        let top = intersect_all(std::iter::empty());
        assert!(top.contains(b"anything"));
    }

    #[test]
    fn product_size_bounded_by_state_product() {
        let a = Nfa::literal(b"aaaa");
        let b = Nfa::sigma_star();
        let p = intersect(&a, &b);
        assert!(p.nfa.num_states() <= a.num_states() * b.num_states());
    }

    #[test]
    fn try_intersect_honors_the_cap() {
        let a = Nfa::literal(b"aaaa");
        let b = Nfa::sigma_star();
        let full = intersect(&a, &b);
        let need = full.pairs.len();
        // A generous cap succeeds with the identical product.
        let ok = try_intersect(&a, &b, need).expect("cap not hit");
        assert_eq!(ok.pairs.len(), need);
        assert!(ok.nfa.contains(b"aaaa"));
        // One state short: aborts, never exceeding the cap.
        assert!(try_intersect(&a, &b, need - 1).is_none());
        assert!(try_intersect(&a, &b, 0).is_none());
    }

    #[test]
    fn counted_intersection_reports_explored_vs_reachable() {
        // `aaaa ∩ Σ*` explores the full line but every state is live.
        let a = Nfa::literal(b"aaaa");
        let (m, cost) = intersect_lang_counted(&a, &Nfa::sigma_star());
        assert!(m.contains(b"aaaa"));
        assert_eq!(cost.explored, intersect(&a, &Nfa::sigma_star()).pairs.len());
        assert!(cost.reachable <= cost.explored);
        assert!(cost.reachable >= 1);
        // A disjoint intersection explores states but none survive trim.
        let (empty, cost) = intersect_lang_counted(&Nfa::literal(b"a"), &Nfa::literal(b"b"));
        assert!(empty.is_empty_language());
        assert!(cost.explored >= 1);
    }
}
