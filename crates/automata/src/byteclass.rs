//! Sets of bytes used as transition labels.
//!
//! A [`ByteClass`] is a subset of the 256 possible byte values, stored as a
//! 256-bit bitmap. Labelling NFA transitions with byte classes instead of
//! individual bytes keeps the machines built by the decision procedure small:
//! a character class such as `[0-9]` or `\S` is a single edge rather than
//! tens or hundreds of parallel edges. All set operations are O(1) in the
//! number of 64-bit words.

use std::fmt;

/// A set of byte values, used as the label of a non-epsilon NFA transition.
///
/// # Examples
///
/// ```
/// use dprle_automata::ByteClass;
///
/// let digits = ByteClass::range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteClass {
    words: [u64; 4],
}

impl ByteClass {
    /// The empty set of bytes.
    pub const EMPTY: ByteClass = ByteClass { words: [0; 4] };

    /// The full alphabet Σ (all 256 byte values).
    pub const FULL: ByteClass = ByteClass {
        words: [u64::MAX; 4],
    };

    /// Creates an empty byte class.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The four 64-bit words of the underlying 256-bit membership bitmap,
    /// low bytes first. A stable representation for hashing.
    pub fn words(&self) -> [u64; 4] {
        self.words
    }

    /// Creates the class containing exactly `b`.
    pub fn singleton(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// Creates the class containing the inclusive range `lo..=hi`.
    ///
    /// An empty class is returned when `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = Self::EMPTY;
        let mut b = lo;
        while b <= hi {
            c.insert(b);
            if b == u8::MAX {
                break;
            }
            b += 1;
        }
        c
    }

    /// Creates a class from an iterator of bytes.
    pub fn from_bytes<I: IntoIterator<Item = u8>>(bytes: I) -> Self {
        let mut c = Self::EMPTY;
        for b in bytes {
            c.insert(b);
        }
        c
    }

    /// Adds `b` to the class. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, b: u8) -> bool {
        let (w, bit) = (b as usize / 64, b as usize % 64);
        let fresh = self.words[w] & (1 << bit) == 0;
        self.words[w] |= 1 << bit;
        fresh
    }

    /// Removes `b` from the class. Returns `true` if it was present.
    pub fn remove(&mut self, b: u8) -> bool {
        let (w, bit) = (b as usize / 64, b as usize % 64);
        let present = self.words[w] & (1 << bit) != 0;
        self.words[w] &= !(1 << bit);
        present
    }

    /// Tests whether `b` is a member of the class.
    pub fn contains(&self, b: u8) -> bool {
        let (w, bit) = (b as usize / 64, b as usize % 64);
        self.words[w] & (1 << bit) != 0
    }

    /// The number of bytes in the class.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Tests whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }

    /// Tests whether the class contains every byte value.
    pub fn is_full(&self) -> bool {
        self.words == [u64::MAX; 4]
    }

    /// Set union.
    pub fn union(&self, other: &ByteClass) -> ByteClass {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        ByteClass { words }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ByteClass) -> ByteClass {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        ByteClass { words }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &ByteClass) -> ByteClass {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        ByteClass { words }
    }

    /// Set complement with respect to the full byte alphabet.
    pub fn complement(&self) -> ByteClass {
        let mut words = self.words;
        for w in words.iter_mut() {
            *w = !*w;
        }
        ByteClass { words }
    }

    /// Tests whether `self` and `other` share no bytes.
    pub fn is_disjoint(&self, other: &ByteClass) -> bool {
        self.intersect(other).is_empty()
    }

    /// Tests whether every byte of `self` is in `other`.
    pub fn is_subset(&self, other: &ByteClass) -> bool {
        self.difference(other).is_empty()
    }

    /// The smallest byte in the class, if any.
    ///
    /// Used to extract concrete witness strings from automata.
    pub fn min_byte(&self) -> Option<u8> {
        for (i, w) in self.words.iter().enumerate() {
            if *w != 0 {
                return Some((i * 64 + w.trailing_zeros() as usize) as u8);
            }
        }
        None
    }

    /// Prefers a printable ASCII representative, falling back to the smallest
    /// byte. Witness strings read better when they use printable bytes.
    pub fn pick_representative(&self) -> Option<u8> {
        // Prefer lowercase letters, then digits, then any printable, then any.
        for range in [(b'a', b'z'), (b'0', b'9'), (b' ', b'~')] {
            let printable = self.intersect(&ByteClass::range(range.0, range.1));
            if let Some(b) = printable.min_byte() {
                return Some(b);
            }
        }
        self.min_byte()
    }

    /// Iterates over the member bytes in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            class: self,
            next: 0,
            done: false,
        }
    }
}

/// Iterator over the bytes of a [`ByteClass`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    class: &'a ByteClass,
    next: u8,
    done: bool,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.done {
            return None;
        }
        loop {
            let b = self.next;
            if b == u8::MAX {
                self.done = true;
            } else {
                self.next = b + 1;
            }
            if self.class.contains(b) {
                return Some(b);
            }
            if self.done {
                return None;
            }
        }
    }
}

impl<'a> IntoIterator for &'a ByteClass {
    type Item = u8;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<u8> for ByteClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from_bytes(iter)
    }
}

impl Extend<u8> for ByteClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl From<u8> for ByteClass {
    fn from(b: u8) -> Self {
        ByteClass::singleton(b)
    }
}

fn write_byte(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
    match b {
        b'\\' => write!(f, "\\\\"),
        b'-' => write!(f, "\\-"),
        b']' => write!(f, "\\]"),
        b'\n' => write!(f, "\\n"),
        b'\r' => write!(f, "\\r"),
        b'\t' => write!(f, "\\t"),
        0x20..=0x7e => write!(f, "{}", b as char),
        _ => write!(f, "\\x{b:02x}"),
    }
}

impl fmt::Display for ByteClass {
    /// Renders the class in character-class syntax, e.g. `[0-9a-f]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, ".");
        }
        if self.is_empty() {
            return write!(f, "[]");
        }
        if self.len() == 1 {
            return write_byte(f, self.min_byte().expect("nonempty"));
        }
        write!(f, "[")?;
        // Emit maximal runs as ranges.
        let mut run: Option<(u8, u8)> = None;
        let flush = |f: &mut fmt::Formatter<'_>, run: (u8, u8)| -> fmt::Result {
            let (lo, hi) = run;
            write_byte(f, lo)?;
            if hi > lo {
                if hi - lo > 1 {
                    write!(f, "-")?;
                }
                write_byte(f, hi)?;
            }
            Ok(())
        };
        for b in self.iter() {
            run = match run {
                Some((lo, hi)) if b == hi + 1 => Some((lo, b)),
                Some(r) => {
                    flush(f, r)?;
                    Some((b, b))
                }
                None => Some((b, b)),
            };
        }
        if let Some(r) = run {
            flush(f, r)?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteClass({self})")
    }
}

/// Computes the *minterms* of a collection of byte classes: the coarsest
/// partition of the alphabet such that every input class is a union of
/// partition blocks.
///
/// Determinization and minimization iterate over minterms instead of over all
/// 256 bytes, which keeps the effective alphabet proportional to the number
/// of distinct classes actually used by the machines.
///
/// Classes that are empty are ignored. The returned blocks are pairwise
/// disjoint, nonempty, and their union equals the union of the inputs.
pub fn minterms<'a, I: IntoIterator<Item = &'a ByteClass>>(classes: I) -> Vec<ByteClass> {
    let mut blocks: Vec<ByteClass> = Vec::new();
    for class in classes {
        if class.is_empty() {
            continue;
        }
        let mut rest = *class;
        let mut next_blocks = Vec::with_capacity(blocks.len() + 1);
        for block in blocks.drain(..) {
            let inside = block.intersect(&rest);
            let outside = block.difference(&rest);
            if !inside.is_empty() {
                next_blocks.push(inside);
            }
            if !outside.is_empty() {
                next_blocks.push(outside);
            }
            rest = rest.difference(&block);
        }
        if !rest.is_empty() {
            next_blocks.push(rest);
        }
        blocks = next_blocks;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(ByteClass::EMPTY.is_empty());
        assert!(ByteClass::FULL.is_full());
        assert_eq!(ByteClass::EMPTY.len(), 0);
        assert_eq!(ByteClass::FULL.len(), 256);
        assert_eq!(ByteClass::FULL.complement(), ByteClass::EMPTY);
        assert_eq!(ByteClass::new(), ByteClass::default());
    }

    #[test]
    fn singleton_and_range() {
        let c = ByteClass::singleton(b'x');
        assert!(c.contains(b'x'));
        assert_eq!(c.len(), 1);
        let r = ByteClass::range(b'a', b'f');
        assert_eq!(r.len(), 6);
        assert!(r.contains(b'c'));
        assert!(!r.contains(b'g'));
        assert!(ByteClass::range(b'z', b'a').is_empty());
        // Full-range edge case including 0xff.
        assert!(ByteClass::range(0, 255).is_full());
    }

    #[test]
    fn insert_remove() {
        let mut c = ByteClass::new();
        assert!(c.insert(7));
        assert!(!c.insert(7));
        assert!(c.remove(7));
        assert!(!c.remove(7));
        assert!(c.is_empty());
    }

    #[test]
    fn boolean_algebra() {
        let a = ByteClass::range(b'0', b'9');
        let b = ByteClass::range(b'5', b'z');
        assert_eq!(a.union(&b).len(), 10 + (b'z' - b'5' + 1) as usize - 5);
        assert_eq!(a.intersect(&b), ByteClass::range(b'5', b'9'));
        assert_eq!(a.difference(&b), ByteClass::range(b'0', b'4'));
        assert!(a.intersect(&b).is_subset(&a));
        assert!(a.intersect(&b).is_subset(&b));
        assert!(a.is_disjoint(&a.complement()));
        assert_eq!(a.union(&a.complement()), ByteClass::FULL);
    }

    #[test]
    fn iteration_order() {
        let c = ByteClass::from_bytes([b'z', b'a', b'm']);
        let v: Vec<u8> = c.iter().collect();
        assert_eq!(v, vec![b'a', b'm', b'z']);
        // Iterator must terminate when 0xff is a member.
        let edge = ByteClass::from_bytes([0u8, 255u8]);
        assert_eq!(edge.iter().collect::<Vec<_>>(), vec![0, 255]);
    }

    #[test]
    fn min_and_representative() {
        assert_eq!(ByteClass::EMPTY.min_byte(), None);
        let c = ByteClass::from_bytes([0x01, b'q']);
        assert_eq!(c.min_byte(), Some(0x01));
        assert_eq!(c.pick_representative(), Some(b'q'));
        let np = ByteClass::singleton(0x01);
        assert_eq!(np.pick_representative(), Some(0x01));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ByteClass::FULL.to_string(), ".");
        assert_eq!(ByteClass::EMPTY.to_string(), "[]");
        assert_eq!(ByteClass::singleton(b'a').to_string(), "a");
        assert_eq!(ByteClass::range(b'0', b'9').to_string(), "[0-9]");
        assert_eq!(ByteClass::from_bytes([b'a', b'b']).to_string(), "[ab]");
        assert_eq!(ByteClass::singleton(0).to_string(), "\\x00");
    }

    #[test]
    fn minterms_partition() {
        let a = ByteClass::range(b'0', b'9');
        let b = ByteClass::range(b'5', b'f');
        let blocks = minterms([&a, &b]);
        assert_eq!(blocks.len(), 3);
        let mut union = ByteClass::EMPTY;
        for (i, x) in blocks.iter().enumerate() {
            for y in blocks.iter().skip(i + 1) {
                assert!(x.is_disjoint(y));
            }
            // Every block is entirely inside or outside each input.
            for input in [&a, &b] {
                assert!(x.is_subset(input) || x.is_disjoint(input));
            }
            union = union.union(x);
        }
        assert_eq!(union, a.union(&b));
    }

    #[test]
    fn minterms_ignores_empty_and_dedups() {
        assert!(minterms([&ByteClass::EMPTY]).is_empty());
        let a = ByteClass::range(b'a', b'c');
        let blocks = minterms([&a, &a, &ByteClass::EMPTY]);
        assert_eq!(blocks, vec![a]);
    }
}
