//! Sharded, lock-cheap metrics registry for automata operations.
//!
//! Mirrors the tracer's zero-cost-when-disabled design: a [`Metrics`]
//! handle is either disabled (`inner == None`, every recording method is
//! an inlined no-op) or holds an `Arc` to a fixed-shape [`Registry`] of
//! named counters, gauges, and log2-bucketed histograms. The metric set
//! is a closed table ([`METRIC_DEFS`], indexed by the constants in
//! [`id`]) so snapshots always have the same shape and ordering — the
//! property the determinism harness byte-compares across thread counts.
//!
//! Recording discipline (load-bearing for `--jobs N` determinism): ops
//! stay pure and *return* their costs; recording happens only at sites
//! whose execution set is identical at any thread count — the
//! `LangStore`'s first-writer-wins insert commit, the once-per-handle
//! fingerprint compute, per-entry `gci` calls (identical argument sets at
//! every level), and the driver's ordered replay loop. Counter adds and
//! histogram observations commute, so totals are byte-identical.
//!
//! Layering note: this module lives in `dprle-automata` (the lowest
//! layer) so automata call sites can record into it; `dprle-core`
//! re-exports it as `core::metrics` alongside the resource budgets built
//! on top.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of buckets in every histogram: bucket `i` counts values whose
/// bit length is `i` (`0` for the value zero), so bucket boundaries are
/// powers of two and the last bucket absorbs everything ≥ 2⁶².
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Counter shards: concurrent `add`s from different threads land on
/// different cache lines; a snapshot sums the shards.
const COUNTER_SHARDS: usize = 8;

/// The three metric shapes the registry supports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing sum.
    Counter,
    /// Last-set value with a tracked peak.
    Gauge,
    /// Log2-bucketed distribution with sum and count.
    Histogram,
}

/// One entry of the fixed metric table.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Dotted metric name (`automata.intersect.products`).
    pub name: &'static str,
    /// Human-readable description (Prometheus `# HELP`).
    pub help: &'static str,
    /// Shape of the metric.
    pub kind: MetricKind,
}

/// Metric ids: indices into [`METRIC_DEFS`] and the registry.
pub mod id {
    /// Product constructions performed (`ops::intersect` calls).
    pub const INTERSECT_PRODUCTS: usize = 0;
    /// Histogram of product states explored per intersection.
    pub const INTERSECT_EXPLORED: usize = 1;
    /// Histogram of product states surviving trim per intersection.
    pub const INTERSECT_REACHABLE: usize = 2;
    /// States allocated by `ops::concat`.
    pub const CONCAT_STATES: usize = 3;
    /// States allocated by `ops::union` / `ops::union_all`.
    pub const UNION_STATES: usize = 4;
    /// Histogram of NFA states entering determinization.
    pub const DETERMINIZE_IN: usize = 5;
    /// Histogram of DFA states produced by determinization.
    pub const DETERMINIZE_OUT: usize = 6;
    /// States visited by ε-closure during determinization.
    pub const EPS_CLOSURE_VISITED: usize = 7;
    /// Bytes of cached canonical fingerprints.
    pub const FINGERPRINT_BYTES: usize = 8;
    /// Approximate bytes held by `LangStore` memo tables.
    pub const STORE_MEMO_BYTES: usize = 9;
    /// NFA states materialized through the store.
    pub const STORE_MATERIALIZED: usize = 10;
    /// Histogram of total states per disjunctive group solution.
    pub const GCI_DISJUNCT_STATES: usize = 11;
    /// Worklist queue depth gauge.
    pub const WORKLIST_DEPTH: usize = 12;
    /// Cumulative product states charged against the solve budget.
    pub const SOLVE_PRODUCT_STATES: usize = 13;
    /// Cumulative states built by group solving.
    pub const SOLVE_STATES_BUILT: usize = 14;
    /// Macrostates explored by inclusion engines.
    pub const INCLUSION_MACROSTATES: usize = 15;
    /// Histogram of final antichain size per lazy inclusion query.
    pub const INCLUSION_ANTICHAIN_SIZE: usize = 16;
    /// Macrostates dropped by antichain subsumption.
    pub const INCLUSION_PRUNES: usize = 17;
    /// Memoized store operations answered from a cache.
    pub const STORE_MEMO_HITS: usize = 18;
    /// Memoized store operations computed fresh.
    pub const STORE_MEMO_MISSES: usize = 19;
    /// Memo entries dropped by size-bounded LRU eviction.
    pub const STORE_EVICTIONS: usize = 20;
    /// Bytes reclaimed by size-bounded LRU eviction.
    pub const STORE_EVICTED_BYTES: usize = 21;
    /// Histogram of per-request queue wait in `dprle serve` (µs).
    pub const SERVE_QUEUE_WAIT_US: usize = 22;
    /// Histogram of per-request parse time in `dprle serve` (µs).
    pub const SERVE_PARSE_US: usize = 23;
    /// Histogram of per-request solve time in `dprle serve` (µs).
    pub const SERVE_SOLVE_US: usize = 24;
    /// Histogram of per-request serialization time in `dprle serve` (µs).
    pub const SERVE_SERIALIZE_US: usize = 25;
    /// Histogram of per-request wall time in `dprle serve` (µs).
    pub const SERVE_WALL_US: usize = 26;
    /// Requests answered `sat` by `dprle serve`.
    pub const SERVE_SAT: usize = 27;
    /// Requests answered `unsat` by `dprle serve`.
    pub const SERVE_UNSAT: usize = 28;
    /// Requests answered `resource-exhausted` by `dprle serve`.
    pub const SERVE_RESOURCE_EXHAUSTED: usize = 29;
    /// Requests answered `parse-error` by `dprle serve`.
    pub const SERVE_PARSE_ERROR: usize = 30;
    /// Derivative pairs explored by the derivative inclusion engine.
    pub const INCLUSION_DERIVATIVE_PAIRS: usize = 31;
    /// Histogram of similarity-memo pairs retained per derivative query.
    pub const INCLUSION_DERIVATIVE_MEMO: usize = 32;
    /// Derivative pairs dropped by similarity memoization.
    pub const INCLUSION_DERIVATIVE_PRUNES: usize = 33;
}

/// The closed metric table. Index = metric id; snapshot order = table
/// order, so every snapshot has the same shape.
pub const METRIC_DEFS: &[MetricDef] = &[
    MetricDef {
        name: "automata.intersect.products",
        help: "Product constructions performed by ops::intersect",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.intersect.explored_states",
        help: "Product states explored per intersection (reachable pair expansion)",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.intersect.reachable_states",
        help: "Product states surviving trim per intersection",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.concat.states",
        help: "States allocated by ops::concat",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.union.states",
        help: "States allocated by ops::union and ops::union_all",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.determinize.states_in",
        help: "NFA states entering determinization (minimize and fingerprint paths)",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.determinize.states_out",
        help: "DFA states produced by determinization",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.eps_closure.visited_states",
        help: "States visited by epsilon-closure during determinization",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.fingerprint.bytes",
        help: "Bytes of cached canonical fingerprints (cache footprint)",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.store.memo_bytes",
        help: "Approximate bytes held by LangStore memo tables (peak tracked; falls on eviction)",
        kind: MetricKind::Gauge,
    },
    MetricDef {
        name: "core.store.states_materialized",
        help: "NFA states materialized through the store",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.gci.disjunct_states",
        help: "Total states per disjunctive group solution",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "core.worklist.depth",
        help: "Worklist queue depth (peak tracked)",
        kind: MetricKind::Gauge,
    },
    MetricDef {
        name: "core.solve.product_states",
        help: "Cumulative product states charged against the solve budget",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.solve.states_built",
        help: "Cumulative states built by group solving",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.inclusion.macrostates",
        help: "Macrostates explored by inclusion engines (subset-states plus product pairs)",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.inclusion.antichain_size",
        help: "Final antichain size per inclusion query (zero for the eager engine)",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.inclusion.subsumption_prunes",
        help: "Macrostates dropped by antichain subsumption",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.store.memo_hits",
        help: "Memoized store operations (fingerprint, intersect, inclusion, minimize) answered from a cache",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.store.memo_misses",
        help: "Memoized store operations computed fresh",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.store.evictions",
        help: "Memo entries dropped by size-bounded LRU eviction",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "core.store.evicted_bytes",
        help: "Approximate bytes reclaimed by size-bounded LRU eviction",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "serve.request.queue_wait_us",
        help: "Microseconds a serve request waited between arrival and worker pickup",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "serve.request.parse_us",
        help: "Microseconds spent parsing and validating a serve request line",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "serve.request.solve_us",
        help: "Microseconds spent inside the solver per serve request",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "serve.request.serialize_us",
        help: "Microseconds spent rendering a serve response line",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "serve.request.wall_us",
        help: "Microseconds from serve request arrival to rendered response",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "serve.requests.sat",
        help: "Serve requests answered sat",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "serve.requests.unsat",
        help: "Serve requests answered unsat",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "serve.requests.resource_exhausted",
        help: "Serve requests answered resource-exhausted (a budget breached)",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "serve.requests.parse_error",
        help: "Serve requests rejected as parse errors (malformed JSON, schema violation, or solver error)",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.inclusion.derivative.pairs",
        help: "Derivative pairs explored by the derivative inclusion engine",
        kind: MetricKind::Counter,
    },
    MetricDef {
        name: "automata.inclusion.derivative.memo_pairs",
        help: "Similarity-memo pairs retained per derivative inclusion query",
        kind: MetricKind::Histogram,
    },
    MetricDef {
        name: "automata.inclusion.derivative.similarity_prunes",
        help: "Derivative pairs dropped by similarity memoization",
        kind: MetricKind::Counter,
    },
];

/// Cache-line padded atomic, so counter shards don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Storage for one metric. Every slot carries all three shapes' fields —
/// a few hundred bytes of waste per metric keeps the indexing branch-free
/// and the table is small and fixed.
struct Slot {
    /// Counter shards; gauges use shard 0 as the current value.
    shards: [PaddedU64; COUNTER_SHARDS],
    /// Gauge peak (`fetch_max` on every set).
    peak: AtomicU64,
    /// Histogram bucket counts (`HISTOGRAM_BUCKETS` entries).
    buckets: Vec<AtomicU64>,
    /// Histogram sum of observed values.
    sum: AtomicU64,
    /// Histogram observation count.
    count: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            shards: Default::default(),
            peak: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn counter_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// The backing store of an enabled [`Metrics`] handle: one [`Slot`] per
/// [`METRIC_DEFS`] entry.
struct Registry {
    slots: Vec<Slot>,
}

static SHARD_SEQ: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Each thread is assigned a fixed counter shard round-robin on first
    /// use; `add` then touches only that shard's cache line.
    static SHARD: usize = SHARD_SEQ.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// Bucket index for a histogram observation: the value's bit length
/// (0 for 0), clamped to the last bucket.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of cumulative bucket `i` (`2^i - 1`), rendered
/// for the Prometheus `le` label. The last bucket is `+Inf`.
fn bucket_le(i: usize) -> String {
    if i + 1 == HISTOGRAM_BUCKETS {
        "+Inf".to_owned()
    } else {
        ((1u64 << i) - 1).to_string()
    }
}

/// Handle to the metrics registry; cheap to clone and thread everywhere.
///
/// Disabled handles (the default) record nothing: every method is an
/// inlined `None` check, mirroring the disabled tracer's cost profile.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Metrics {
    /// A no-op handle: all recording methods return immediately.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// A live handle backed by a fresh registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry {
                slots: METRIC_DEFS.iter().map(|_| Slot::new()).collect(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `id` (see [`id`]).
    #[inline]
    pub fn add(&self, id: usize, delta: u64) {
        let Some(reg) = &self.inner else { return };
        debug_assert_eq!(METRIC_DEFS[id].kind, MetricKind::Counter);
        let shard = SHARD.with(|s| *s);
        reg.slots[id].shards[shard]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge `id` to `value`, tracking the peak.
    #[inline]
    pub fn gauge_set(&self, id: usize, value: u64) {
        let Some(reg) = &self.inner else { return };
        debug_assert_eq!(METRIC_DEFS[id].kind, MetricKind::Gauge);
        let slot = &reg.slots[id];
        slot.shards[0].0.store(value, Ordering::Relaxed);
        slot.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation of `value` into histogram `id`.
    #[inline]
    pub fn observe(&self, id: usize, value: u64) {
        let Some(reg) = &self.inner else { return };
        debug_assert_eq!(METRIC_DEFS[id].kind, MetricKind::Histogram);
        let slot = &reg.slots[id];
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every metric, in [`METRIC_DEFS`] order.
    /// `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let reg = self.inner.as_ref()?;
        let entries = METRIC_DEFS
            .iter()
            .zip(&reg.slots)
            .map(|(def, slot)| MetricEntry {
                name: def.name.to_owned(),
                help: def.help.to_owned(),
                value: match def.kind {
                    MetricKind::Counter => MetricValue::Counter {
                        value: slot.counter_total(),
                    },
                    MetricKind::Gauge => MetricValue::Gauge {
                        value: slot.shards[0].0.load(Ordering::Relaxed),
                        peak: slot.peak.load(Ordering::Relaxed),
                    },
                    MetricKind::Histogram => MetricValue::Histogram {
                        count: slot.count.load(Ordering::Relaxed),
                        sum: slot.sum.load(Ordering::Relaxed),
                        buckets: slot
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                },
            })
            .collect();
        Some(MetricsSnapshot { entries })
    }
}

/// The recorded shape and values of one metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter {
        /// Summed shard values.
        value: u64,
    },
    /// Gauge value and peak.
    Gauge {
        /// Last set value.
        value: u64,
        /// Highest value ever set.
        peak: u64,
    },
    /// Histogram counts.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
        buckets: Vec<u64>,
    },
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// Dotted metric name.
    pub name: String,
    /// Description (Prometheus `# HELP`).
    pub help: String,
    /// Recorded values.
    pub value: MetricValue,
}

impl MetricEntry {
    /// The entry's headline cost number used for ranking: counter value,
    /// gauge peak, or histogram sum.
    pub fn headline(&self) -> u64 {
        match &self.value {
            MetricValue::Counter { value } => *value,
            MetricValue::Gauge { peak, .. } => *peak,
            MetricValue::Histogram { sum, .. } => *sum,
        }
    }
}

/// A point-in-time copy of the whole registry, renderable as a JSONL
/// snapshot (pinned by `docs/metrics.schema.json`) or Prometheus text
/// exposition.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Metrics in [`METRIC_DEFS`] order (or file order when parsed back).
    pub entries: Vec<MetricEntry>,
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the snapshot as JSONL: one `Meta` line (schema tag and the
    /// caller-supplied timestamp — pass 0 for byte-stable output) followed
    /// by one kind-discriminated line per metric. The format is pinned by
    /// `docs/metrics.schema.json`.
    pub fn to_jsonl(&self, ts_us: u64) -> String {
        let mut out = format!(
            "{{\"kind\":\"Meta\",\"schema\":\"dprle-metrics-v1\",\"ts_us\":{ts_us},\"entries\":{}}}\n",
            self.entries.len()
        );
        for e in &self.entries {
            let name = json_escape(&e.name);
            let help = json_escape(&e.help);
            match &e.value {
                MetricValue::Counter { value } => out.push_str(&format!(
                    "{{\"kind\":\"Counter\",\"name\":\"{name}\",\"help\":\"{help}\",\"value\":{value}}}\n"
                )),
                MetricValue::Gauge { value, peak } => out.push_str(&format!(
                    "{{\"kind\":\"Gauge\",\"name\":\"{name}\",\"help\":\"{help}\",\"value\":{value},\"peak\":{peak}}}\n"
                )),
                MetricValue::Histogram { count, sum, buckets } => {
                    let buckets: Vec<String> = buckets.iter().map(u64::to_string).collect();
                    out.push_str(&format!(
                        "{{\"kind\":\"Histogram\",\"name\":\"{name}\",\"help\":\"{help}\",\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}\n",
                        buckets.join(",")
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`dprle_` prefix, dots mapped to underscores, no timestamps so the
    /// output is byte-stable). Gauges additionally expose their peak as a
    /// `<name>_peak` gauge; histograms follow the cumulative
    /// `_bucket{le=...}` / `_sum` / `_count` convention.
    pub fn to_prometheus(&self) -> String {
        let prom_name = |name: &str| format!("dprle_{}", name.replace('.', "_"));
        let mut out = String::new();
        for e in &self.entries {
            let name = prom_name(&e.name);
            match &e.value {
                MetricValue::Counter { value } => {
                    out.push_str(&format!("# HELP {name} {}\n", e.help));
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    out.push_str(&format!("{name} {value}\n"));
                }
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("# HELP {name} {}\n", e.help));
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    out.push_str(&format!("{name} {value}\n"));
                    out.push_str(&format!("# HELP {name}_peak Peak of {name}\n"));
                    out.push_str(&format!("# TYPE {name}_peak gauge\n"));
                    out.push_str(&format!("{name}_peak {peak}\n"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!("# HELP {name} {}\n", e.help));
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cumulative += b;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            bucket_le(i)
                        ));
                    }
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.add(id::CONCAT_STATES, 5);
        m.gauge_set(id::WORKLIST_DEPTH, 3);
        m.observe(id::GCI_DISJUNCT_STATES, 7);
        assert!(m.snapshot().is_none());
    }

    #[test]
    fn counters_sum_across_threads_and_shards() {
        let m = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add(id::CONCAT_STATES, 1);
                    }
                });
            }
        });
        let snap = m.snapshot().expect("enabled");
        assert_eq!(snap.get("automata.concat.states").unwrap().headline(), 4000);
    }

    #[test]
    fn gauges_track_value_and_peak() {
        let m = Metrics::enabled();
        m.gauge_set(id::WORKLIST_DEPTH, 4);
        m.gauge_set(id::WORKLIST_DEPTH, 9);
        m.gauge_set(id::WORKLIST_DEPTH, 2);
        let snap = m.snapshot().unwrap();
        match &snap.get("core.worklist.depth").unwrap().value {
            MetricValue::Gauge { value, peak } => {
                assert_eq!(*value, 2);
                assert_eq!(*peak, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let m = Metrics::enabled();
        for v in [0, 1, 3, 4, 1024] {
            m.observe(id::INTERSECT_EXPLORED, v);
        }
        let snap = m.snapshot().unwrap();
        match &snap
            .get("automata.intersect.explored_states")
            .unwrap()
            .value
        {
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                assert_eq!(*count, 5);
                assert_eq!(*sum, 1032);
                assert_eq!(buckets[0], 1); // 0
                assert_eq!(buckets[1], 1); // 1
                assert_eq!(buckets[2], 1); // 3
                assert_eq!(buckets[3], 1); // 4
                assert_eq!(buckets[11], 1); // 1024
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn snapshot_covers_every_def_in_order() {
        let snap = Metrics::enabled().snapshot().unwrap();
        assert_eq!(snap.len(), METRIC_DEFS.len());
        for (e, def) in snap.entries.iter().zip(METRIC_DEFS) {
            assert_eq!(e.name, def.name);
        }
    }

    #[test]
    fn jsonl_rendering_is_line_per_metric_and_stable() {
        let m = Metrics::enabled();
        m.add(id::CONCAT_STATES, 12);
        let snap = m.snapshot().unwrap();
        let jsonl = snap.to_jsonl(0);
        assert_eq!(jsonl.lines().count(), METRIC_DEFS.len() + 1);
        assert!(jsonl.starts_with("{\"kind\":\"Meta\",\"schema\":\"dprle-metrics-v1\""));
        assert!(jsonl.contains("\"name\":\"automata.concat.states\",\"help\""));
        assert!(jsonl.contains("\"value\":12"));
        // Byte-stable across renderings of the same snapshot.
        assert_eq!(jsonl, snap.to_jsonl(0));
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_cumulative_buckets() {
        let m = Metrics::enabled();
        m.add(id::CONCAT_STATES, 3);
        m.observe(id::INTERSECT_EXPLORED, 2);
        m.observe(id::INTERSECT_EXPLORED, 5);
        m.gauge_set(id::WORKLIST_DEPTH, 7);
        let text = m.snapshot().unwrap().to_prometheus();
        assert!(text.contains("# TYPE dprle_automata_concat_states counter"));
        assert!(text.contains("dprle_automata_concat_states 3"));
        assert!(text.contains("# TYPE dprle_core_worklist_depth gauge"));
        assert!(text.contains("dprle_core_worklist_depth_peak 7"));
        assert!(text.contains("# TYPE dprle_automata_intersect_explored_states histogram"));
        assert!(text.contains("dprle_automata_intersect_explored_states_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dprle_automata_intersect_explored_states_sum 7"));
        assert!(text.contains("dprle_automata_intersect_explored_states_count 2"));
        // Buckets are cumulative: the le="7" bucket already includes both.
        assert!(text.contains("dprle_automata_intersect_explored_states_bucket{le=\"7\"} 2"));
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::enabled();
        let n = m.clone();
        n.add(id::UNION_STATES, 2);
        m.add(id::UNION_STATES, 3);
        assert_eq!(
            m.snapshot()
                .unwrap()
                .get("automata.union.states")
                .unwrap()
                .headline(),
            5
        );
    }
}
