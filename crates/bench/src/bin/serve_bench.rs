//! Load harness for the `dprle serve` multi-session solver service.
//!
//! Two modes over the same in-process [`SolverService`] the binary's
//! `serve` subcommand runs (in-process so the measurement excludes pipe
//! and socket overhead and isolates the shared-store contention the
//! tentpole is about):
//!
//! * `--smoke` — CI correctness under load: fires a concurrent mix of
//!   valid, malformed, unknown-field, unparsable, and budget-blown
//!   requests at the service from many threads, validates every response
//!   against `docs/serve.schema.json`, checks the typed outcome counts,
//!   and re-checks that a request's `solutions` under load are
//!   byte-identical to the same request solved solo. Exit 1 on any
//!   violation.
//! * default (bench) — throughput/latency table: solves/sec, p50/p99
//!   per-request service latency, and p50/p99 queue-wait (read back from
//!   each response's lifecycle `breakdown`; the whole corpus arrives as
//!   one burst into a shared queue, so queue-wait measures backlog
//!   drain) at 1, 4, and 16 concurrent clients over a deterministic
//!   request corpus; writes the fresh table to
//!   `target/serve-bench/BENCH_serve.json` and compares it against the
//!   checked-in `BENCH_serve.json` baseline **report-only** (serving
//!   throughput is too machine-dependent to gate CI on; the smoke mode
//!   is the pass/fail signal).
//!
//! Usage:
//!   cargo run -p dprle-bench --bin serve_bench --release -- \
//!     [--smoke] [--requests N] [--baseline PATH] [--store-max-bytes N]
//!
//! Exit codes: 0 ok, 1 smoke violation, 2 setup error.

use dprle_cli::serve::{ServeConfig, SolverService};
use dprle_core::{json_string, lookup, validate_jsonl, Json, Metrics};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Deterministic request corpus: a rotating mix of program shapes, each
/// parameterized by its index so the shared store sees fresh constants
/// (pure memo replay would flatter the numbers) while still getting
/// structural hits.
fn corpus_request(i: usize) -> String {
    match i % 4 {
        // The paper's motivating SQL-injection query, with a per-request
        // prefix literal.
        0 => format!(
            "{{\"id\":\"r{i}\",\"input\":{}}}",
            json_string(&format!(
                "var v1; c1 := match(/[\\d]+$/); c2 := \"nid{i}_\"; \
                 c3 := match(/'/); v1 <= c1; c2 . v1 <= c3;"
            ))
        ),
        // An unsat pair of disjoint literals.
        1 => format!(
            "{{\"id\":\"r{i}\",\"input\":{}}}",
            json_string(&format!(
                "var v; a := \"x{i}\"; b := \"y{i}\"; v <= a; v <= b;"
            ))
        ),
        // A two-variable concatenation against a character-class star.
        2 => format!(
            "{{\"id\":\"r{i}\",\"input\":{},\"witness\":true}}",
            json_string(&format!(
                "var v w; c := /[a-m]*q{}/; pre := \"ab\"; pre . v . w <= c;",
                i % 7
            ))
        ),
        // An SMT-LIB script.
        _ => format!(
            "{{\"id\":\"r{i}\",\"language\":\"smtlib\",\"input\":{}}}",
            json_string(&format!(
                "(declare-fun x () String)\n\
                 (assert (str.in_re x (re.++ (str.to_re \"k{}\") (re.* (re.range \"a\" \"f\")))))\n\
                 (check-sat)",
                i % 5
            ))
        ),
    }
}

fn new_service(store_max_bytes: Option<u64>) -> Arc<SolverService> {
    Arc::new(SolverService::new(
        ServeConfig {
            store_max_bytes,
            ..ServeConfig::default()
        },
        Metrics::disabled(),
    ))
}

/// Runs `requests` through the service from `clients` drain threads and
/// returns every (request-index, response, service latency in
/// microseconds).
///
/// The whole batch arrives as one burst: a shared arrival-stamped queue
/// feeds the drain threads — the same single-queue/worker topology
/// `serve` runs — so each response's `breakdown` reports a real
/// queue-wait (time from burst arrival to a worker picking the line up).
/// The returned latency is service time only (queue-wait excluded); the
/// bench reads queue-wait back out of the response breakdowns.
fn fire(
    service: &Arc<SolverService>,
    requests: &[String],
    clients: usize,
) -> Vec<(usize, String, u64)> {
    let arrived = Instant::now();
    let queue: Arc<Mutex<VecDeque<(usize, String)>>> =
        Arc::new(Mutex::new(requests.iter().cloned().enumerate().collect()));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let service = Arc::clone(service);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                loop {
                    let Some((i, request)) = queue.lock().expect("queue").pop_front() else {
                        break;
                    };
                    let started = Instant::now();
                    let response = service.handle_request(&request, arrived);
                    let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    out.push((i, response, us));
                }
                out
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread"));
    }
    all.sort_by_key(|(i, _, _)| *i);
    all
}

/// The `queue-wait-us` each response reports in its lifecycle breakdown.
fn queue_wait_us(response: &str) -> Option<u64> {
    let json = Json::parse(response).ok()?;
    let breakdown = lookup(json.as_object()?, "breakdown")?.as_object()?;
    lookup(breakdown, "queue-wait-us").and_then(Json::as_u64)
}

fn percentile(sorted_us: &[u64], pct: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 * pct / 100.0).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_us.len() - 1);
    sorted_us[idx]
}

fn kind_of(response: &str) -> String {
    Json::parse(response)
        .ok()
        .and_then(|json| {
            json.as_object().and_then(|obj| {
                lookup(obj, "kind")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            })
        })
        .unwrap_or_else(|| "<invalid>".to_owned())
}

fn field_raw(response: &str, key: &str) -> Option<String> {
    // Byte-exact extraction of a top-level field's rendered value: find
    // the pinned `"key":` prefix and take everything up to the next
    // top-level field. Good enough because the service pins field order.
    let needle = format!("\"{key}\":");
    let start = response.find(&needle)? + needle.len();
    let rest = &response[start..];
    let end = rest.find(",\"stats\":").unwrap_or(rest.len());
    Some(rest[..end].to_owned())
}

fn smoke(store_max_bytes: Option<u64>) -> i32 {
    let service = new_service(store_max_bytes);
    let sat = corpus_request(0);
    // The mixed batch: 40 corpus requests plus deliberate garbage.
    let mut requests: Vec<String> = (0..40).map(corpus_request).collect();
    requests.push("{\"id\":\"m1\",\"input\":".to_owned()); // truncated JSON
    requests.push("[1,2,3]".to_owned()); // not an object
    requests.push("{\"id\":\"m2\",\"input\":\"var v;\",\"bogus\":true}".to_owned());
    requests.push("{\"id\":\"m3\",\"input\":\"nope nope;\"}".to_owned()); // bad program
    requests.push("{\"id\":\"m4\",\"input\":\"x\",\"language\":\"cobol\"}".to_owned());
    requests.push(format!(
        "{{\"id\":\"m5\",\"input\":{},\"max_product_states\":1}}",
        json_string("var v1; c1 := match(/[\\d]+$/); c2 := \"nid_\"; c3 := match(/'/); v1 <= c1; c2 . v1 <= c3;")
    ));
    let responses = fire(&service, &requests, 8);

    // 1. Every response validates against the pinned wire schema.
    let schema_path = format!(
        "{}/../../docs/serve.schema.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let schema = match std::fs::read_to_string(&schema_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: cannot read {schema_path}: {e}");
            return 2;
        }
    };
    let jsonl: String = responses.iter().map(|(_, r, _)| format!("{r}\n")).collect();
    match validate_jsonl(&schema, &jsonl) {
        Ok(n) => println!("smoke: {n} responses validate against serve.schema.json"),
        Err(e) => {
            eprintln!("serve_bench: response schema violation: {e}");
            return 1;
        }
    }

    // 2. Typed outcomes land where they should.
    let count = |kind: &str| {
        responses
            .iter()
            .filter(|(_, r, _)| kind_of(r) == kind)
            .count()
    };
    let (sat_n, unsat_n, exhausted_n, error_n) = (
        count("sat"),
        count("unsat"),
        count("resource-exhausted"),
        count("parse-error"),
    );
    println!(
        "smoke: outcomes sat={sat_n} unsat={unsat_n} resource-exhausted={exhausted_n} \
         parse-error={error_n}"
    );
    // 40 corpus requests: indices ≡ 1 (mod 4) are the 10 unsat ones.
    // The 6 garbage requests: 5 parse-errors + 1 budget blow.
    let expect = [
        (sat_n, 30, "sat"),
        (unsat_n, 10, "unsat"),
        (exhausted_n, 1, "resource-exhausted"),
        (error_n, 5, "parse-error"),
    ];
    for (got, want, kind) in expect {
        if got != want {
            eprintln!("serve_bench: expected {want} {kind} responses, got {got}");
            return 1;
        }
    }

    // 3. Solutions under concurrent load are byte-identical to solo.
    let solo = new_service(store_max_bytes).handle_line(&sat);
    let loaded = &responses
        .iter()
        .find(|(i, _, _)| *i == 0)
        .expect("request 0 answered")
        .1;
    let (solo_sol, loaded_sol) = (
        field_raw(&solo, "solutions"),
        field_raw(loaded, "solutions"),
    );
    if solo_sol.is_none() || solo_sol != loaded_sol {
        eprintln!(
            "serve_bench: solutions diverged under load\n solo: {solo_sol:?}\n load: {loaded_sol:?}"
        );
        return 1;
    }
    println!("smoke: solutions under load are byte-identical to solo");
    println!("smoke: ok");
    0
}

fn bench(requests_per_trial: usize, baseline_path: &str, store_max_bytes: Option<u64>) -> i32 {
    let requests: Vec<String> = (0..requests_per_trial).map(corpus_request).collect();
    let mut rows = String::from("[\n");
    let mut summaries = Vec::new();
    for (t, clients) in [1usize, 4, 16].into_iter().enumerate() {
        // A fresh service per trial: every client count starts from a
        // cold store, so trials are comparable.
        let service = new_service(store_max_bytes);
        let started = Instant::now();
        let responses = fire(&service, &requests, clients);
        let seconds = started.elapsed().as_secs_f64();
        let mut lat: Vec<u64> = responses.iter().map(|(_, _, us)| *us).collect();
        lat.sort_unstable();
        let (p50, p99) = (percentile(&lat, 50.0), percentile(&lat, 99.0));
        let mut queue: Vec<u64> = responses
            .iter()
            .filter_map(|(_, r, _)| queue_wait_us(r))
            .collect();
        if queue.len() != responses.len() {
            eprintln!(
                "serve_bench: {} responses carry no queue-wait breakdown",
                responses.len() - queue.len()
            );
            return 2;
        }
        queue.sort_unstable();
        let (qw50, qw99) = (percentile(&queue, 50.0), percentile(&queue, 99.0));
        let solves_per_sec = requests.len() as f64 / seconds.max(f64::EPSILON);
        let errors = responses
            .iter()
            .filter(|(_, r, _)| kind_of(r) == "parse-error")
            .count();
        if errors > 0 {
            eprintln!("serve_bench: {errors} unexpected parse-errors in the bench corpus");
            return 2;
        }
        if t > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "  {{\n    \"clients\": {clients},\n    \"requests\": {},\n    \
             \"seconds\": {seconds:.6},\n    \"solves_per_sec\": {solves_per_sec:.1},\n    \
             \"p50_us\": {p50},\n    \"p99_us\": {p99},\n    \
             \"queue_wait_p50_us\": {qw50},\n    \"queue_wait_p99_us\": {qw99}\n  }}",
            requests.len()
        ));
        summaries.push((clients, solves_per_sec, p50, p99));
        println!(
            "clients {clients:>2}: {solves_per_sec:>9.1} solves/s  p50 {p50:>6} us  \
             p99 {p99:>6} us  queue-wait p50 {qw50:>8} us  p99 {qw99:>8} us"
        );
    }
    rows.push_str("\n]\n");

    let out_dir = "target/serve-bench";
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: could not create {out_dir}: {e}");
    }
    let out_path = format!("{out_dir}/BENCH_serve.json");
    match std::fs::write(&out_path, &rows) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }

    // Report-only baseline comparison (same spirit as the ledger diff in
    // the bench-smoke job: serving throughput on a shared runner is too
    // noisy to gate on).
    match std::fs::read_to_string(baseline_path) {
        Ok(text) => match Json::parse(&text) {
            Ok(json) => {
                println!("\nvs baseline {baseline_path} (report-only):");
                for row in json.as_array().unwrap_or(&[]) {
                    let Some(obj) = row.as_object() else { continue };
                    let get = |k: &str| lookup(obj, k).and_then(Json::as_u64);
                    let Some(clients) = get("clients") else {
                        continue;
                    };
                    let Some((_, fresh_sps, fresh_p50, _)) = summaries
                        .iter()
                        .find(|(c, ..)| *c as u64 == clients)
                        .copied()
                    else {
                        continue;
                    };
                    let base_sps = lookup(obj, "solves_per_sec")
                        .and_then(|v| match v {
                            Json::Num(n) => Some(*n),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    println!(
                        "  clients {clients:>2}: {fresh_sps:>9.1} vs {base_sps:>9.1} solves/s \
                         ({:+.1}%), p50 {fresh_p50} vs {} us",
                        (fresh_sps / base_sps.max(f64::EPSILON) - 1.0) * 100.0,
                        get("p50_us").unwrap_or(0),
                    );
                }
            }
            Err(e) => eprintln!("serve_bench: baseline {baseline_path} unparsable: {e}"),
        },
        Err(e) => eprintln!("serve_bench: no baseline at {baseline_path}: {e}"),
    }
    0
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store_max_bytes = flag_value(&args, "--store-max-bytes").map(|s| {
        s.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("--store-max-bytes needs a nonnegative integer, got `{s}`");
            std::process::exit(2);
        })
    });
    let code = if args.iter().any(|a| a == "--smoke") {
        smoke(store_max_bytes)
    } else {
        let requests = flag_value(&args, "--requests")
            .map(|s| {
                s.parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 16)
                    .unwrap_or_else(|| {
                        eprintln!("--requests needs an integer >= 16, got `{s}`");
                        std::process::exit(2);
                    })
            })
            .unwrap_or(240);
        let baseline = flag_value(&args, "--baseline")
            .unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
        bench(requests, &baseline, store_max_bytes)
    };
    std::process::exit(code);
}
