//! CI performance smoke test over the motivating (non-heavy) Figure 12
//! corpus.
//!
//! Re-measures every fast row, compares the **median** untraced solve
//! time against the same rows in the checked-in `BENCH_fig12.json`
//! baseline, and fails if the median regressed by more than the
//! tolerance (default 25%). The median — not the mean or any single
//! row — keeps one noisy row on a shared CI runner from flagging a
//! phantom regression; a real slowdown in the solver moves every row.
//!
//! The fresh measurement is written to `target/bench-smoke/` so CI can
//! upload it as an artifact next to the baseline it was judged against.
//!
//! Usage:
//!   cargo run -p dprle-bench --bin bench_smoke --release \
//!     [--tolerance PCT] [--baseline PATH]
//!
//! Exit codes: 0 ok, 1 median regression, 2 unusable baseline.

use dprle_bench::{fig12_ledger_jsonl, fig12_rows_json, parse_fig12_baseline, run_fig12};
use dprle_core::SolveOptions;

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance_pct: f64 = flag_value(&args, "--tolerance")
        .map(|s| {
            s.parse().ok().filter(|p| *p >= 0.0).unwrap_or_else(|| {
                eprintln!("--tolerance needs a non-negative percentage, got `{s}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(25.0);
    let baseline_path = flag_value(&args, "--baseline")
        .unwrap_or_else(|| format!("{}/../../BENCH_fig12.json", env!("CARGO_MANIFEST_DIR")));

    let baseline_json = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_smoke: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = parse_fig12_baseline(&baseline_json);
    if baseline.is_empty() {
        eprintln!("bench_smoke: baseline {baseline_path} has no (name, seconds) rows");
        std::process::exit(2);
    }

    let rows = run_fig12(&SolveOptions::default(), false);

    let out_dir = "target/bench-smoke";
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: could not create {out_dir}: {e}");
    }
    let out_path = format!("{out_dir}/BENCH_fig12.json");
    match std::fs::write(&out_path, fig12_rows_json(&rows)) {
        Ok(()) => eprintln!("wrote {out_path} ({} rows)", rows.len()),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
    // The per-query cost ledger rides along as a second artifact; CI diffs
    // it against the checked-in BENCH_fig12_ledger.jsonl with
    // `dprle profile diff` (report-only — per-query wall time is too
    // machine-dependent to gate on here; the median gate below is the
    // pass/fail signal).
    let ledger_path = format!("{out_dir}/BENCH_fig12_ledger.jsonl");
    match std::fs::write(&ledger_path, fig12_ledger_jsonl(&rows)) {
        Ok(()) => eprintln!(
            "wrote {ledger_path} ({} queries)",
            rows.iter().map(|r| r.queries).sum::<u64>()
        ),
        Err(e) => eprintln!("warning: could not write {ledger_path}: {e}"),
    }

    // Judge only rows present in both runs: the checked-in baseline also
    // carries the heavy `secure` row this smoke pass skips.
    let mut fresh = Vec::new();
    let mut base = Vec::new();
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "row", "baseline (s)", "fresh (s)", "ratio"
    );
    for r in &rows {
        let Some((_, b)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            println!("{:<12} {:>12} {:>12.6} {:>8}", r.name, "-", r.seconds, "-");
            continue;
        };
        println!(
            "{:<12} {:>12.6} {:>12.6} {:>7.2}x",
            r.name,
            b,
            r.seconds,
            r.seconds / b.max(f64::EPSILON)
        );
        fresh.push(r.seconds);
        base.push(*b);
    }
    if fresh.is_empty() {
        eprintln!("bench_smoke: no overlap between fresh rows and baseline {baseline_path}");
        std::process::exit(2);
    }

    let fresh_median = median(fresh);
    let base_median = median(base);
    let limit = base_median * (1.0 + tolerance_pct / 100.0);
    println!(
        "\nmedian solve time: baseline {base_median:.6}s, fresh {fresh_median:.6}s, \
         limit {limit:.6}s (+{tolerance_pct}%)"
    );
    if fresh_median > limit {
        eprintln!(
            "bench_smoke: median regressed {:.1}% (> {tolerance_pct}% tolerance)",
            (fresh_median / base_median - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!("within tolerance");
}
