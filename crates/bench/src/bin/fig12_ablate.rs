//! Figure 12 under ablated solver configurations: quantifies, per
//! evaluation row, what each design choice buys.
//!
//! ```text
//! fig12_ablate [--include-heavy]
//! ```
//!
//! Columns: default options; no intermediate minimization (the paper
//! prototype's behavior — expect the heavy row to blow up, which is why it
//! is excluded unless `--include-heavy` is passed); quotient
//! constant-stripping (the extension mode).

use dprle_bench::run_fig12_row;
use dprle_core::SolveOptions;
use dprle_corpus::FIG12_ROWS;

fn main() {
    let include_heavy = std::env::args().any(|a| a == "--include-heavy");
    println!("Figure 12 rows under ablated solver configurations (seconds)");
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>12}",
        "Vuln", "|C|", "default", "no-minimize", "quotient"
    );
    // Without intermediate minimization, constraint chains grow
    // multiplicatively: rows beyond this |C| threshold take minutes-to-
    // unbounded time in prototype mode (that blow-up IS the ablation
    // result; see EXPERIMENTS.md). Skip them so the table terminates.
    const NO_MINIMIZE_C_LIMIT: usize = 70;
    for spec in FIG12_ROWS.iter().filter(|s| include_heavy || !s.heavy) {
        let default = run_fig12_row(spec, &SolveOptions::default());
        let no_minimize = if spec.c <= NO_MINIMIZE_C_LIMIT && !spec.heavy {
            let row = run_fig12_row(
                spec,
                &SolveOptions {
                    minimize_intermediate: false,
                    ..Default::default()
                },
            );
            assert!(row.exploitable);
            format!("{:>14.3}", row.seconds)
        } else {
            format!("{:>14}", "(diverges)")
        };
        let quotient = run_fig12_row(
            spec,
            &SolveOptions {
                strip_constant_operands: true,
                ..Default::default()
            },
        );
        assert!(default.exploitable && quotient.exploitable);
        println!(
            "{:<10} {:>6} {:>12.3} {} {:>12.3}",
            spec.name, spec.c, default.seconds, no_minimize, quotient.seconds
        );
    }
    println!("\nAll configurations found every exploit; `(diverges)` rows exceed");
    println!("practical time without intermediate minimization (the paper's");
    println!("`secure` mechanism at smaller scale).");
}
