//! Regenerates the paper's Figure 12: per-vulnerability solving results.
//!
//! Prints, for each of the 17 vulnerabilities: measured `|FG|`, measured
//! `|C|`, and measured constraint-solving time `T_S`, next to the published
//! values, then verifies the published *shape*: every row yields an
//! exploit; 16 of 17 solve quickly; the `secure` row is the outlier by at
//! least an order of magnitude (the paper's 577 s vs sub-second; absolute
//! times differ — 2009 testbed vs this machine, and see the ablation bench
//! for the no-minimization mode that magnifies the outlier further).
//!
//! Usage: `cargo run -p dprle-bench --bin fig12 --release [--skip-heavy]
//! [--json] [--jobs N] [--inclusion eager|antichain|derivative|auto]
//! [--ledger-out FILE]`
//!
//! `--jobs N` adds a third, untraced solving pass per row with `N`
//! worklist workers (the branch-parallel solver, whose output is
//! byte-identical to sequential) and reports the per-row speedup.
//! `--inclusion` selects the engine for every pass, and `--ledger-out`
//! writes the ledgered pass's per-query cost records as JSONL — feed two
//! of those (one per engine) to `dprle profile diff` for a per-query
//! engine comparison.
//!
//! Always writes the machine-readable results (per-row `|FG|`, `|C|`, solve
//! time, parallel jobs/speedup, and interning cache counters) to
//! `BENCH_fig12.json` in the current directory; `--json` additionally
//! prints that JSON to stdout instead of the human-readable table.

use dprle_bench::{fig12_ledger_jsonl, fig12_rows_json, fig12_shape_violations, run_fig12_jobs};
use dprle_core::{EngineKind, SolveOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let include_heavy = !args.iter().any(|a| a == "--skip-heavy");
    let as_json = args.iter().any(|a| a == "--json");
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) => args
            .get(i + 1)
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }),
        None => 1,
    };
    let inclusion = match args.iter().position(|a| a == "--inclusion") {
        Some(i) => args
            .get(i + 1)
            .and_then(|n| EngineKind::parse(n))
            .unwrap_or_else(|| {
                eprintln!("--inclusion needs eager, antichain, derivative, or auto");
                std::process::exit(2);
            }),
        None => EngineKind::default(),
    };
    let ledger_out = args.iter().position(|a| a == "--ledger-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--ledger-out needs a file");
            std::process::exit(2);
        })
    });

    let options = SolveOptions {
        inclusion_engine: inclusion,
        ..SolveOptions::default()
    };
    let rows = run_fig12_jobs(&options, include_heavy, jobs);

    if let Some(path) = &ledger_out {
        match std::fs::write(path, fig12_ledger_jsonl(&rows)) {
            Ok(()) => eprintln!(
                "wrote {path} ({} queries)",
                rows.iter().map(|r| r.queries).sum::<u64>()
            ),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    let json = fig12_rows_json(&rows);
    match std::fs::write("BENCH_fig12.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_fig12.json ({} rows)", rows.len()),
        Err(e) => eprintln!("warning: could not write BENCH_fig12.json: {e}"),
    }

    if as_json {
        println!("{json}");
        return;
    }

    println!("Figure 12: experimental results (measured vs published)");
    if jobs > 1 {
        println!(
            "{:<8} {:<10} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10} {:>5} {:>10} {:>8}",
            "App",
            "Vuln",
            "|FG|",
            "(pub)",
            "|C|",
            "(pub)",
            "T_S (s)",
            "(pub s)",
            "jobs",
            "par (s)",
            "speedup"
        );
    } else {
        println!(
            "{:<8} {:<10} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10} {:>9} {:>9}",
            "App",
            "Vuln",
            "|FG|",
            "(pub)",
            "|C|",
            "(pub)",
            "T_S (s)",
            "(pub s)",
            "products",
            "peak KiB"
        );
    }
    for r in &rows {
        if jobs > 1 {
            println!(
                "{:<8} {:<10} {:>6} {:>6} {:>6} {:>6} {:>10.3} {:>10.3} {:>5} {:>10.3} {:>7.2}x",
                r.app,
                r.name,
                r.fg,
                r.fg_paper,
                r.c,
                r.c_paper,
                r.seconds,
                r.paper_seconds,
                r.jobs,
                r.par_seconds,
                r.speedup
            );
        } else {
            println!(
                "{:<8} {:<10} {:>6} {:>6} {:>6} {:>6} {:>10.3} {:>10.3} {:>9} {:>9}",
                r.app,
                r.name,
                r.fg,
                r.fg_paper,
                r.c,
                r.c_paper,
                r.seconds,
                r.paper_seconds,
                r.product_states,
                r.peak_bytes / 1024
            );
        }
    }
    if jobs > 1 {
        let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        speedups.sort_by(|a, b| a.total_cmp(b));
        let median = speedups[speedups.len() / 2];
        println!("\nMedian speedup at --jobs {jobs}: {median:.2}x (hardware dependent)");
    }

    // Inclusion-engine comparison: the same workload once per engine.
    println!("\nInclusion engines (eager vs antichain vs derivative, untraced passes):");
    println!(
        "{:<8} {:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "App", "Vuln", "eager (s)", "macro", "antich (s)", "macro", "deriv (s)", "pairs"
    );
    for r in &rows {
        println!(
            "{:<8} {:<10} {:>12.3} {:>12} {:>12.3} {:>12} {:>12.3} {:>12}",
            r.app,
            r.name,
            r.eager_seconds,
            r.eager_macrostates,
            r.antichain_seconds,
            r.antichain_macrostates,
            r.derivative_seconds,
            r.derivative_macrostates
        );
    }

    // Per-phase wall time aggregated over all rows' traced passes
    // (cumulative: nested spans count toward their ancestors).
    let mut phase_totals: std::collections::BTreeMap<String, u64> = Default::default();
    for r in &rows {
        for p in &r.phases {
            *phase_totals.entry(p.phase.clone()).or_default() += p.total_us;
        }
    }
    let mut phase_rows: Vec<(String, u64)> = phase_totals.into_iter().collect();
    phase_rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    println!("\nPer-phase wall time across all rows (traced pass, cumulative):");
    for (phase, us) in &phase_rows {
        println!("  {:<12} {:>10.3} s", phase, *us as f64 / 1e6);
    }

    let violations = fig12_shape_violations(&rows);
    if violations.is_empty() {
        let fast = rows.iter().filter(|r| r.seconds < 1.0).count();
        println!(
            "\nShape reproduced: {}/{} rows exploitable, {} under one second{}",
            rows.iter().filter(|r| r.exploitable).count(),
            rows.len(),
            fast,
            if include_heavy {
                ", `secure` is the outlier"
            } else {
                ""
            }
        );
    } else {
        println!("\nSHAPE VIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
