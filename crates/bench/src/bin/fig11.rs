//! Regenerates the paper's Figure 11: the evaluation data set.
//!
//! For each synthesized application this prints file count, the LOC analog
//! (total IR statements), and the number of files for which the analysis
//! generates exploit inputs — next to the published numbers.
//!
//! Run with: `cargo run -p dprle-bench --bin fig11 --release`

use dprle_core::SolveOptions;
use dprle_corpus::generate_corpus;
use dprle_lang::symex::SymexOptions;
use dprle_lang::{analyze, Policy};

fn main() {
    println!("Figure 11: programs in the data set (measured vs published)");
    println!(
        "{:<8} {:<8} {:>6} {:>6} {:>10} {:>10} {:>11} {:>11}",
        "Name", "Version", "Files", "(pub)", "LOC~", "(pub)", "Vulnerable", "(pub)"
    );
    let policy = Policy::sql_quote();
    let symex = SymexOptions::default();
    let solve = SolveOptions::default();
    for app in generate_corpus() {
        let mut vulnerable = 0usize;
        for file in &app.files {
            let report = analyze(file, &policy, &symex, &solve)
                .unwrap_or_else(|e| panic!("{}: {e}", file.name));
            if !report.findings.is_empty() {
                vulnerable += 1;
            }
        }
        println!(
            "{:<8} {:<8} {:>6} {:>6} {:>10} {:>10} {:>11} {:>11}",
            app.spec.name,
            app.spec.version,
            app.files.len(),
            app.spec.files,
            app.total_statements(),
            app.spec.loc,
            vulnerable,
            app.spec.vulnerable
        );
        assert_eq!(app.files.len(), app.spec.files, "file count mismatch");
        assert_eq!(vulnerable, app.spec.vulnerable, "vulnerable count mismatch");
    }
    println!("\nAll measured columns match the published table shape.");
}
