//! Differential-inclusion harness: proves the eager, antichain, and
//! derivative inclusion engines — and the cost-predicted `auto` selector
//! that routes among them — are observationally equivalent across the
//! whole corpus.
//!
//! Every corpus entry — the `testdata/` constraint files, the SMT-LIB
//! script, the PHP audit sources, and generated multi-group / random
//! systems — is solved once per engine kind; the antichain (default)
//! run is the reference, and every other run must agree with it on four
//! facets:
//!
//! 1. **Solutions**: per-variable canonical fingerprints of every
//!    assignment (or the script's sat/unsat verdicts), in order.
//! 2. **Unsat cores**: for unsatisfiable native systems, the minimal core
//!    indices shrunk under each engine.
//! 3. **Stats**: every [`SolveStats`] counter and trace-event string,
//!    `inclusion-macrostates` excepted — that counter measures the
//!    engine's own work and is *supposed* to differ.
//! 4. **Trace journal**: the JSONL event stream with `ts_us` zeroed —
//!    the engines answer the same queries, so memo traffic, group
//!    disjuncts, and worklist decisions replay identically.
//!
//! Metrics snapshots are compared too, modulo the `automata.inclusion.*`
//! entries — those count the engine's own macrostates and prunes, the
//! one family that is *supposed* to differ. Everything else (memo
//! traffic, product construction, worklist depth) must be byte-equal.
//!
//! Each run rebuilds its system from scratch (re-parse, re-explore,
//! re-generate) so `Lang` fingerprint caches warmed by one engine cannot
//! serve the other. Zeroed-timestamp journals are written to
//! `target/differential-inclusion/` for offline diffing.
//!
//! Usage: `cargo run -p dprle-bench --bin differential_inclusion --release
//! [-- --jobs N]`
//!
//! `--jobs N` runs every solve with `N` worklist workers — the engine
//! matrix must hold at every thread count, since the parallel solver's
//! outputs are byte-identical to sequential.
//!
//! Exits 1 if any entry diverges on any facet.

use dprle_automata::LangStore;
use dprle_cli::parse_file;
use dprle_cli::smtlib::run_script_with_stats;
use dprle_core::{
    solve_traced, unsat_core, CollectSink, EngineKind, Metrics, Solution, SolveOptions, SolveStats,
    System, Tracer,
};
use dprle_corpus::scaling::{multi_group_system, random_system, RandomSystemConfig};
use dprle_lang::symex::{SinkKind, SymexOptions};
use dprle_lang::{build_system, explore, parse_php, Policy};
use std::sync::Arc;

/// Everything one solve run produces that must match across engines.
struct RunResult {
    /// One line per assignment: `var=<canonical key>` pairs in `var_ids`
    /// order, or the single line `UNSAT`, or the script's own outputs.
    solutions: Vec<String>,
    /// `Some(indices)` when the system was unsat and a core was shrunk.
    core: Option<Vec<usize>>,
    stats: SolveStats,
    /// JSONL journal lines with `ts_us` zeroed.
    journal: Vec<String>,
    /// Metrics-snapshot JSONL lines with the timestamp zeroed and
    /// engine-cost families filtered out.
    metrics: Vec<String>,
}

fn traced_options(engine: EngineKind, jobs: usize) -> SolveOptions {
    SolveOptions {
        inclusion_engine: engine,
        trace: true,
        metrics: Metrics::enabled(),
        jobs,
        ..SolveOptions::default()
    }
}

/// The one metric family measuring the engine's own internal work —
/// the only lines legitimately allowed to differ between engines.
const ENGINE_COST_PREFIX: &str = "\"name\":\"automata.inclusion.";

fn comparable_metrics(metrics: &Metrics) -> Vec<String> {
    metrics
        .snapshot()
        .expect("registry installed by traced_options")
        .to_jsonl(0)
        .lines()
        .filter(|line| !line.contains(ENGINE_COST_PREFIX))
        .map(str::to_owned)
        .collect()
}

/// The engine's own work counter is the one counter allowed to differ.
fn comparable_stats(stats: &SolveStats) -> SolveStats {
    let mut s = stats.clone();
    s.inclusion_macrostates = 0;
    s
}

fn solution_lines(system: &System, solution: &Solution) -> Vec<String> {
    match solution {
        Solution::Unsat => vec!["UNSAT".to_owned()],
        Solution::Assignments(list) => list
            .iter()
            .map(|a| {
                system
                    .var_ids()
                    .map(|v| {
                        let key = a
                            .get(v)
                            .map(|l| format!("{:?}", l.fingerprint()))
                            .unwrap_or_else(|| "<unassigned>".to_owned());
                        format!("{}={key}", system.var_name(v))
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect(),
    }
}

fn zeroed_journal(sink: &CollectSink) -> Vec<String> {
    sink.take()
        .into_iter()
        .map(|mut e| {
            e.ts_us = 0;
            e.to_json()
        })
        .collect()
}

/// Solves one freshly built system with a fresh store and tracer; on
/// unsat, additionally shrinks the core under the same engine.
fn run_system(system: &System, engine: EngineKind, jobs: usize) -> RunResult {
    let options = traced_options(engine, jobs);
    let sink = Arc::new(CollectSink::new());
    let tracer = Tracer::new(sink.clone());
    let store = LangStore::interning(options.interning);
    let (solution, stats) = solve_traced(system, &options, &store, &tracer);
    let core = match solution {
        Solution::Unsat => unsat_core(system, &options).map(|c| c.indices),
        Solution::Assignments(_) => None,
    };
    RunResult {
        solutions: solution_lines(system, &solution),
        core,
        stats,
        journal: zeroed_journal(&sink),
        metrics: comparable_metrics(&options.metrics),
    }
}

/// One named corpus entry: `build(engine)` must rebuild everything from
/// scratch and return the run's comparable facets.
struct Entry {
    name: String,
    build: Box<dyn Fn(EngineKind, usize) -> RunResult>,
}

fn testdata(file: &str) -> String {
    let path = format!("{}/../../testdata/{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn dprle_entry(file: &'static str) -> Entry {
    Entry {
        name: format!("testdata/{file}"),
        build: Box::new(move |engine, jobs| {
            let parsed = parse_file(&testdata(file)).expect("testdata parses");
            run_system(&parsed.system, engine, jobs)
        }),
    }
}

fn smt2_entry(file: &'static str) -> Entry {
    Entry {
        name: format!("testdata/{file}"),
        build: Box::new(move |engine, jobs| {
            let options = traced_options(engine, jobs);
            let sink = Arc::new(CollectSink::new());
            let tracer = Tracer::new(sink.clone());
            let run = run_script_with_stats(&testdata(file), &options, &tracer)
                .expect("testdata script runs");
            RunResult {
                solutions: run.outputs.iter().map(|o| o.to_string()).collect(),
                core: None,
                stats: run.stats,
                journal: zeroed_journal(&sink),
                metrics: comparable_metrics(&options.metrics),
            }
        }),
    }
}

/// One entry per security-sensitive sink of a PHP source.
fn php_entries(file: &'static str, policy: fn() -> Policy, kind: Option<SinkKind>) -> Vec<Entry> {
    let symex = SymexOptions {
        track_echo: kind == Some(SinkKind::Echo),
        ..SymexOptions::default()
    };
    let source = testdata(file);
    let program = parse_php(file, &source).expect("testdata PHP parses");
    let reaches = explore(&program, &symex).expect("explores");
    let sinks = reaches
        .iter()
        .filter(|r| kind.is_none_or(|k| r.kind == k))
        .count();
    (0..sinks)
        .map(|i| Entry {
            name: format!("testdata/{file}#sink{i}"),
            build: Box::new(move |engine, jobs| {
                let symex = SymexOptions {
                    track_echo: kind == Some(SinkKind::Echo),
                    ..SymexOptions::default()
                };
                let program = parse_php(file, &testdata(file)).expect("testdata PHP parses");
                let reaches = explore(&program, &symex).expect("explores");
                let reach = reaches
                    .iter()
                    .filter(|r| kind.is_none_or(|k| r.kind == k))
                    .nth(i)
                    .expect("sink index stable across re-exploration");
                let generated = build_system(reach, &policy()).expect("builds");
                run_system(&generated.system, engine, jobs)
            }),
        })
        .collect()
}

fn generated_entry(name: &str, make: impl Fn() -> System + 'static) -> Entry {
    Entry {
        name: name.to_owned(),
        build: Box::new(move |engine, jobs| run_system(&make(), engine, jobs)),
    }
}

fn corpus() -> Vec<Entry> {
    let mut entries = vec![
        dprle_entry("motivating.dprle"),
        dprle_entry("unsat.dprle"),
        smt2_entry("motivating.smt2"),
    ];
    entries.extend(php_entries("figure1.php", Policy::sql_quote, None));
    entries.extend(php_entries(
        "xss.php",
        Policy::xss_script_tag,
        Some(SinkKind::Echo),
    ));
    entries.push(generated_entry("corpus/multi_group_3x2", || {
        multi_group_system(3, 2)
    }));
    entries.push(generated_entry("corpus/multi_group_2x3", || {
        multi_group_system(2, 3)
    }));
    for seed in 0..5u64 {
        entries.push(generated_entry(&format!("corpus/random_seed{seed}"), {
            move || random_system(seed, &RandomSystemConfig::default())
        }));
    }
    entries
}

fn write_lines(dir: &str, entry: &str, suffix: &str, lines: &[String]) {
    let safe: String = entry
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = format!("{dir}/{safe}.{suffix}.jsonl");
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Reports the first differing line between two journals.
fn first_journal_diff(a: &[String], b: &[String]) -> Option<(usize, String, String)> {
    for i in 0..a.len().max(b.len()) {
        let (la, lb) = (a.get(i), b.get(i));
        if la != lb {
            return Some((
                i,
                la.cloned().unwrap_or_else(|| "<missing>".to_owned()),
                lb.cloned().unwrap_or_else(|| "<missing>".to_owned()),
            ));
        }
    }
    None
}

/// Compares one run against the antichain reference on every facet;
/// returns true (and reports) on any divergence.
fn diverges(entry: &str, kind: EngineKind, run: &RunResult, reference: &RunResult) -> bool {
    let name = kind.name();
    let mut diverged = false;
    if run.solutions != reference.solutions {
        eprintln!(
            "DIVERGENCE {entry}: solutions differ\n  {name}: {:?}\n  antichain: {:?}",
            run.solutions, reference.solutions
        );
        diverged = true;
    }
    if run.core != reference.core {
        eprintln!(
            "DIVERGENCE {entry}: unsat cores differ\n  {name}: {:?}\n  antichain: {:?}",
            run.core, reference.core
        );
        diverged = true;
    }
    if comparable_stats(&run.stats) != comparable_stats(&reference.stats) {
        eprintln!(
            "DIVERGENCE {entry}: stats differ (inclusion-macrostates excluded)\n  {name}: {:?}\n  antichain: {:?}",
            run.stats, reference.stats
        );
        diverged = true;
    }
    if let Some((line, a, b)) = first_journal_diff(&run.journal, &reference.journal) {
        eprintln!(
            "DIVERGENCE {entry}: journal differs at line {line}\n  {name}: {a}\n  antichain: {b}"
        );
        diverged = true;
    }
    if let Some((line, a, b)) = first_journal_diff(&run.metrics, &reference.metrics) {
        eprintln!(
            "DIVERGENCE {entry}: metrics snapshot differs at line {line}\n  {name}: {a}\n  antichain: {b}"
        );
        diverged = true;
    }
    diverged
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) => args
            .get(i + 1)
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }),
        None => 1,
    };

    let dir = "target/differential-inclusion";
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir}: {e}");
    }

    let mut failures = 0usize;
    let entries = corpus();
    println!(
        "differential-inclusion: {} corpus entries x engines {:?} at --jobs {jobs}",
        entries.len(),
        EngineKind::ALL.map(EngineKind::name)
    );
    for entry in &entries {
        let reference = (entry.build)(EngineKind::Antichain, jobs);
        write_lines(dir, &entry.name, "antichain", &reference.journal);
        let mut entry_diverged = false;
        for kind in EngineKind::ALL {
            if kind == EngineKind::Antichain {
                continue;
            }
            let run = (entry.build)(kind, jobs);
            write_lines(dir, &entry.name, kind.name(), &run.journal);
            entry_diverged |= diverges(&entry.name, kind, &run, &reference);
        }
        let verdict = if entry_diverged {
            "DIVERGED"
        } else {
            "identical"
        };
        if entry_diverged {
            failures += 1;
        }
        println!(
            "  {:<36} {:>4} journal events, {:>3} solution line(s), core {}: {verdict}",
            entry.name,
            reference.journal.len(),
            reference.solutions.len(),
            match &reference.core {
                Some(c) => format!("{c:?}"),
                None => "-".to_owned(),
            }
        );
    }

    if failures > 0 {
        eprintln!(
            "\n{failures} corpus entr{} diverged between engines",
            if failures == 1 { "y" } else { "ies" }
        );
        std::process::exit(1);
    }
    println!("\nall entries agree across all four inclusion engine kinds (journals in {dir}/)");
}
