//! Soak test: hammer the solver with random constraint systems and check
//! soundness (every returned assignment satisfies its system) plus
//! agreement between solver modes.
//!
//! ```text
//! solver-fuzz [N_SYSTEMS] [SEED_OFFSET]     (defaults: 200, 0)
//! ```
//!
//! Exits nonzero on the first discrepancy, printing the offending system
//! so it can be minimized into a regression test.

use dprle_core::{satisfies_system, solve, Solution, SolveOptions};
use dprle_corpus::scaling::{random_system, RandomSystemConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let offset: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);

    let configs = [
        RandomSystemConfig {
            vars: 2,
            subset_constraints: 2,
            concat_constraints: 1,
            machine_states: 4,
        },
        RandomSystemConfig {
            vars: 3,
            subset_constraints: 3,
            concat_constraints: 2,
            machine_states: 4,
        },
        RandomSystemConfig {
            vars: 3,
            subset_constraints: 1,
            concat_constraints: 3,
            machine_states: 3,
        },
    ];

    let mut sat = 0usize;
    let mut unsat = 0usize;
    let mut assignments = 0usize;
    for i in 0..n {
        let seed = offset + i;
        let config = &configs[(i % configs.len() as u64) as usize];
        let sys = random_system(seed, config);

        // Mode 1: defaults (verification on — but check externally too).
        let options = SolveOptions {
            verify: false,
            ..Default::default()
        };
        let solution = solve(&sys, &options);
        for a in solution.assignments() {
            if !satisfies_system(&sys, a) {
                eprintln!("UNSOUND assignment for seed {seed}:\n{sys}");
                std::process::exit(1);
            }
        }

        // Mode 2: quotient stripping must agree on satisfiability.
        let stripped = SolveOptions {
            strip_constant_operands: true,
            ..Default::default()
        };
        let agree = solve(&sys, &stripped);
        // Enumerate mode may be incomplete for multi-string constants, so
        // the only hard requirement is: if default says sat, stripped must
        // too (stripping is strictly more complete on these systems).
        if matches!(solution, Solution::Assignments(_)) && !agree.is_sat() {
            eprintln!("MODE DISAGREEMENT for seed {seed} (default sat, stripped unsat):\n{sys}");
            std::process::exit(1);
        }

        match solution {
            Solution::Assignments(list) => {
                sat += 1;
                assignments += list.len();
            }
            Solution::Unsat => unsat += 1,
        }
    }
    println!(
        "fuzzed {n} systems: {sat} sat ({assignments} assignments), {unsat} unsat — all sound"
    );
}
