//! Determinism harness: proves the branch-parallel worklist solver is
//! byte-identical to the sequential one across the whole corpus.
//!
//! Every corpus entry — the `testdata/` constraint files, the PHP audit
//! sources behind the examples, and generated multi-group / random
//! systems — is solved once per `--jobs` value, and each run must agree
//! with the first on four facets:
//!
//! 1. **Solutions**: per-variable canonical fingerprints of every
//!    assignment, in order (the deterministic-merge ordering).
//! 2. **Stats**: every [`SolveStats`] counter and human-readable event
//!    string (the struct has no timing fields, so full equality is the
//!    "counters excluding timings" check).
//! 3. **Trace journal**: the JSONL event stream with `ts_us` zeroed —
//!    wall-clock time is the only permitted difference; span ids and
//!    sequence numbers are replayed in sequential order by design.
//! 4. **Metrics snapshot**: every run installs a fresh metrics registry,
//!    and its final snapshot — serialized with a zeroed timestamp — must
//!    be byte-identical: counters, gauge peaks, and histogram buckets all
//!    reflect work recorded only at thread-count-invariant sites.
//!
//! Each run rebuilds its system from scratch (re-parse, re-explore,
//! re-generate). This is load-bearing, not paranoia: `Lang` handles carry
//! interior once-cached fingerprints, so a system reused across runs
//! would answer later runs' lookups from caches the first run warmed,
//! skewing the hit/miss counters.
//!
//! Zeroed-timestamp journals are written to `target/determinism/` so CI
//! can upload them as artifacts and a human can diff them directly.
//!
//! Usage: `cargo run -p dprle-bench --bin determinism --release [--jobs 1,4,8]`
//!
//! Exits 1 if any entry diverges at any jobs value.

use dprle_automata::LangStore;
use dprle_cli::parse_file;
use dprle_cli::smtlib::run_script_with_stats;
use dprle_core::{
    solve_traced, CollectSink, Metrics, Solution, SolveOptions, SolveStats, System, Tracer,
};
use dprle_corpus::scaling::{multi_group_system, random_system, RandomSystemConfig};
use dprle_lang::symex::{SinkKind, SymexOptions};
use dprle_lang::{build_system, explore, parse_php, Policy};
use std::sync::Arc;

/// Everything one solve run produces that must match across jobs values.
struct RunResult {
    /// One line per assignment: `var=<canonical key>` pairs in `var_ids`
    /// order, or the single line `UNSAT`.
    solutions: Vec<String>,
    stats: SolveStats,
    /// JSONL journal lines with `ts_us` zeroed.
    journal: Vec<String>,
    /// Metrics-snapshot JSONL lines with the `Meta` timestamp zeroed.
    metrics: Vec<String>,
}

fn traced_options(jobs: usize) -> SolveOptions {
    SolveOptions {
        jobs,
        trace: true,
        metrics: Metrics::enabled(),
        ..SolveOptions::default()
    }
}

fn zeroed_metrics(metrics: &Metrics) -> Vec<String> {
    metrics
        .snapshot()
        .expect("registry installed by traced_options")
        .to_jsonl(0)
        .lines()
        .map(str::to_owned)
        .collect()
}

fn solution_lines(system: &System, solution: &Solution) -> Vec<String> {
    match solution {
        Solution::Unsat => vec!["UNSAT".to_owned()],
        Solution::Assignments(list) => list
            .iter()
            .map(|a| {
                system
                    .var_ids()
                    .map(|v| {
                        let key = a
                            .get(v)
                            .map(|l| format!("{:?}", l.fingerprint()))
                            .unwrap_or_else(|| "<unassigned>".to_owned());
                        format!("{}={key}", system.var_name(v))
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect(),
    }
}

fn zeroed_journal(sink: &CollectSink) -> Vec<String> {
    sink.take()
        .into_iter()
        .map(|mut e| {
            e.ts_us = 0;
            e.to_json()
        })
        .collect()
}

/// Solves one freshly built system with a fresh store and tracer.
fn run_system(system: &System, jobs: usize) -> RunResult {
    let options = traced_options(jobs);
    let sink = Arc::new(CollectSink::new());
    let tracer = Tracer::new(sink.clone());
    let store = LangStore::interning(options.interning);
    let (solution, stats) = solve_traced(system, &options, &store, &tracer);
    RunResult {
        solutions: solution_lines(system, &solution),
        stats,
        journal: zeroed_journal(&sink),
        metrics: zeroed_metrics(&options.metrics),
    }
}

/// One named corpus entry: `build(jobs)` must rebuild everything from
/// scratch and return the run's comparable facets.
struct Entry {
    name: String,
    build: Box<dyn Fn(usize) -> RunResult>,
}

fn testdata(file: &str) -> String {
    let path = format!("{}/../../testdata/{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn dprle_entry(file: &'static str) -> Entry {
    Entry {
        name: format!("testdata/{file}"),
        build: Box::new(move |jobs| {
            let parsed = parse_file(&testdata(file)).expect("testdata parses");
            run_system(&parsed.system, jobs)
        }),
    }
}

fn smt2_entry(file: &'static str) -> Entry {
    Entry {
        name: format!("testdata/{file}"),
        build: Box::new(move |jobs| {
            let options = traced_options(jobs);
            let sink = Arc::new(CollectSink::new());
            let tracer = Tracer::new(sink.clone());
            let run = run_script_with_stats(&testdata(file), &options, &tracer)
                .expect("testdata script runs");
            RunResult {
                // The script's own outputs (sat/unsat verdicts and model
                // lines) are the solution-level facet here.
                solutions: run.outputs.iter().map(|o| o.to_string()).collect(),
                stats: run.stats,
                journal: zeroed_journal(&sink),
                metrics: zeroed_metrics(&options.metrics),
            }
        }),
    }
}

/// One entry per security-sensitive sink of a PHP source: the same
/// systems the `xss_audit`/`audit_corpus` examples solve.
fn php_entries(file: &'static str, policy: fn() -> Policy, kind: Option<SinkKind>) -> Vec<Entry> {
    let symex = SymexOptions {
        track_echo: kind == Some(SinkKind::Echo),
        ..SymexOptions::default()
    };
    let source = testdata(file);
    let program = parse_php(file, &source).expect("testdata PHP parses");
    let reaches = explore(&program, &symex).expect("explores");
    let sinks = reaches
        .iter()
        .filter(|r| kind.is_none_or(|k| r.kind == k))
        .count();
    (0..sinks)
        .map(|i| Entry {
            name: format!("testdata/{file}#sink{i}"),
            build: Box::new(move |jobs| {
                // Re-parse and re-explore: fresh machines, cold caches.
                let symex = SymexOptions {
                    track_echo: kind == Some(SinkKind::Echo),
                    ..SymexOptions::default()
                };
                let program = parse_php(file, &testdata(file)).expect("testdata PHP parses");
                let reaches = explore(&program, &symex).expect("explores");
                let reach = reaches
                    .iter()
                    .filter(|r| kind.is_none_or(|k| r.kind == k))
                    .nth(i)
                    .expect("sink index stable across re-exploration");
                let generated = build_system(reach, &policy()).expect("builds");
                run_system(&generated.system, jobs)
            }),
        })
        .collect()
}

fn generated_entry(name: &str, make: impl Fn() -> System + 'static) -> Entry {
    Entry {
        name: name.to_owned(),
        build: Box::new(move |jobs| run_system(&make(), jobs)),
    }
}

fn corpus() -> Vec<Entry> {
    let mut entries = vec![
        dprle_entry("motivating.dprle"),
        dprle_entry("unsat.dprle"),
        smt2_entry("motivating.smt2"),
    ];
    entries.extend(php_entries("figure1.php", Policy::sql_quote, None));
    entries.extend(php_entries(
        "xss.php",
        Policy::xss_script_tag,
        Some(SinkKind::Echo),
    ));
    entries.push(generated_entry("corpus/multi_group_3x2", || {
        multi_group_system(3, 2)
    }));
    entries.push(generated_entry("corpus/multi_group_2x3", || {
        multi_group_system(2, 3)
    }));
    for seed in 0..5u64 {
        entries.push(generated_entry(&format!("corpus/random_seed{seed}"), {
            move || random_system(seed, &RandomSystemConfig::default())
        }));
    }
    entries
}

fn write_lines(dir: &str, entry: &str, suffix: &str, lines: &[String]) {
    let safe: String = entry
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = format!("{dir}/{safe}.{suffix}.jsonl");
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn write_run(dir: &str, entry: &str, jobs: usize, run: &RunResult) {
    write_lines(dir, entry, &format!("jobs{jobs}"), &run.journal);
    write_lines(dir, entry, &format!("metrics.jobs{jobs}"), &run.metrics);
}

/// Reports the first differing line between two journals.
fn first_journal_diff(a: &[String], b: &[String]) -> Option<(usize, String, String)> {
    for i in 0..a.len().max(b.len()) {
        let (la, lb) = (a.get(i), b.get(i));
        if la != lb {
            return Some((
                i,
                la.cloned().unwrap_or_else(|| "<missing>".to_owned()),
                lb.cloned().unwrap_or_else(|| "<missing>".to_owned()),
            ));
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs_list: Vec<usize> = match args.iter().position(|a| a == "--jobs") {
        Some(i) => args
            .get(i + 1)
            .map(|s| {
                s.split(',')
                    .map(|n| {
                        n.parse::<usize>()
                            .ok()
                            .filter(|n| *n >= 1)
                            .unwrap_or_else(|| {
                                eprintln!("--jobs needs positive integers, got `{n}`");
                                std::process::exit(2);
                            })
                    })
                    .collect()
            })
            .unwrap_or_else(|| {
                eprintln!("--jobs needs a comma-separated list");
                std::process::exit(2);
            }),
        None => vec![1, 4, 8],
    };

    let dir = "target/determinism";
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir}: {e}");
    }

    let mut failures = 0usize;
    let entries = corpus();
    println!(
        "determinism: {} corpus entries x jobs {:?}",
        entries.len(),
        jobs_list
    );
    for entry in &entries {
        let baseline_jobs = jobs_list[0];
        let baseline = (entry.build)(baseline_jobs);
        write_run(dir, &entry.name, baseline_jobs, &baseline);
        let mut verdict = "identical";
        for &jobs in &jobs_list[1..] {
            let run = (entry.build)(jobs);
            write_run(dir, &entry.name, jobs, &run);
            let mut entry_diverged = false;
            if run.solutions != baseline.solutions {
                eprintln!(
                    "DIVERGENCE {}: solutions differ at jobs={jobs} vs jobs={baseline_jobs}\n  jobs={baseline_jobs}: {:?}\n  jobs={jobs}: {:?}",
                    entry.name, baseline.solutions, run.solutions
                );
                entry_diverged = true;
            }
            if run.stats != baseline.stats {
                eprintln!(
                    "DIVERGENCE {}: stats differ at jobs={jobs} vs jobs={baseline_jobs}\n  jobs={baseline_jobs}: {:?}\n  jobs={jobs}: {:?}",
                    entry.name, baseline.stats, run.stats
                );
                entry_diverged = true;
            }
            if let Some((line, a, b)) = first_journal_diff(&baseline.journal, &run.journal) {
                eprintln!(
                    "DIVERGENCE {}: journal differs at jobs={jobs} vs jobs={baseline_jobs}, line {line}\n  jobs={baseline_jobs}: {a}\n  jobs={jobs}: {b}",
                    entry.name
                );
                entry_diverged = true;
            }
            if let Some((line, a, b)) = first_journal_diff(&baseline.metrics, &run.metrics) {
                eprintln!(
                    "DIVERGENCE {}: metrics snapshot differs at jobs={jobs} vs jobs={baseline_jobs}, line {line}\n  jobs={baseline_jobs}: {a}\n  jobs={jobs}: {b}",
                    entry.name
                );
                entry_diverged = true;
            }
            if entry_diverged {
                failures += 1;
                verdict = "DIVERGED";
            }
        }
        println!(
            "  {:<36} {:>4} journal events, {:>3} solution line(s): {verdict}",
            entry.name,
            baseline.journal.len(),
            baseline.solutions.len()
        );
    }

    if failures > 0 {
        eprintln!(
            "\n{failures} corpus entr{} diverged",
            if failures == 1 { "y" } else { "ies" }
        );
        std::process::exit(1);
    }
    println!("\nall entries byte-identical across jobs {jobs_list:?} (journals in {dir}/)");
}
