//! The §3.5 complexity study: measured machine sizes and solution counts
//! against the paper's analytical bounds.
//!
//! * intersection machine `M₅`: O(Q²) states;
//! * number of disjunctive solutions: bounded by the constraint machine's
//!   state count;
//! * nested systems (two inductive CI calls): enumeration bound O(Q⁵) —
//!   measured here as solve time growth for `v₁·v₂·v₃ ⊆ c` chains.
//!
//! Run with: `cargo run -p dprle-bench --bin complexity_table --release`

use dprle_bench::{fit_exponent, run_ci_sweep_family, CiFamily};
use dprle_core::{solve_first, SolveOptions};
use dprle_corpus::scaling::nested_system;
use std::time::Instant;

fn main() {
    let qs = [4, 8, 16, 32, 64, 128];
    println!("CI sweeps (paper §3.5: |M5| = O(Q^2); #solutions bounded by |M3|)");
    for family in [CiFamily::Sparse, CiFamily::Dense, CiFamily::Modular] {
        println!("\nfamily: {}", family.name());
        println!(
            "{:>5} {:>12} {:>10} {:>11} {:>13} {:>10}",
            "Q", "input |M1|", "|M5|", "#solutions", "statesVisited", "secs"
        );
        let points = run_ci_sweep_family(family, &qs);
        for p in &points {
            println!(
                "{:>5} {:>12} {:>10} {:>11} {:>13} {:>10.4}",
                p.q, p.input_states, p.m5_states, p.solutions, p.states_visited, p.seconds
            );
        }
        let m5_fit = fit_exponent(
            &points
                .iter()
                .map(|p| (p.input_states as f64, p.m5_states as f64))
                .collect::<Vec<_>>(),
        );
        println!("fitted |M5| growth exponent: {m5_fit:.2}  (paper bound: <= 2)");
        assert!(m5_fit <= 2.3, "M5 growth exceeds the quadratic bound");
        let visit_fit = fit_exponent(
            &points
                .iter()
                .map(|p| (p.input_states as f64, p.states_visited as f64))
                .collect::<Vec<_>>(),
        );
        println!("fitted states-visited growth exponent: {visit_fit:.2}  (paper bound: <= 3)");
        assert!(visit_fit <= 3.3, "enumeration cost exceeds the cubic bound");
        if family == CiFamily::Modular {
            assert!(
                m5_fit >= 1.6,
                "modular family should approach the bound, got {m5_fit:.2}"
            );
        }
    }

    println!("\nNested systems v1·…·vk ⊆ c (two inductive CI calls at k = 3)");
    println!("{:>3} {:>5} {:>10}", "k", "Q", "secs(first)");
    for k in [2usize, 3, 4] {
        for q in [2usize, 4, 6] {
            let sys = nested_system(k, q);
            let start = Instant::now();
            let first = solve_first(&sys, &SolveOptions::default());
            let secs = start.elapsed().as_secs_f64();
            assert!(
                first.is_some(),
                "nested system k={k} q={q} must be satisfiable"
            );
            println!("{k:>3} {q:>5} {secs:>10.4}");
        }
    }
    println!("\nDone: growth stays within the paper's analytical envelope.");
}
