//! # dprle-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation, plus the §3.5 complexity study and ablations of this
//! implementation's design choices.
//!
//! Table binaries (run with `--release`):
//!
//! * `cargo run -p dprle-bench --bin fig11 --release` — the data-set table
//!   (Figure 11): per application, files / LOC analog / vulnerable files,
//!   measured on the synthesized corpus next to the published numbers.
//! * `cargo run -p dprle-bench --bin fig12 --release` — the results table
//!   (Figure 12): per vulnerability, `|FG|`, `|C|`, and constraint-solving
//!   time, measured next to the published numbers, with the shape checks
//!   the paper highlights (16 of 17 under a second; `secure` the outlier).
//! * `cargo run -p dprle-bench --bin complexity_table --release` — machine
//!   sizes and solution counts for the CI sweep validating the §3.5
//!   bounds.
//!
//! Criterion benches: `cargo bench -p dprle-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dprle_core::{Solution, SolveOptions};
use dprle_corpus::{vulnerable_program, VulnSpec, FIG12_ROWS};
use dprle_lang::symex::SymexOptions;
use dprle_lang::{explore, to_system, Cfg, Policy};
use std::time::Instant;

/// One measured Figure 12 row.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Application name.
    pub app: String,
    /// Vulnerability name.
    pub name: String,
    /// Measured basic-block count.
    pub fg: usize,
    /// Published basic-block count.
    pub fg_paper: usize,
    /// Measured constraint count.
    pub c: usize,
    /// Published constraint count.
    pub c_paper: usize,
    /// Measured constraint-solving time in seconds (`T_S`).
    pub seconds: f64,
    /// Published solving time in seconds (2009 hardware).
    pub paper_seconds: f64,
    /// Whether an exploit was found (every row should be `true`).
    pub exploitable: bool,
    /// Fingerprint-cache hits summed over the row's solver runs.
    pub fingerprint_hits: usize,
    /// Fingerprint-cache misses (canonicalizations performed).
    pub fingerprint_misses: usize,
    /// Memoized-operation hits (intersection/inclusion/minimize).
    pub memo_op_hits: usize,
    /// Deepest worklist across the row's solver runs.
    pub peak_worklist: usize,
    /// Total states materialized by store-level operations.
    pub states_materialized: usize,
}

/// Runs one Figure 12 row: generates the program, runs symbolic execution,
/// and times *constraint solving only* (the paper's `T_S` column measures
/// "the total time spent solving constraints").
pub fn run_fig12_row(spec: &VulnSpec, options: &SolveOptions) -> Fig12Row {
    let program = vulnerable_program(spec);
    let fg = Cfg::build(&program).num_blocks();
    let reaches = explore(&program, &SymexOptions::default())
        .unwrap_or_else(|e| panic!("{}: symbolic execution failed: {e}", spec.name));
    let policy = Policy::sql_quote();
    // The vulnerable path is the one that reaches the final sink.
    let mut exploitable = false;
    let mut c = 0usize;
    let mut fingerprint_hits = 0usize;
    let mut fingerprint_misses = 0usize;
    let mut memo_op_hits = 0usize;
    let mut peak_worklist = 0usize;
    let mut states_materialized = 0usize;
    let start = Instant::now();
    for reach in &reaches {
        let (sys, _) = to_system(reach, &policy);
        c = c.max(sys.num_constraints());
        let (solution, stats) = dprle_core::solve_with_stats(&sys, options);
        if let Solution::Assignments(_) = solution {
            exploitable = true;
        }
        fingerprint_hits += stats.fingerprint_hits;
        fingerprint_misses += stats.fingerprint_misses;
        memo_op_hits += stats.memo_op_hits;
        peak_worklist = peak_worklist.max(stats.peak_worklist);
        states_materialized += stats.states_materialized;
    }
    let seconds = start.elapsed().as_secs_f64();
    Fig12Row {
        app: spec.app.to_owned(),
        name: spec.name.to_owned(),
        fg,
        fg_paper: spec.fg,
        c,
        c_paper: spec.c,
        seconds,
        paper_seconds: spec.paper_seconds,
        exploitable,
        fingerprint_hits,
        fingerprint_misses,
        memo_op_hits,
        peak_worklist,
        states_materialized,
    }
}

/// Runs all 17 rows. `include_heavy: false` skips the deliberately
/// expensive `secure` row (useful in quick checks and Criterion loops).
pub fn run_fig12(options: &SolveOptions, include_heavy: bool) -> Vec<Fig12Row> {
    FIG12_ROWS
        .iter()
        .filter(|s| include_heavy || !s.heavy)
        .map(|s| run_fig12_row(s, options))
        .collect()
}

/// Escapes `s` as a JSON string literal (including the quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders Figure 12 rows as a pretty-printed JSON array. Hand-rolled
/// because the offline build carries no serde; the schema is the
/// `BENCH_fig12.json` contract tracked across PRs.
pub fn fig12_rows_json(rows: &[Fig12Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let fields = [
            ("app", json_string(&r.app)),
            ("name", json_string(&r.name)),
            ("fg", r.fg.to_string()),
            ("fg_paper", r.fg_paper.to_string()),
            ("c", r.c.to_string()),
            ("c_paper", r.c_paper.to_string()),
            ("seconds", format!("{:.6}", r.seconds)),
            ("paper_seconds", format!("{:.3}", r.paper_seconds)),
            ("exploitable", r.exploitable.to_string()),
            ("fingerprint_hits", r.fingerprint_hits.to_string()),
            ("fingerprint_misses", r.fingerprint_misses.to_string()),
            ("memo_op_hits", r.memo_op_hits.to_string()),
            ("peak_worklist", r.peak_worklist.to_string()),
            ("states_materialized", r.states_materialized.to_string()),
        ];
        for (j, (k, v)) in fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), v));
        }
        out.push_str("\n  }");
    }
    out.push_str("\n]\n");
    out
}

/// Shape checks the paper's prose highlights for Figure 12. Returns a list
/// of violations (empty = the reproduction has the published shape).
pub fn fig12_shape_violations(rows: &[Fig12Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if !r.exploitable {
            out.push(format!("{}: no exploit found", r.name));
        }
        if r.c != r.c_paper {
            out.push(format!(
                "{}: |C| {} != published {}",
                r.name, r.c, r.c_paper
            ));
        }
        if r.fg < r.fg_paper {
            out.push(format!(
                "{}: |FG| {} < published {}",
                r.name, r.fg, r.fg_paper
            ));
        }
    }
    if let Some(heavy) = rows.iter().find(|r| r.name == "secure") {
        let max_fast = rows
            .iter()
            .filter(|r| r.name != "secure")
            .map(|r| r.seconds)
            .fold(0.0f64, f64::max);
        if heavy.seconds < 10.0 * max_fast {
            out.push(format!(
                "secure ({:.3}s) is not an order-of-magnitude outlier over the others (max {:.3}s)",
                heavy.seconds, max_fast
            ));
        }
    }
    out
}

/// One measured point of the §3.5 complexity sweep.
#[derive(Clone, Debug)]
pub struct ComplexityPoint {
    /// The machine-size parameter `Q`.
    pub q: usize,
    /// States of `M₁` (≈ `M₂`).
    pub input_states: usize,
    /// States of the intersection machine `M₅` (paper bound: O(Q²)).
    pub m5_states: usize,
    /// Number of raw disjunctive solutions (paper bound: O(|M₃|)).
    pub solutions: usize,
    /// NFA states visited — the paper's cost metric (construction plus
    /// eager enumeration; O(Q³) for a single CI call).
    pub states_visited: usize,
    /// Wall-clock seconds for the full CI run.
    pub seconds: f64,
}

/// Which CI workload family to sweep (see `dprle_corpus::scaling`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CiFamily {
    /// Disjoint-alphabet operands: heavy product pruning (sub-quadratic).
    Sparse,
    /// Shared alphabet with a length window: moderate filtering.
    Dense,
    /// Position × modulo-counter product: attains the O(Q²) bound.
    Modular,
}

impl CiFamily {
    /// Instantiates the family at size `q`.
    pub fn instance(
        self,
        q: usize,
    ) -> (
        dprle_automata::Nfa,
        dprle_automata::Nfa,
        dprle_automata::Nfa,
    ) {
        match self {
            CiFamily::Sparse => dprle_corpus::scaling::ci_instance(q),
            CiFamily::Dense => dprle_corpus::scaling::ci_instance_dense(q),
            CiFamily::Modular => dprle_corpus::scaling::ci_instance_modular(q),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CiFamily::Sparse => "sparse",
            CiFamily::Dense => "dense",
            CiFamily::Modular => "modular",
        }
    }
}

/// Sweeps the CI procedure over machine sizes, recording the measured
/// state-space growth against the paper's O(Q²)/O(Q³) analysis.
pub fn run_ci_sweep(qs: &[usize]) -> Vec<ComplexityPoint> {
    run_ci_sweep_family(CiFamily::Sparse, qs)
}

/// Like [`run_ci_sweep`] for a chosen workload family.
pub fn run_ci_sweep_family(family: CiFamily, qs: &[usize]) -> Vec<ComplexityPoint> {
    qs.iter()
        .map(|&q| {
            let (c1, c2, c3) = family.instance(q);
            let input_states = c1.num_states();
            let start = Instant::now();
            let run = dprle_core::concat_intersect_full(&c1, &c2, &c3);
            let seconds = start.elapsed().as_secs_f64();
            ComplexityPoint {
                q,
                input_states,
                m5_states: run.m5.num_states(),
                solutions: run.solutions.len(),
                states_visited: run.states_visited,
                seconds,
            }
        })
        .collect()
}

/// Fits the exponent `k` in `y ≈ a·xᵏ` by least squares on log-log points;
/// the harness prints it next to the paper's asymptotic claim.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_fast_rows_have_published_shape() {
        // Two representative fast rows (full table is exercised by the
        // fig12 binary; keep unit tests quick).
        let options = SolveOptions::default();
        for spec in [&FIG12_ROWS[1], &FIG12_ROWS[6]] {
            let row = run_fig12_row(spec, &options);
            assert!(row.exploitable, "{}", row.name);
            assert_eq!(row.c, row.c_paper, "{}", row.name);
            assert!(row.fg >= row.fg_paper, "{}", row.name);
            assert!(row.seconds < 5.0, "{} took {}s", row.name, row.seconds);
        }
    }

    #[test]
    fn shape_checker_catches_violations() {
        let good = Fig12Row {
            app: "x".into(),
            name: "row".into(),
            fg: 100,
            fg_paper: 100,
            c: 5,
            c_paper: 5,
            seconds: 0.01,
            paper_seconds: 0.01,
            exploitable: true,
            fingerprint_hits: 10,
            fingerprint_misses: 5,
            memo_op_hits: 3,
            peak_worklist: 2,
            states_materialized: 40,
        };
        assert!(fig12_shape_violations(std::slice::from_ref(&good)).is_empty());
        let mut bad = good;
        bad.exploitable = false;
        bad.c = 4;
        let violations = fig12_shape_violations(&[bad]);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn ci_sweep_grows_quadratically_at_most() {
        let points = run_ci_sweep(&[4, 8, 16]);
        for w in points.windows(2) {
            assert!(w[1].m5_states > w[0].m5_states);
        }
        let fit: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.input_states as f64, p.m5_states as f64))
            .collect();
        let k = fit_exponent(&fit);
        assert!(k > 0.5 && k < 2.5, "M5 growth exponent {k} out of range");
    }

    #[test]
    fn exponent_fit_recovers_known_powers() {
        let square: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, (i * i) as f64)).collect();
        let k = fit_exponent(&square);
        assert!((k - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 1e-9);
        assert!(fit_exponent(&[(1.0, 1.0)]).is_nan());
    }
}
