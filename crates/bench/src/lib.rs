//! # dprle-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation, plus the §3.5 complexity study and ablations of this
//! implementation's design choices.
//!
//! Table binaries (run with `--release`):
//!
//! * `cargo run -p dprle-bench --bin fig11 --release` — the data-set table
//!   (Figure 11): per application, files / LOC analog / vulnerable files,
//!   measured on the synthesized corpus next to the published numbers.
//! * `cargo run -p dprle-bench --bin fig12 --release` — the results table
//!   (Figure 12): per vulnerability, `|FG|`, `|C|`, and constraint-solving
//!   time, measured next to the published numbers, with the shape checks
//!   the paper highlights (16 of 17 under a second; `secure` the outlier).
//! * `cargo run -p dprle-bench --bin complexity_table --release` — machine
//!   sizes and solution counts for the CI sweep validating the §3.5
//!   bounds.
//!
//! Criterion benches: `cargo bench -p dprle-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dprle_automata::LangStore;
use dprle_core::{
    solve_traced, CollectLedger, CollectSink, EngineKind, Ledger, PhaseRow, Solution, SolveOptions,
    SolveStats, TraceReport, Tracer,
};
use dprle_corpus::{vulnerable_program, VulnSpec, FIG12_ROWS};
use dprle_lang::symex::SymexOptions;
use dprle_lang::{explore, to_system, Cfg, Policy};
use std::sync::Arc;
use std::time::Instant;

/// One measured Figure 12 row.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Application name.
    pub app: String,
    /// Vulnerability name.
    pub name: String,
    /// Measured basic-block count.
    pub fg: usize,
    /// Published basic-block count.
    pub fg_paper: usize,
    /// Measured constraint count.
    pub c: usize,
    /// Published constraint count.
    pub c_paper: usize,
    /// Measured constraint-solving time in seconds (`T_S`), tracer disabled.
    pub seconds: f64,
    /// The same workload with a live tracer draining into a null sink —
    /// recorded next to `seconds` so the disabled-tracer path's zero-cost
    /// claim is checked on every regeneration of the table.
    pub traced_seconds: f64,
    /// Published solving time in seconds (2009 hardware).
    pub paper_seconds: f64,
    /// Worker threads of the parallel pass (`1` = the pass was skipped and
    /// the sequential measurement is reused).
    pub jobs: usize,
    /// Measured constraint-solving time with `jobs` worklist workers,
    /// tracer disabled. Byte-identical output to the sequential pass is
    /// guaranteed by the deterministic merge; the delta is pure scheduling.
    pub par_seconds: f64,
    /// `seconds / par_seconds` — the parallel pass's speedup. Hardware
    /// dependent: meaningful only on multi-core runners.
    pub speedup: f64,
    /// Whether an exploit was found (every row should be `true`).
    pub exploitable: bool,
    /// Product states explored across the row's solves (the §3.5 cost
    /// driver) — promoted out of `stats` as a first-class column.
    pub product_states: u64,
    /// Peak interning-memo bytes of any single solve in the row.
    pub peak_bytes: u64,
    /// Wall time of the engine-comparison pass under the eager
    /// determinize/complement/product inclusion engine.
    pub eager_seconds: f64,
    /// Inclusion macrostates explored by the eager pass (for the eager
    /// engine: determinization subset-states plus complement-product
    /// pairs).
    pub eager_macrostates: u64,
    /// Wall time of the engine-comparison pass under the antichain lazy
    /// inclusion engine (the default).
    pub antichain_seconds: f64,
    /// Inclusion macrostates explored by the antichain pass.
    pub antichain_macrostates: u64,
    /// Wall time of the engine-comparison pass under the derivative-pair
    /// inclusion engine.
    pub derivative_seconds: f64,
    /// Inclusion work explored by the derivative pass (derivative pairs
    /// popped, the engine's macrostate analogue).
    pub derivative_macrostates: u64,
    /// Solver counters aggregated over the row's runs (see
    /// `SolveStats::absorb`).
    pub stats: SolveStats,
    /// Per-phase wall time from the traced pass, hottest first (cumulative:
    /// nested spans count toward their ancestors).
    pub phases: Vec<PhaseRow>,
    /// Inclusion/product queries recorded by the ledgered pass.
    pub queries: u64,
    /// How many of those queries were answered from the interning memo.
    pub query_memo_hits: u64,
    /// The ledgered pass's raw cost ledger (JSONL, one record per query)
    /// — concatenated across rows by [`fig12_ledger_jsonl`] into the
    /// `BENCH_fig12_ledger.jsonl` artifact `dprle profile diff` consumes.
    pub ledger: String,
}

/// Runs one Figure 12 row: generates the program, runs symbolic execution,
/// and times *constraint solving only* (the paper's `T_S` column measures
/// "the total time spent solving constraints"). The solving pass runs
/// twice — tracer disabled (the `T_S` measurement) and tracer enabled into
/// a null sink — so the table carries the tracing overhead alongside.
pub fn run_fig12_row(spec: &VulnSpec, options: &SolveOptions) -> Fig12Row {
    run_fig12_row_jobs(spec, options, 1)
}

/// Like [`run_fig12_row`], additionally timing a third, untraced pass with
/// `jobs` worklist workers (skipped when `jobs <= 1`). The parallel pass
/// produces byte-identical solutions and statistics — only wall time may
/// differ — so the row's `speedup` isolates the scheduling win.
pub fn run_fig12_row_jobs(spec: &VulnSpec, options: &SolveOptions, jobs: usize) -> Fig12Row {
    let program = vulnerable_program(spec);
    let fg = Cfg::build(&program).num_blocks();
    let reaches = explore(&program, &SymexOptions::default())
        .unwrap_or_else(|e| panic!("{}: symbolic execution failed: {e}", spec.name));
    let policy = Policy::sql_quote();
    let systems: Vec<dprle_core::System> = reaches
        .iter()
        .map(|reach| to_system(reach, &policy).0)
        .collect();
    let c = systems
        .iter()
        .map(|s| s.num_constraints())
        .max()
        .unwrap_or(0);
    // The vulnerable path is the one that reaches the final sink.
    let mut exploitable = false;
    let mut stats = SolveStats::default();
    let start = Instant::now();
    for sys in &systems {
        let store = LangStore::interning(options.interning);
        let (solution, run_stats) = solve_traced(sys, options, &store, &Tracer::disabled());
        if let Solution::Assignments(_) = solution {
            exploitable = true;
        }
        stats.absorb(&run_stats);
    }
    let seconds = start.elapsed().as_secs_f64();
    // Same workload, tracer live: events are collected in memory (the
    // realistic enabled-tracer cost) and aggregated into per-phase time.
    let sink = Arc::new(CollectSink::new());
    let live_tracer = Tracer::new(sink.clone());
    let start = Instant::now();
    for sys in &systems {
        let store = LangStore::interning(options.interning);
        let _ = solve_traced(sys, options, &store, &live_tracer);
    }
    let traced_seconds = start.elapsed().as_secs_f64();
    let phases = TraceReport::from_events(&sink.take())
        .map(|r| r.phases)
        .unwrap_or_default();
    // Third pass: the same untraced workload on the parallel worklist.
    // The systems are rebuilt from scratch first: `Lang` handles cache
    // their canonical fingerprint, so reusing the warmed systems from the
    // passes above would credit cache warmth to the thread count. Cold
    // sequential vs cold parallel is the honest comparison.
    let (jobs, par_seconds) = if jobs > 1 {
        let par_systems: Vec<dprle_core::System> = reaches
            .iter()
            .map(|reach| to_system(reach, &policy).0)
            .collect();
        let par_options = SolveOptions {
            jobs,
            ..options.clone()
        };
        let start = Instant::now();
        for sys in &par_systems {
            let store = LangStore::interning(par_options.interning);
            let _ = solve_traced(sys, &par_options, &store, &Tracer::disabled());
        }
        (jobs, start.elapsed().as_secs_f64())
    } else {
        (1, seconds)
    };
    // Engine-comparison passes: the identical workload once per inclusion
    // engine, cold-rebuilt and untraced like the `T_S` pass, so the two
    // columns isolate the engine's cost. Both passes produce the same
    // solutions — the engines provably agree — so only time and
    // macrostates are kept.
    let engine_pass = |kind: EngineKind| {
        let systems: Vec<dprle_core::System> = reaches
            .iter()
            .map(|reach| to_system(reach, &policy).0)
            .collect();
        let engine_options = SolveOptions {
            inclusion_engine: kind,
            ..options.clone()
        };
        let mut macrostates = 0u64;
        let start = Instant::now();
        for sys in &systems {
            let store = LangStore::interning(engine_options.interning);
            let (_, run_stats) = solve_traced(sys, &engine_options, &store, &Tracer::disabled());
            macrostates += run_stats.inclusion_macrostates;
        }
        (start.elapsed().as_secs_f64(), macrostates)
    };
    let (eager_seconds, eager_macrostates) = engine_pass(EngineKind::Eager);
    let (antichain_seconds, antichain_macrostates) = engine_pass(EngineKind::Antichain);
    let (derivative_seconds, derivative_macrostates) = engine_pass(EngineKind::Derivative);
    // Ledgered pass: the same workload once more, cold-rebuilt like the
    // other passes, with the query cost ledger live. Kept separate from
    // the `T_S` pass so the timing columns stay ledger-free.
    let ledger_systems: Vec<dprle_core::System> = reaches
        .iter()
        .map(|reach| to_system(reach, &policy).0)
        .collect();
    let ledger_sink = Arc::new(CollectLedger::new());
    let ledger_options = SolveOptions {
        ledger: Ledger::new(ledger_sink.clone()),
        ..options.clone()
    };
    for sys in &ledger_systems {
        let store = LangStore::interning(ledger_options.interning);
        let _ = solve_traced(sys, &ledger_options, &store, &Tracer::disabled());
    }
    let ledger_records = ledger_sink.take();
    let queries = ledger_records.len() as u64;
    let query_memo_hits = ledger_records
        .iter()
        .filter(|r| r.memo == Some(dprle_core::MemoStatus::Hit))
        .count() as u64;
    let ledger: String = ledger_records.iter().map(|r| r.to_json() + "\n").collect();
    Fig12Row {
        app: spec.app.to_owned(),
        name: spec.name.to_owned(),
        fg,
        fg_paper: spec.fg,
        c,
        c_paper: spec.c,
        seconds,
        traced_seconds,
        paper_seconds: spec.paper_seconds,
        jobs,
        par_seconds,
        speedup: if par_seconds > 0.0 {
            seconds / par_seconds
        } else {
            1.0
        },
        exploitable,
        product_states: stats.product_states,
        peak_bytes: stats.peak_bytes,
        eager_seconds,
        eager_macrostates,
        antichain_seconds,
        antichain_macrostates,
        derivative_seconds,
        derivative_macrostates,
        stats,
        phases,
        queries,
        query_memo_hits,
        ledger,
    }
}

/// Concatenates the per-row cost ledgers of `rows` into one JSONL
/// document — the `BENCH_fig12_ledger.jsonl` baseline that
/// `dprle profile diff` compares fresh runs against. Sequence numbers
/// restart per row; the profile views key on fingerprints, not `seq`.
pub fn fig12_ledger_jsonl(rows: &[Fig12Row]) -> String {
    rows.iter().map(|r| r.ledger.as_str()).collect()
}

/// Runs all 17 rows. `include_heavy: false` skips the deliberately
/// expensive `secure` row (useful in quick checks and Criterion loops).
pub fn run_fig12(options: &SolveOptions, include_heavy: bool) -> Vec<Fig12Row> {
    run_fig12_jobs(options, include_heavy, 1)
}

/// Like [`run_fig12`] with a parallel pass at `jobs` workers per row.
pub fn run_fig12_jobs(options: &SolveOptions, include_heavy: bool, jobs: usize) -> Vec<Fig12Row> {
    FIG12_ROWS
        .iter()
        .filter(|s| include_heavy || !s.heavy)
        .map(|s| run_fig12_row_jobs(s, options, jobs))
        .collect()
}

/// Escapes `s` as a JSON string literal (including the quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders Figure 12 rows as a pretty-printed JSON array. Hand-rolled
/// because the offline build carries no serde; the schema is the
/// `BENCH_fig12.json` contract tracked across PRs.
pub fn fig12_rows_json(rows: &[Fig12Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let fields = [
            ("app", json_string(&r.app)),
            ("name", json_string(&r.name)),
            ("fg", r.fg.to_string()),
            ("fg_paper", r.fg_paper.to_string()),
            ("c", r.c.to_string()),
            ("c_paper", r.c_paper.to_string()),
            ("seconds", format!("{:.6}", r.seconds)),
            ("traced_seconds", format!("{:.6}", r.traced_seconds)),
            ("paper_seconds", format!("{:.3}", r.paper_seconds)),
            ("jobs", r.jobs.to_string()),
            ("par_seconds", format!("{:.6}", r.par_seconds)),
            ("speedup", format!("{:.3}", r.speedup)),
            ("exploitable", r.exploitable.to_string()),
            ("product_states", r.product_states.to_string()),
            ("peak_bytes", r.peak_bytes.to_string()),
            ("eager_seconds", format!("{:.6}", r.eager_seconds)),
            ("eager_macrostates", r.eager_macrostates.to_string()),
            ("antichain_seconds", format!("{:.6}", r.antichain_seconds)),
            ("antichain_macrostates", r.antichain_macrostates.to_string()),
            ("derivative_seconds", format!("{:.6}", r.derivative_seconds)),
            (
                "derivative_macrostates",
                r.derivative_macrostates.to_string(),
            ),
            ("queries", r.queries.to_string()),
            ("query_memo_hits", r.query_memo_hits.to_string()),
        ];
        for (j, (k, v)) in fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), v));
        }
        // The solver counters come straight from `SolveStats::counter_fields`
        // so the benchmark contract and the CLI's `--stats` output can never
        // drift apart.
        out.push_str(",\n    \"stats\": {");
        let counters = r.stats.counter_fields();
        for (j, (k, v)) in counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n      {}: {}", json_string(k), v));
        }
        out.push_str("\n    }");
        // Per-phase wall time (µs) of the traced pass, hottest first.
        out.push_str(",\n    \"phases\": {");
        for (j, p) in r.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {}: {}",
                json_string(&p.phase),
                p.total_us
            ));
        }
        out.push_str("\n    }");
        out.push_str("\n  }");
    }
    out.push_str("\n]\n");
    out
}

/// Parses `(name, seconds)` pairs back out of a checked-in
/// `BENCH_fig12.json`.
///
/// Line-oriented on purpose: the file is always produced by
/// [`fig12_rows_json`], whose one-field-per-line layout this relies on —
/// it is not a general JSON parser. `"seconds"` is matched exactly, so
/// `traced_seconds`/`par_seconds`/`paper_seconds` never collide.
pub fn parse_fig12_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"name\": ") {
            name = rest
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_owned);
        } else if let Some(rest) = line.strip_prefix("\"seconds\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.trim().parse::<f64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

/// Shape checks the paper's prose highlights for Figure 12. Returns a list
/// of violations (empty = the reproduction has the published shape).
pub fn fig12_shape_violations(rows: &[Fig12Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if !r.exploitable {
            out.push(format!("{}: no exploit found", r.name));
        }
        if r.c != r.c_paper {
            out.push(format!(
                "{}: |C| {} != published {}",
                r.name, r.c, r.c_paper
            ));
        }
        if r.fg < r.fg_paper {
            out.push(format!(
                "{}: |FG| {} < published {}",
                r.name, r.fg, r.fg_paper
            ));
        }
    }
    if let Some(heavy) = rows.iter().find(|r| r.name == "secure") {
        let max_fast = rows
            .iter()
            .filter(|r| r.name != "secure")
            .map(|r| r.seconds)
            .fold(0.0f64, f64::max);
        if heavy.seconds < 10.0 * max_fast {
            out.push(format!(
                "secure ({:.3}s) is not an order-of-magnitude outlier over the others (max {:.3}s)",
                heavy.seconds, max_fast
            ));
        }
    }
    out
}

/// One measured point of the §3.5 complexity sweep.
#[derive(Clone, Debug)]
pub struct ComplexityPoint {
    /// The machine-size parameter `Q`.
    pub q: usize,
    /// States of `M₁` (≈ `M₂`).
    pub input_states: usize,
    /// States of the intersection machine `M₅` (paper bound: O(Q²)).
    pub m5_states: usize,
    /// Number of raw disjunctive solutions (paper bound: O(|M₃|)).
    pub solutions: usize,
    /// NFA states visited — the paper's cost metric (construction plus
    /// eager enumeration; O(Q³) for a single CI call).
    pub states_visited: usize,
    /// Wall-clock seconds for the full CI run.
    pub seconds: f64,
}

/// Which CI workload family to sweep (see `dprle_corpus::scaling`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CiFamily {
    /// Disjoint-alphabet operands: heavy product pruning (sub-quadratic).
    Sparse,
    /// Shared alphabet with a length window: moderate filtering.
    Dense,
    /// Position × modulo-counter product: attains the O(Q²) bound.
    Modular,
}

impl CiFamily {
    /// Instantiates the family at size `q`.
    pub fn instance(
        self,
        q: usize,
    ) -> (
        dprle_automata::Nfa,
        dprle_automata::Nfa,
        dprle_automata::Nfa,
    ) {
        match self {
            CiFamily::Sparse => dprle_corpus::scaling::ci_instance(q),
            CiFamily::Dense => dprle_corpus::scaling::ci_instance_dense(q),
            CiFamily::Modular => dprle_corpus::scaling::ci_instance_modular(q),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CiFamily::Sparse => "sparse",
            CiFamily::Dense => "dense",
            CiFamily::Modular => "modular",
        }
    }
}

/// Sweeps the CI procedure over machine sizes, recording the measured
/// state-space growth against the paper's O(Q²)/O(Q³) analysis.
pub fn run_ci_sweep(qs: &[usize]) -> Vec<ComplexityPoint> {
    run_ci_sweep_family(CiFamily::Sparse, qs)
}

/// Like [`run_ci_sweep`] for a chosen workload family.
pub fn run_ci_sweep_family(family: CiFamily, qs: &[usize]) -> Vec<ComplexityPoint> {
    qs.iter()
        .map(|&q| {
            let (c1, c2, c3) = family.instance(q);
            let input_states = c1.num_states();
            let start = Instant::now();
            let run = dprle_core::concat_intersect_full(&c1, &c2, &c3);
            let seconds = start.elapsed().as_secs_f64();
            ComplexityPoint {
                q,
                input_states,
                m5_states: run.m5.num_states(),
                solutions: run.solutions.len(),
                states_visited: run.states_visited,
                seconds,
            }
        })
        .collect()
}

/// Fits the exponent `k` in `y ≈ a·xᵏ` by least squares on log-log points;
/// the harness prints it next to the paper's asymptotic claim.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_fast_rows_have_published_shape() {
        // Two representative fast rows (full table is exercised by the
        // fig12 binary; keep unit tests quick).
        let options = SolveOptions::default();
        for spec in [&FIG12_ROWS[1], &FIG12_ROWS[6]] {
            let row = run_fig12_row(spec, &options);
            assert!(row.exploitable, "{}", row.name);
            assert_eq!(row.c, row.c_paper, "{}", row.name);
            assert!(row.fg >= row.fg_paper, "{}", row.name);
            assert!(row.seconds < 5.0, "{} took {}s", row.name, row.seconds);
            assert!(row.product_states > 0, "{} explored no products", row.name);
            assert!(row.peak_bytes > 0, "{} charged no memo bytes", row.name);
        }
    }

    #[test]
    fn shape_checker_catches_violations() {
        let good = Fig12Row {
            app: "x".into(),
            name: "row".into(),
            fg: 100,
            fg_paper: 100,
            c: 5,
            c_paper: 5,
            seconds: 0.01,
            traced_seconds: 0.012,
            paper_seconds: 0.01,
            jobs: 1,
            par_seconds: 0.01,
            speedup: 1.0,
            exploitable: true,
            product_states: 0,
            peak_bytes: 0,
            eager_seconds: 0.02,
            eager_macrostates: 10,
            antichain_seconds: 0.01,
            antichain_macrostates: 5,
            derivative_seconds: 0.015,
            derivative_macrostates: 5,
            stats: SolveStats::default(),
            phases: Vec::new(),
            queries: 0,
            query_memo_hits: 0,
            ledger: String::new(),
        };
        assert!(fig12_shape_violations(std::slice::from_ref(&good)).is_empty());
        let mut bad = good;
        bad.exploitable = false;
        bad.c = 4;
        let violations = fig12_shape_violations(&[bad]);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn rows_json_carries_timings_and_the_shared_counter_schema() {
        let row = Fig12Row {
            app: "x".into(),
            name: "row".into(),
            fg: 100,
            fg_paper: 100,
            c: 5,
            c_paper: 5,
            seconds: 0.01,
            traced_seconds: 0.012,
            paper_seconds: 0.01,
            jobs: 1,
            par_seconds: 0.01,
            speedup: 1.0,
            exploitable: true,
            product_states: 42,
            peak_bytes: 4096,
            eager_seconds: 0.02,
            eager_macrostates: 10,
            antichain_seconds: 0.01,
            antichain_macrostates: 5,
            derivative_seconds: 0.015,
            derivative_macrostates: 5,
            stats: SolveStats {
                groups: 2,
                fingerprint_hits: 7,
                ..SolveStats::default()
            },
            phases: vec![PhaseRow {
                phase: "gci".into(),
                count: 3,
                total_us: 1234,
            }],
            queries: 19,
            query_memo_hits: 6,
            ledger: String::new(),
        };
        let json = fig12_rows_json(std::slice::from_ref(&row));
        assert!(json.contains("\"seconds\": 0.010000"), "{json}");
        assert!(json.contains("\"traced_seconds\": 0.012000"), "{json}");
        assert!(json.contains("\"product_states\": 42"), "{json}");
        assert!(json.contains("\"peak_bytes\": 4096"), "{json}");
        assert!(json.contains("\"queries\": 19"), "{json}");
        assert!(json.contains("\"query_memo_hits\": 6"), "{json}");
        // Every counter SolveStats exposes appears under "stats".
        for (name, _) in row.stats.counter_fields() {
            assert!(json.contains(&format!("\"{name}\":")), "{name}: {json}");
        }
        assert!(json.contains("\"fingerprint-hits\": 7"), "{json}");
        assert!(json.contains("\"phases\": {"), "{json}");
        assert!(json.contains("\"gci\": 1234"), "{json}");
    }

    #[test]
    fn baseline_parser_roundtrips_rows_json() {
        let mk = |name: &str, seconds: f64| Fig12Row {
            app: "x".into(),
            name: name.into(),
            fg: 1,
            fg_paper: 1,
            c: 1,
            c_paper: 1,
            seconds,
            traced_seconds: seconds * 2.0,
            paper_seconds: 9.0,
            jobs: 4,
            par_seconds: seconds / 2.0,
            speedup: 2.0,
            exploitable: true,
            product_states: 0,
            peak_bytes: 0,
            eager_seconds: seconds * 3.0,
            eager_macrostates: 10,
            antichain_seconds: seconds,
            antichain_macrostates: 5,
            derivative_seconds: 0.015,
            derivative_macrostates: 5,
            stats: SolveStats::default(),
            phases: Vec::new(),
            queries: 0,
            query_memo_hits: 0,
            ledger: String::new(),
        };
        let rows = [mk("edit", 0.125), mk("secure", 3.5)];
        let parsed = parse_fig12_baseline(&fig12_rows_json(&rows));
        // Only the untraced sequential `seconds` field is extracted — the
        // traced/par/paper variants must not collide with it.
        assert_eq!(
            parsed,
            vec![("edit".to_owned(), 0.125), ("secure".to_owned(), 3.5)]
        );
    }

    #[test]
    fn disabled_tracer_overhead_is_within_noise() {
        // The tracer is threaded through every solver phase; when disabled
        // it must cost nothing but a branch. Compare min-of-3 timings of the
        // same fast row with the tracer off vs on (null sink): the disabled
        // path may not be meaningfully slower than the enabled one.
        let options = SolveOptions::default();
        let spec = &FIG12_ROWS[1];
        let (mut min_off, mut min_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            let row = run_fig12_row(spec, &options);
            min_off = min_off.min(row.seconds);
            min_on = min_on.min(row.traced_seconds);
        }
        assert!(
            min_off <= min_on * 1.5 + 0.05,
            "disabled tracer slower than enabled: {min_off}s off vs {min_on}s on"
        );
    }

    #[test]
    fn disabled_metrics_overhead_is_within_noise() {
        // The metrics handle rides through every hot path; when disabled it
        // must cost nothing but a branch (same contract as the tracer).
        // Min-of-3 timings of a fast row, registry absent vs installed: the
        // disabled path may not be meaningfully slower than the enabled one.
        let spec = &FIG12_ROWS[1];
        let disabled = SolveOptions::default();
        let enabled = SolveOptions {
            metrics: dprle_core::Metrics::enabled(),
            ..SolveOptions::default()
        };
        let (mut min_off, mut min_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            min_off = min_off.min(run_fig12_row(spec, &disabled).seconds);
            min_on = min_on.min(run_fig12_row(spec, &enabled).seconds);
        }
        assert!(
            min_off <= min_on * 1.5 + 0.05,
            "disabled metrics slower than enabled: {min_off}s off vs {min_on}s on"
        );
    }

    #[test]
    fn disabled_ledger_overhead_is_within_noise() {
        // The ledger handle rides through the store observer, the gci
        // product builder, and the verify loop; when disabled it must cost
        // nothing but a branch (same contract as the tracer and metrics).
        let spec = &FIG12_ROWS[1];
        let disabled = SolveOptions::default();
        let enabled = SolveOptions {
            ledger: Ledger::new(Arc::new(CollectLedger::new())),
            ..SolveOptions::default()
        };
        let (mut min_off, mut min_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            min_off = min_off.min(run_fig12_row(spec, &disabled).seconds);
            min_on = min_on.min(run_fig12_row(spec, &enabled).seconds);
        }
        assert!(
            min_off <= min_on * 1.5 + 0.05,
            "disabled ledger slower than enabled: {min_off}s off vs {min_on}s on"
        );
    }

    #[test]
    fn fig12_ledger_diff_names_the_seeded_regression_first() {
        // The ISSUE's acceptance check: take a real Figure 12 ledger,
        // artificially slow exactly one query by a large constant, and the
        // profile diff must rank that query's fingerprint pair first and
        // trip the --fail-above gate.
        let row = run_fig12_row(&FIG12_ROWS[1], &SolveOptions::default());
        assert!(row.queries > 1, "row records several queries");
        let old = dprle_core::parse_ledger(&row.ledger).expect("row ledger parses");
        let mut new = old.clone();
        let victim = &mut new[0];
        victim.ts_us += 100_000;
        let victim_fp = format!("{:016x}", victim.lhs_fp);
        let report = dprle_core::render_diff(
            &old,
            &new,
            &dprle_core::DiffOptions {
                fail_above_pct: Some(50.0),
                ..dprle_core::DiffOptions::default()
            },
        );
        assert!(report.gate_breached, "{}", report.text);
        let first_row = report
            .text
            .lines()
            .find(|l| l.contains('⊆'))
            .expect("ranked rows");
        assert!(
            first_row.contains(&victim_fp),
            "seeded query first: {first_row}\n{}",
            report.text
        );
    }

    #[test]
    fn fig12_ledger_concat_is_valid_jsonl() {
        let row = run_fig12_row(&FIG12_ROWS[1], &SolveOptions::default());
        let doc = fig12_ledger_jsonl(std::slice::from_ref(&row));
        let n = dprle_core::validate_ledger_jsonl(dprle_core::LEDGER_SCHEMA, &doc)
            .expect("concatenated ledger is schema-valid");
        assert_eq!(n as u64, row.queries);
        assert!(
            row.query_memo_hits <= row.queries,
            "memo hits are a subset of all queries"
        );
    }

    #[test]
    fn ci_sweep_grows_quadratically_at_most() {
        let points = run_ci_sweep(&[4, 8, 16]);
        for w in points.windows(2) {
            assert!(w[1].m5_states > w[0].m5_states);
        }
        let fit: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.input_states as f64, p.m5_states as f64))
            .collect();
        let k = fit_exponent(&fit);
        assert!(k > 0.5 && k < 2.5, "M5 growth exponent {k} out of range");
    }

    #[test]
    fn exponent_fit_recovers_known_powers() {
        let square: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, (i * i) as f64)).collect();
        let k = fit_exponent(&square);
        assert!((k - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 1e-9);
        assert!(fit_exponent(&[(1.0, 1.0)]).is_nan());
    }
}
