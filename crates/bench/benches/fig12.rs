//! Criterion bench over representative Figure 12 rows: per-row constraint
//! solving time (the paper's `T_S`). The heavy `secure` row is sampled at
//! reduced count; run the `fig12` binary for the full one-shot table.

use criterion::{criterion_group, criterion_main, Criterion};
use dprle_core::{solve, SolveOptions};
use dprle_corpus::{vulnerable_program, FIG12_ROWS};
use dprle_lang::symex::SymexOptions;
use dprle_lang::{explore, to_system, Policy};

fn bench_fig12(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("fig12");
    group.sample_size(10);
    let policy = Policy::sql_quote();
    // Representative rows: smallest |C|, medium, largest |C|.
    for name in ["ax_help", "cart_shop", "xw_mn"] {
        let spec = FIG12_ROWS
            .iter()
            .find(|s| s.name == name)
            .expect("row exists");
        let program = vulnerable_program(spec);
        let reaches = explore(&program, &SymexOptions::default()).expect("explores");
        let systems: Vec<_> = reaches.iter().map(|r| to_system(r, &policy).0).collect();
        group.bench_function(format!("solve/{name}"), |b| {
            b.iter(|| {
                for sys in &systems {
                    std::hint::black_box(solve(sys, &SolveOptions::default()));
                }
            })
        });
    }
    group.finish();
}

fn bench_constraint_generation(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("fig12_frontend");
    group.sample_size(10);
    let spec = FIG12_ROWS
        .iter()
        .find(|s| s.name == "comm")
        .expect("row exists");
    let program = vulnerable_program(spec);
    group.bench_function("symbolic_execution/comm", |b| {
        b.iter(|| std::hint::black_box(explore(&program, &SymexOptions::default()).expect("ok")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig12, bench_constraint_generation);
criterion_main!(benches);
