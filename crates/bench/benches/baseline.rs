//! DPRLE vs the bounded-string baseline (§5's contrast with HAMPI-style
//! bounded solving): the baseline's cost grows with the length bound and
//! the depth of the shortest witness, while the decision procedure reasons
//! about whole languages and needs no bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dprle_automata::Nfa;
use dprle_core::{solve_bounded, solve_first, BoundedOptions, Expr, SolveOptions, System};
use dprle_regex::Regex;

/// An *alignment* system with exactly one valid pair among 4^d candidates:
/// v₁, v₂ ⊆ [ab]{d} and v₁·v₂ ⊆ (ab){d}. A per-string solver must search
/// the tuple space (its local candidate sets cannot see the coupling);
/// the decision procedure slices one product machine.
fn alignment_system(depth: usize) -> System {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let window = sys.constant(
        "window",
        Regex::new(&format!("^[ab]{{{depth}}}$"))
            .expect("compiles")
            .exact_language()
            .clone(),
    );
    let aligned = sys.constant(
        "aligned",
        Regex::new(&format!("^(ab){{{depth}}}$"))
            .expect("compiles")
            .exact_language()
            .clone(),
    );
    sys.require(Expr::Var(v1), window);
    sys.require(Expr::Var(v2), window);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), aligned);
    sys
}

/// A deep-witness system: the only exploit is a^depth followed by a quote.
fn deep_witness_system(depth: usize) -> System {
    let mut sys = System::new();
    let v = sys.var("v");
    let filter = sys.constant(
        "filter",
        Regex::new(&format!("^a{{{depth}}}('|b)$"))
            .expect("compiles")
            .exact_language()
            .clone(),
    );
    let prefix = sys.constant("prefix", Nfa::literal(b"x"));
    let unsafe_q = sys.constant_regex("unsafe", "'").expect("compiles");
    sys.require(Expr::Var(v), filter);
    sys.require(Expr::Const(prefix).concat(Expr::Var(v)), unsafe_q);
    sys
}

fn bench_alignment(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("baseline_alignment");
    group.sample_size(10);
    for depth in [4usize, 6, 8] {
        let sys = alignment_system(depth);
        group.bench_with_input(BenchmarkId::new("dprle", depth), &depth, |b, _| {
            b.iter(|| {
                let first = solve_first(&sys, &SolveOptions::default());
                assert!(first.is_some());
                std::hint::black_box(first)
            })
        });
        group.bench_with_input(BenchmarkId::new("bounded", depth), &depth, |b, &d| {
            let options = BoundedOptions {
                max_len: 2 * d,
                max_candidates: 1 << 16,
            };
            b.iter(|| {
                let sol = solve_bounded(&sys, &options);
                assert!(sol.is_some());
                std::hint::black_box(sol)
            })
        });
    }
    group.finish();
}

fn bench_witness_depth(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("baseline_witness_depth");
    group.sample_size(10);
    for depth in [4usize, 8, 12] {
        let sys = deep_witness_system(depth);
        group.bench_with_input(BenchmarkId::new("dprle", depth), &depth, |b, _| {
            b.iter(|| {
                let first = solve_first(&sys, &SolveOptions::default());
                assert!(first.is_some());
                std::hint::black_box(first)
            })
        });
        group.bench_with_input(BenchmarkId::new("bounded", depth), &depth, |b, &d| {
            let options = BoundedOptions {
                max_len: d + 1,
                max_candidates: 1 << 16,
            };
            b.iter(|| {
                let sol = solve_bounded(&sys, &options);
                assert!(sol.is_some());
                std::hint::black_box(sol)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alignment, bench_witness_depth);
criterion_main!(benches);
