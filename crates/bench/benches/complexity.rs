//! Criterion bench for the §3.5 complexity claims: CI cost as machine
//! size Q grows, plus nested-concatenation systems (two inductive CI
//! calls).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dprle_core::ci::concat_intersect;
use dprle_core::{solve_first, SolveOptions};
use dprle_corpus::scaling::{ci_instance, ci_instance_dense, nested_system};

fn bench_ci_sweep(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ci_sweep");
    group.sample_size(10);
    for q in [8usize, 16, 32, 64] {
        let (c1, c2, c3) = ci_instance(q);
        group.bench_with_input(BenchmarkId::new("sparse", q), &q, |b, _| {
            b.iter(|| std::hint::black_box(concat_intersect(&c1, &c2, &c3)))
        });
    }
    for q in [8usize, 16, 32] {
        let (d1, d2, d3) = ci_instance_dense(q);
        group.bench_with_input(BenchmarkId::new("dense", q), &q, |b, _| {
            b.iter(|| std::hint::black_box(concat_intersect(&d1, &d2, &d3)))
        });
    }
    group.finish();
}

fn bench_nested(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("nested_ci");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let sys = nested_system(k, 4);
        group.bench_with_input(BenchmarkId::new("first_solution", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(solve_first(&sys, &SolveOptions::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ci_sweep, bench_nested);
criterion_main!(benches);
