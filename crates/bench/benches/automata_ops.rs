//! Micro-benchmarks for the automata substrate: the primitive operations
//! whose costs the §3.5 analysis is expressed in (product construction,
//! determinization, minimization, complement, inclusion), plus the
//! byte-class ablation (class-labelled edges vs byte-expanded edges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dprle_automata::generate::{random_nonempty_nfa, RandomNfaConfig};
use dprle_automata::{
    complement, determinize, is_subset, minimize, minimize_dfa, minimize_dfa_hopcroft, ops,
    ByteClass, Nfa,
};

fn machines(states: usize) -> (Nfa, Nfa) {
    let cfg = RandomNfaConfig {
        states,
        edges_per_state: 2.0,
        eps_per_state: 0.2,
        alphabet: vec![b'a', b'b', b'c'],
        final_probability: 0.2,
    };
    (random_nonempty_nfa(11, &cfg), random_nonempty_nfa(23, &cfg))
}

fn bench_product(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("product");
    for states in [16usize, 64, 256] {
        let (a, b) = machines(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &states, |bch, _| {
            bch.iter(|| std::hint::black_box(ops::intersect(&a, &b)))
        });
    }
    group.finish();
}

fn bench_determinize_minimize(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("det_min");
    group.sample_size(20);
    for states in [8usize, 16, 32] {
        let (a, _) = machines(states);
        group.bench_with_input(BenchmarkId::new("determinize", states), &states, |b, _| {
            b.iter(|| std::hint::black_box(determinize(&a)))
        });
        group.bench_with_input(BenchmarkId::new("minimize", states), &states, |b, _| {
            b.iter(|| std::hint::black_box(minimize(&a)))
        });
        let dfa = determinize(&a);
        group.bench_with_input(BenchmarkId::new("moore", states), &states, |b, _| {
            b.iter(|| std::hint::black_box(minimize_dfa(&dfa)))
        });
        group.bench_with_input(BenchmarkId::new("hopcroft", states), &states, |b, _| {
            b.iter(|| std::hint::black_box(minimize_dfa_hopcroft(&dfa)))
        });
        group.bench_with_input(BenchmarkId::new("complement", states), &states, |b, _| {
            b.iter(|| std::hint::black_box(complement(&a)))
        });
    }
    group.finish();
}

fn bench_inclusion(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("inclusion");
    group.sample_size(20);
    let (a, b) = machines(24);
    let astar = ops::star(&a);
    group.bench_function("is_subset", |bch| {
        bch.iter(|| std::hint::black_box(is_subset(&a, &astar) & !is_subset(&astar, &b)))
    });
    group.finish();
}

/// Byte-class ablation: one class-labelled edge vs 256 byte-singleton
/// edges for Σ transitions, measured on the product construction the CI
/// algorithm is built from.
fn bench_byteclass_ablation(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_byteclass");
    group.sample_size(20);
    // Σ* . 'x' . Σ* with class-labelled edges.
    let compact = {
        let m = ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"x")).nfa;
        ops::concat(&m, &Nfa::sigma_star()).nfa
    };
    // The same language with Σ expanded into individual byte edges.
    let expanded = {
        let mut m = Nfa::new();
        let mid = m.add_state();
        let f = m.add_state();
        for byte in 0..=255u8 {
            m.add_edge(m.start(), ByteClass::singleton(byte), m.start());
            m.add_edge(f, ByteClass::singleton(byte), f);
        }
        m.add_edge(m.start(), ByteClass::singleton(b'x'), mid);
        m.add_eps(mid, f);
        m.add_final(f);
        m
    };
    let probe = Nfa::literal(b"aaaxbbb");
    group.bench_function("class_edges", |b| {
        b.iter(|| std::hint::black_box(ops::intersect(&compact, &probe)))
    });
    group.bench_function("byte_edges", |b| {
        b.iter(|| std::hint::black_box(ops::intersect(&expanded, &probe)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_product,
    bench_determinize_minimize,
    bench_inclusion,
    bench_byteclass_ablation
);
criterion_main!(benches);
