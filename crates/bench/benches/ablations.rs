//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `minimize_intermediate` — the paper's suggested NFA-minimization
//!   optimization for long constraint chains (its absence is the published
//!   explanation for the `secure` outlier);
//! * `minimize_solutions` in gci — minimizing induced segment machines;
//! * `dedup` — canonical-key deduplication of disjunctive solutions;
//! * lazy first-solution vs eager all-solutions (§3.5: "we can generate
//!   the first solution without having to enumerate the others");
//! * `strip_constant_operands` — quotient rewriting of constant
//!   concatenation operands (an extension beyond the paper);
//! * `interning` — the shared `LangStore` (hash-consed handles, canonical
//!   fingerprints, memoized intersection/inclusion/minimization) versus
//!   recomputing every operation directly (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use dprle_core::{solve, solve_first, GciOptions, SolveOptions};
use dprle_corpus::scaling::nested_system;
use dprle_corpus::{vulnerable_program, FIG12_ROWS};
use dprle_lang::symex::SymexOptions;
use dprle_lang::{explore, to_system, Policy};

/// The mid-weight `usr_prf` row (|C| = 66): long constraint chains where
/// intermediate minimization matters.
fn medium_system() -> dprle_core::System {
    let spec = FIG12_ROWS
        .iter()
        .find(|s| s.name == "usr_prf")
        .expect("row");
    let program = vulnerable_program(spec);
    let reaches = explore(&program, &SymexOptions::default()).expect("explores");
    to_system(&reaches[0], &Policy::sql_quote()).0
}

fn bench_minimize_intermediate(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_minimize_intermediate");
    group.sample_size(10);
    let sys = medium_system();
    group.bench_function("on", |b| {
        let options = SolveOptions::default();
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.bench_function("off_prototype_mode", |b| {
        // The paper's prototype behavior: no intermediate minimization.
        let options = SolveOptions {
            minimize_intermediate: false,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.finish();
}

fn bench_gci_minimize_solutions(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_gci_minimize");
    group.sample_size(10);
    let sys = nested_system(3, 4);
    group.bench_function("on", |b| {
        let options = SolveOptions::default();
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.bench_function("off", |b| {
        let options = SolveOptions {
            gci: GciOptions {
                minimize_solutions: false,
                ..Default::default()
            },
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.finish();
}

fn bench_dedup(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_dedup");
    group.sample_size(10);
    let sys = nested_system(2, 6);
    group.bench_function("on", |b| {
        let options = SolveOptions::default();
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.bench_function("off", |b| {
        let options = SolveOptions {
            gci: GciOptions {
                dedup: false,
                ..Default::default()
            },
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.finish();
}

fn bench_lazy_vs_eager(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_lazy");
    group.sample_size(10);
    let sys = nested_system(3, 4);
    group.bench_function("first_solution", |b| {
        b.iter(|| std::hint::black_box(solve_first(&sys, &SolveOptions::default())))
    });
    group.bench_function("all_solutions", |b| {
        b.iter(|| std::hint::black_box(solve(&sys, &SolveOptions::default())))
    });
    group.finish();
}

fn bench_constant_stripping(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_strip_constants");
    group.sample_size(10);
    // The motivating shape: literal-prefixed tainted value against a
    // policy language (constant operands on the CI group's left edge).
    let spec = FIG12_ROWS
        .iter()
        .find(|s| s.name == "cart_shop")
        .expect("row");
    let program = vulnerable_program(spec);
    let reaches = explore(&program, &SymexOptions::default()).expect("explores");
    let sys = to_system(&reaches[0], &Policy::sql_quote()).0;
    group.bench_function("enumerate_mode", |b| {
        b.iter(|| std::hint::black_box(solve(&sys, &SolveOptions::default())))
    });
    group.bench_function("quotient_mode", |b| {
        let options = SolveOptions {
            strip_constant_operands: true,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&sys, &options)))
    });
    group.finish();
}

fn bench_interning(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_interning");
    group.sample_size(10);
    // Two workloads where languages recur: a branching worklist (shared
    // partial assignments, repeated leaf intersections) and a real Fig. 12
    // row (repeated constants across a long constraint chain).
    let branching = nested_system(3, 4);
    let row = medium_system();
    group.bench_function("on_branching", |b| {
        let options = SolveOptions::default();
        b.iter(|| std::hint::black_box(solve(&branching, &options)))
    });
    group.bench_function("off_branching", |b| {
        let options = SolveOptions {
            interning: false,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&branching, &options)))
    });
    group.bench_function("on_usr_prf", |b| {
        let options = SolveOptions::default();
        b.iter(|| std::hint::black_box(solve(&row, &options)))
    });
    group.bench_function("off_usr_prf", |b| {
        let options = SolveOptions {
            interning: false,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(solve(&row, &options)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_minimize_intermediate,
    bench_gci_minimize_solutions,
    bench_dedup,
    bench_lazy_vs_eager,
    bench_constant_stripping,
    bench_interning
);
criterion_main!(benches);
