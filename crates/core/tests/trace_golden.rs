//! Golden-trace test for the paper's Fig. 9/10 worked example: the
//! two-constraint system `va·vb ⊆ c1`, `vb·vc ⊆ c2` whose shared `vb`
//! fuses both concatenations into a single CI-group with two ∘-edges —
//! and therefore exactly two ε-bridges in the generalized
//! concat-intersect construction.

use dprle_core::{
    check_well_nested, parse_jsonl, solve_traced, validate_jsonl, CollectSink, Expr, SolveOptions,
    System, TraceEvent, TraceEventKind, TraceReport, Tracer, TRACE_SCHEMA,
};
use dprle_regex::Regex;
use std::sync::Arc;

fn exact(pattern: &str) -> dprle_automata::Nfa {
    Regex::new(pattern)
        .expect("compiles")
        .exact_language()
        .clone()
}

/// Builds the worked example and returns its trace plus the solver outputs.
fn traced_worked_example() -> (
    Vec<TraceEvent>,
    dprle_core::Solution,
    dprle_core::SolveStats,
) {
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let c1 = sys.constant("c1", exact("ab"));
    let c2 = sys.constant("c2", exact("ba"));
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

    let sink = Arc::new(CollectSink::new());
    let tracer = Tracer::new(sink.clone());
    let store = dprle_automata::LangStore::new();
    let (solution, stats) = solve_traced(&sys, &SolveOptions::default(), &store, &tracer);
    (sink.take(), solution, stats)
}

#[test]
fn fig9_worked_example_has_one_group_with_two_bridges() {
    let (events, solution, stats) = traced_worked_example();
    assert!(solution.is_sat(), "the worked example is satisfiable");

    let starts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::CiGroupStart {
                group,
                nodes,
                bridges,
            } => Some((*group, nodes.clone(), *bridges)),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), 1, "shared vb fuses both ∘-edges: {starts:?}");
    let (group, nodes, bridges) = &starts[0];
    assert_eq!(*bridges, 2, "one ε-bridge per concatenation edge");
    assert!(
        nodes.len() >= 3,
        "group spans at least va, vb, vc: {nodes:?}"
    );

    let disjuncts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::GciDisjunct {
                group: g,
                bridge_eps,
                states,
                fingerprint,
            } => Some((*g, *bridge_eps, *states, *fingerprint)),
            _ => None,
        })
        .collect();
    assert_eq!(
        disjuncts.len(),
        stats.group_disjuncts,
        "one GciDisjunct per disjunctive group solution"
    );
    assert!(!disjuncts.is_empty(), "sat run produced disjuncts");
    for (g, bridge_eps, states, _) in &disjuncts {
        assert_eq!(g, group, "all disjuncts belong to the single group");
        assert_eq!(*bridge_eps, 2, "bridge count is a group invariant");
        assert!(*states > 0, "solutions carry non-empty machines");
    }

    let ends: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::CiGroupEnd {
                group: g,
                disjuncts,
            } => Some((*g, *disjuncts)),
            _ => None,
        })
        .collect();
    assert_eq!(ends, vec![(*group, disjuncts.len())]);
}

#[test]
fn fig9_trace_brackets_the_solve_and_times_every_phase() {
    let (events, _, _) = traced_worked_example();
    match &events.first().expect("nonempty").kind {
        TraceEventKind::SolveStart { constraints, vars } => {
            assert_eq!((*constraints, *vars), (2, 3));
        }
        other => panic!("first event is SolveStart, got {other:?}"),
    }
    // The solve span closes after SolveEnd, so the tail is SolveEnd
    // followed only by SpanEnd events.
    let end_pos = events
        .iter()
        .rposition(|e| matches!(e.kind, TraceEventKind::SolveEnd { .. }))
        .expect("trace carries a SolveEnd");
    assert!(
        matches!(
            events[end_pos].kind,
            TraceEventKind::SolveEnd { sat: true, .. }
        ),
        "SolveEnd reports sat: {:?}",
        events[end_pos]
    );
    assert!(
        events[end_pos + 1..]
            .iter()
            .all(|e| matches!(e.kind, TraceEventKind::SpanEnd { .. })),
        "only span closures follow SolveEnd"
    );

    check_well_nested(&events).expect("spans are well-nested");
    for w in events.windows(2) {
        assert!(w[1].seq > w[0].seq, "sequence numbers strictly increase");
        assert!(w[1].ts_us >= w[0].ts_us, "timestamps are monotone");
    }

    let report = TraceReport::from_events(&events).expect("aggregates");
    for phase in ["solve", "reduce", "gci", "enumerate", "minimize"] {
        assert!(
            report.phase_us(phase).is_some(),
            "phase {phase} was timed; have {:?}",
            report.phases
        );
    }
}

#[test]
fn fig9_trace_round_trips_through_jsonl_and_the_schema() {
    let (events, _, _) = traced_worked_example();
    let jsonl: String = events
        .iter()
        .map(|e| {
            let mut line = e.to_json();
            line.push('\n');
            line
        })
        .collect();
    let parsed = parse_jsonl(&jsonl).expect("round-trips");
    assert_eq!(parsed, events);
    let valid = validate_jsonl(TRACE_SCHEMA, &jsonl).expect("schema-valid");
    assert_eq!(valid, events.len());
}
