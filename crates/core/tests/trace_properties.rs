//! Property tests over randomly generated constraint systems: every trace
//! the solver emits — sat or unsat, grouped or not — is well-nested, in
//! order, schema-valid, and consistent with the returned statistics.

use dprle_automata::{LangStore, Nfa};
use dprle_core::{
    check_well_nested, parse_jsonl, solve_traced, validate_jsonl, CollectSink, Expr, SolveOptions,
    System, TraceEventKind, Tracer, TRACE_SCHEMA,
};
use dprle_regex::Regex;
use proptest::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::sync::Arc;

fn exact(pattern: &str) -> Nfa {
    Regex::new(pattern)
        .expect("compiles")
        .exact_language()
        .clone()
}

/// Splitmix-style step: deterministic stream of choices from one seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small random system over {a, b}: 2–3 variables, 1–3 subset
/// constraints, 0–2 concatenation constraints, machines drawn from a pool
/// of simple regular languages. Deterministic per seed.
fn random_system(seed: u64) -> System {
    const POOL: &[&str] = &[
        "a",
        "b",
        "a*",
        "b*",
        "(a|b)*",
        "ab",
        "ba",
        "a+",
        "(a|b){1,3}",
        "b+a*",
    ];
    let mut state = seed;
    let mut sys = System::new();
    let nvars = 2 + (next(&mut state) % 2) as usize;
    let vars: Vec<_> = (0..nvars).map(|i| sys.var(&format!("v{i}"))).collect();
    let mut consts = 0usize;
    let mut fresh = |sys: &mut System, state: &mut u64| {
        let pattern = POOL[(next(state) % POOL.len() as u64) as usize];
        let name = format!("c{consts}");
        consts += 1;
        sys.constant(&name, exact(pattern))
    };
    for _ in 0..1 + next(&mut state) % 3 {
        let v = vars[(next(&mut state) % vars.len() as u64) as usize];
        let c = fresh(&mut sys, &mut state);
        sys.require(Expr::Var(v), c);
    }
    for _ in 0..next(&mut state) % 3 {
        let v = vars[(next(&mut state) % vars.len() as u64) as usize];
        let w = vars[(next(&mut state) % vars.len() as u64) as usize];
        let c = fresh(&mut sys, &mut state);
        sys.require(Expr::Var(v).concat(Expr::Var(w)), c);
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traces_are_well_nested_and_monotone(seed in any::<u64>()) {
        let sys = random_system(seed);
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        let store = LangStore::new();
        let (solution, stats) =
            solve_traced(&sys, &SolveOptions::default(), &store, &tracer);
        let events = sink.take();

        prop_assert!(!events.is_empty(), "every solve emits at least start/end");
        if let Err(e) = check_well_nested(&events) {
            return Err(proptest::test_runner::TestCaseError::fail(e));
        }
        for w in events.windows(2) {
            prop_assert!(w[1].seq > w[0].seq, "seq regressed: {:?}", w);
            prop_assert!(w[1].ts_us >= w[0].ts_us, "ts regressed: {:?}", w);
        }
        let disjuncts = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::GciDisjunct { .. }))
            .count();
        prop_assert_eq!(disjuncts, stats.group_disjuncts);
        // The solve span closes after SolveEnd; only SpanEnd events follow.
        let end_pos = events
            .iter()
            .rposition(|e| matches!(e.kind, TraceEventKind::SolveEnd { .. }));
        let Some(end_pos) = end_pos else {
            return Err(proptest::test_runner::TestCaseError::fail(
                "trace carries a SolveEnd",
            ));
        };
        match events[end_pos].kind {
            TraceEventKind::SolveEnd { sat, .. } => {
                prop_assert_eq!(sat, solution.is_sat());
            }
            _ => unreachable!(),
        }
        prop_assert!(
            events[end_pos + 1..]
                .iter()
                .all(|e| matches!(e.kind, TraceEventKind::SpanEnd { .. })),
            "only span closures follow SolveEnd"
        );
    }

    #[test]
    fn traces_survive_jsonl_and_validate(seed in any::<u64>()) {
        let sys = random_system(seed);
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        let store = LangStore::new();
        let _ = solve_traced(&sys, &SolveOptions::default(), &store, &tracer);
        let events = sink.take();

        let jsonl: String = events
            .iter()
            .map(|e| {
                let mut line = e.to_json();
                line.push('\n');
                line
            })
            .collect();
        let parsed = match parse_jsonl(&jsonl) {
            Ok(p) => p,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(e)),
        };
        prop_assert_eq!(parsed, events.clone());
        match validate_jsonl(TRACE_SCHEMA, &jsonl) {
            Ok(n) => prop_assert_eq!(n, events.len()),
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(e)),
        }
    }
}
