//! Larger solver scenarios: multi-group systems, deep nesting, combined
//! extensions, and option interactions — the shapes a downstream program
//! analysis actually generates.

use dprle_automata::{equivalent, Nfa};
use dprle_core::{satisfies_system, solve, solve_with_stats, Expr, Solution, SolveOptions, System};
use dprle_regex::Regex;

fn exact(pattern: &str) -> Nfa {
    Regex::new(pattern)
        .expect("compiles")
        .exact_language()
        .clone()
}

/// Three independent subsystems in one System: a plain intersection, a CI
/// group, and a variable-free check — all must resolve in one call.
#[test]
fn mixed_subsystems_resolve_together() {
    let mut sys = System::new();
    // Plain: p ⊆ a+, p ⊆ a{2,3}
    let p = sys.var("p");
    let ca = sys.constant("ca", exact("a+"));
    let cb = sys.constant("cb", exact("a{2,3}"));
    sys.require(Expr::Var(p), ca);
    sys.require(Expr::Var(p), cb);
    // CI group: q·r ⊆ xy
    let q = sys.var("q");
    let r = sys.var("r");
    let cxy = sys.constant("cxy", exact("xy"));
    sys.require(Expr::Var(q).concat(Expr::Var(r)), cxy);
    // Variable-free: "k" ⊆ k|l
    let k = sys.constant("k", exact("k"));
    let kl = sys.constant("kl", exact("k|l"));
    sys.require(Expr::Const(k), kl);

    let solution = solve(&sys, &SolveOptions::default());
    let assignments = solution.assignments();
    assert!(!assignments.is_empty());
    for a in assignments {
        assert!(satisfies_system(&sys, a));
        assert!(equivalent(a.get(p).expect("p"), &exact("a{2,3}")));
    }
}

/// A four-variable concatenation tower with per-variable alphabets: the
/// group solver must thread the bound through three bridges.
#[test]
fn four_variable_tower() {
    let mut sys = System::new();
    let vars: Vec<_> = (0..4).map(|i| sys.var(&format!("v{i}"))).collect();
    for (i, v) in vars.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        let c = sys.constant(&format!("c{i}"), exact(&format!("{letter}+")));
        sys.require(Expr::Var(*v), c);
    }
    let total = sys.constant("total", exact("aabbbcd{2}"));
    let lhs = vars[1..]
        .iter()
        .fold(Expr::Var(vars[0]), |e, v| e.concat(Expr::Var(*v)));
    sys.require(lhs, total);
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("satisfiable");
    assert!(equivalent(a.get(vars[0]).expect("v0"), &exact("aa")));
    assert!(equivalent(a.get(vars[1]).expect("v1"), &exact("bbb")));
    assert!(equivalent(a.get(vars[2]).expect("v2"), &exact("c")));
    assert!(equivalent(a.get(vars[3]).expect("v3"), &exact("d{2}")));
}

/// A variable chained through three concatenations: one CI group whose
/// shared leaf must satisfy all three contexts simultaneously.
#[test]
fn variable_in_three_concatenations() {
    let mut sys = System::new();
    let x = sys.var("x");
    let l = sys.var("l");
    let r = sys.var("r");
    let c1 = sys.constant("c1", exact("ax"));
    let c2 = sys.constant("c2", exact("xb"));
    let c3 = sys.constant("c3", exact("xx"));
    sys.require(Expr::Var(l).concat(Expr::Var(x)), c1);
    sys.require(Expr::Var(x).concat(Expr::Var(r)), c2);
    sys.require(Expr::Var(x).concat(Expr::Var(x)), c3);
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("satisfiable");
    assert!(equivalent(a.get(x).expect("x"), &exact("x")));
    assert!(equivalent(a.get(l).expect("l"), &exact("a")));
    assert!(equivalent(a.get(r).expect("r"), &exact("b")));
}

/// Union and length extensions combined with a concatenation constraint.
#[test]
fn union_and_length_with_concatenation() {
    let mut sys = System::new();
    let u = sys.var("u");
    let w = sys.var("w");
    let cu = sys.constant("cu", exact("[ab]+"));
    sys.require(Expr::Var(u), cu);
    sys.require_length(u, 2, 2);
    let cw = sys.constant("cw", exact("[cd]+"));
    sys.require(Expr::Var(w), cw);
    // (u ∪ w) · "!" ⊆ anything of length 3 — forces w to length 2 as well.
    let bang = sys.constant("bang", Nfa::literal(b"!"));
    let len3 = sys.constant("len3", Nfa::exact_length(3));
    sys.require(
        Expr::Var(u).union(Expr::Var(w)).concat(Expr::Const(bang)),
        len3,
    );
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("satisfiable");
    assert!(equivalent(a.get(u).expect("u"), &exact("[ab]{2}")));
    assert!(equivalent(a.get(w).expect("w"), &exact("[cd]{2}")));
}

/// An unsatisfiable group nukes every branch even when other groups have
/// many disjuncts.
#[test]
fn unsat_group_dominates() {
    let mut sys = System::new();
    // Group 1: two disjuncts (the §3.1.1 example).
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let c1 = sys.constant("c1", exact("x(yy)+"));
    let c2 = sys.constant("c2", exact("(yy)*z"));
    let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
    // Group 2: unsatisfiable.
    let w1 = sys.var("w1");
    let w2 = sys.var("w2");
    let ca = sys.constant("ca", exact("a+"));
    let cb = sys.constant("cb", exact("b+"));
    let cc = sys.constant("cc", exact("c+"));
    sys.require(Expr::Var(w1), ca);
    sys.require(Expr::Var(w2), cb);
    sys.require(Expr::Var(w1).concat(Expr::Var(w2)), cc);

    let (solution, stats) = solve_with_stats(&sys, &SolveOptions::default());
    assert!(!solution.is_sat());
    assert_eq!(stats.groups, 2);
}

/// `max_assignments` truncates the cross-group product lazily.
#[test]
fn assignment_cap_is_respected() {
    let mut sys = System::new();
    for g in 0..2 {
        let v1 = sys.var(&format!("v1_{g}"));
        let v2 = sys.var(&format!("v2_{g}"));
        let c1 = sys.constant(&format!("c1_{g}"), exact("x(yy)+"));
        let c2 = sys.constant(&format!("c2_{g}"), exact("(yy)*z"));
        let c3 = sys.constant(&format!("c3_{g}"), exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
    }
    let all = solve(&sys, &SolveOptions::default());
    assert_eq!(all.assignments().len(), 4, "2 × 2 disjuncts");
    let capped = solve(
        &sys,
        &SolveOptions {
            max_assignments: Some(3),
            ..Default::default()
        },
    );
    assert_eq!(capped.assignments().len(), 3);
}

/// Quotient mode and enumerate mode agree on a corpus-shaped system with
/// literal constants on both edges of the concatenation.
#[test]
fn modes_agree_on_two_sided_literals() {
    for strip in [false, true] {
        let mut sys = System::new();
        let v = sys.var("v");
        let filter = sys.constant_regex("filter", "[\\d]+$").expect("compiles");
        let pre = sys.constant("pre", Nfa::literal(b"id='"));
        let post = sys.constant("post", Nfa::literal(b"' LIMIT 1"));
        let policy = sys.constant_regex("policy", "''").expect("compiles");
        sys.require(Expr::Var(v), filter);
        sys.require(
            Expr::Const(pre)
                .concat(Expr::Var(v))
                .concat(Expr::Const(post)),
            policy,
        );
        let options = SolveOptions {
            strip_constant_operands: strip,
            ..Default::default()
        };
        let solution = solve(&sys, &options);
        let a = solution
            .first()
            .unwrap_or_else(|| panic!("strip={strip}: sat"));
        let w = a.witness(v).expect("nonempty");
        // The assembled value (literal context + witness) must contain the
        // quote pair, and the witness itself must end with a digit for the
        // filter.
        let mut assembled = b"id='".to_vec();
        assembled.extend_from_slice(&w);
        assembled.extend_from_slice(b"' LIMIT 1");
        assert!(
            assembled.windows(2).any(|p| p == b"''"),
            "strip={strip}: {assembled:?}"
        );
        assert!(w.last().expect("nonempty").is_ascii_digit());
    }
}

/// Solving twice is deterministic (same assignments, same order).
#[test]
fn solving_is_deterministic() {
    let build = || {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", exact("x(yy)+"));
        let c2 = sys.constant("c2", exact("(yy)*z"));
        let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
        sys
    };
    let s1 = solve(&build(), &SolveOptions::default());
    let s2 = solve(&build(), &SolveOptions::default());
    let (a1, a2) = (s1.assignments(), s2.assignments());
    assert_eq!(a1.len(), a2.len());
    for (x, y) in a1.iter().zip(a2) {
        assert!(x.equivalent_to(y));
    }
}

/// Empty-language constants are handled: v ⊆ ∅ forces unsat under the
/// nonemptiness rule, and an ∅ constant inside a concatenation kills that
/// group.
#[test]
fn empty_constants() {
    let mut sys = System::new();
    let v = sys.var("v");
    let never = sys.constant("never", Nfa::empty_language());
    sys.require(Expr::Var(v), never);
    assert!(!solve(&sys, &SolveOptions::default()).is_sat());

    let mut sys = System::new();
    let v = sys.var("v");
    let never = sys.constant("never", Nfa::empty_language());
    let top = sys.constant("top", Nfa::sigma_star());
    sys.require(Expr::Const(never).concat(Expr::Var(v)), top);
    match solve(&sys, &SolveOptions::default()) {
        Solution::Unsat => {}
        Solution::Assignments(_) => panic!("∅ operand cannot be preserved"),
    }
}

/// The epsilon-only corner: v ⊆ {ε} composes with concatenation.
#[test]
fn epsilon_assignments() {
    let mut sys = System::new();
    let v = sys.var("v");
    let w = sys.var("w");
    let eps = sys.constant("eps", Nfa::epsilon());
    let ab = sys.constant("ab", exact("ab"));
    sys.require(Expr::Var(v), eps);
    sys.require(Expr::Var(v).concat(Expr::Var(w)), ab);
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("satisfiable");
    assert!(a.get(v).expect("v").contains(b""));
    assert!(equivalent(a.get(w).expect("w"), &exact("ab")));
}
