//! Unsat cores: minimal explanations of unsatisfiability.
//!
//! When the solver reports "no satisfying assignments", downstream tools
//! want to know *why* — which checks conflict. (In the paper's setting an
//! unsat system means the code is safe; the core names the sanitization
//! responsible, which is exactly what a developer auditing a
//! reported-then-refuted defect wants to see.)
//!
//! The implementation is deletion-based minimization: drop one constraint
//! at a time and re-solve; a constraint is kept in the core iff its removal
//! makes the system satisfiable. The result is a *minimal* core (every
//! member is necessary), though not necessarily a *minimum* one.

use crate::solve::{solve_traced, SolveOptions};
use crate::spec::{Constraint, System};
use crate::trace::{TraceEventKind, Tracer};
use dprle_automata::LangStore;

/// A minimal unsatisfiable core: indices into [`System::constraints`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatCore {
    /// Indices of the core constraints, ascending.
    pub indices: Vec<usize>,
}

impl UnsatCore {
    /// Renders the core's constraints using the system's interned names.
    pub fn display(&self, system: &System) -> String {
        self.indices
            .iter()
            .map(|&i| {
                let c = &system.constraints()[i];
                format!(
                    "[{}] {} <= {}",
                    i,
                    system.expr_to_string(&c.lhs),
                    system.const_name(c.rhs)
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Computes a minimal unsat core of `system`, or `None` if the system is
/// satisfiable.
///
/// Cost: one solver call per constraint (deletion loop) plus the initial
/// check — acceptable for the constraint counts the front end produces
/// (the paper's largest |C| is 387). Every re-solve shares one
/// [`LangStore`]: the trials differ only in which constraints are present,
/// so the constant machines (shared handles across the cloned systems) and
/// the repeated leaf intersections hit the caches of earlier trials.
pub fn unsat_core(system: &System, options: &SolveOptions) -> Option<UnsatCore> {
    unsat_core_traced(system, options, &Tracer::disabled())
}

/// Like [`unsat_core`], recording every deletion trial as an
/// `UnsatCoreTrial` trace event (plus the full solver trace of each trial's
/// re-solve).
pub fn unsat_core_traced(
    system: &System,
    options: &SolveOptions,
    tracer: &Tracer,
) -> Option<UnsatCore> {
    let store = LangStore::interning(options.interning);
    if solve_traced(system, options, &store, tracer).0.is_sat() {
        return None;
    }
    let all: Vec<Constraint> = system.constraints().to_vec();
    // Work on a copy of the system with no constraints; re-add per trial.
    let mut keep: Vec<usize> = (0..all.len()).collect();
    let mut i = 0;
    while i < keep.len() {
        // Try removing keep[i].
        let dropped = keep[i];
        let candidate: Vec<usize> = keep.iter().copied().filter(|&k| k != dropped).collect();
        let trial = with_constraints(system, &all, &candidate);
        let sat = solve_traced(&trial, options, &store, tracer).0.is_sat();
        tracer.emit(|| TraceEventKind::UnsatCoreTrial {
            dropped,
            still_unsat: !sat,
        });
        if sat {
            // Necessary: keep it, move on.
            i += 1;
        } else {
            // Still unsat without it: drop permanently.
            keep = candidate;
        }
    }
    Some(UnsatCore { indices: keep })
}

fn with_constraints(system: &System, all: &[Constraint], indices: &[usize]) -> System {
    let mut out = system.clone();
    out.truncate_constraints(0);
    for &i in indices {
        out.require(all[i].lhs.clone(), all[i].rhs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve;
    use crate::spec::Expr;
    use dprle_automata::Nfa;
    use dprle_regex::Regex;

    fn exact(pattern: &str) -> Nfa {
        Regex::new(pattern)
            .expect("compiles")
            .exact_language()
            .clone()
    }

    #[test]
    fn satisfiable_systems_have_no_core() {
        let mut sys = System::new();
        let v = sys.var("v");
        let a = sys.constant("a", exact("a+"));
        sys.require(Expr::Var(v), a);
        assert_eq!(unsat_core(&sys, &SolveOptions::default()), None);
    }

    #[test]
    fn core_isolates_the_conflicting_pair() {
        let mut sys = System::new();
        let v = sys.var("v");
        let w = sys.var("w");
        let a = sys.constant("a", exact("a+"));
        let b = sys.constant("b", exact("b+"));
        let c = sys.constant("c", exact("c*"));
        sys.require(Expr::Var(w), c); // irrelevant
        sys.require(Expr::Var(v), a); // conflict half 1
        sys.require(Expr::Var(w), c); // irrelevant duplicate
        sys.require(Expr::Var(v), b); // conflict half 2
        let core = unsat_core(&sys, &SolveOptions::default()).expect("unsat");
        assert_eq!(core.indices, vec![1, 3]);
        let text = core.display(&sys);
        assert!(text.contains("v <= a"), "{text}");
        assert!(text.contains("v <= b"), "{text}");
        assert!(!text.contains("w <= c"), "{text}");
    }

    #[test]
    fn core_members_are_each_necessary() {
        let mut sys = System::new();
        let v = sys.var("v");
        // Three pairwise-compatible constraints that are jointly unsat:
        // starts with a, ends with b, and has length 1.
        let starts = sys.constant("starts", exact("a[ab]*"));
        let ends = sys.constant("ends", exact("[ab]*b"));
        let len1 = sys.constant("len1", exact("[ab]"));
        sys.require(Expr::Var(v), starts);
        sys.require(Expr::Var(v), ends);
        sys.require(Expr::Var(v), len1);
        let core = unsat_core(&sys, &SolveOptions::default()).expect("unsat");
        assert_eq!(core.indices.len(), 3, "all three needed");
        // Each pair alone is satisfiable.
        for drop in 0..3 {
            let mut pair = System::new();
            let v = pair.var("v");
            let machines = [exact("a[ab]*"), exact("[ab]*b"), exact("[ab]")];
            for (i, m) in machines.into_iter().enumerate() {
                if i != drop {
                    let c = pair.constant(&format!("c{i}"), m);
                    pair.require(Expr::Var(v), c);
                }
            }
            assert!(solve(&pair, &SolveOptions::default()).is_sat());
        }
    }

    #[test]
    fn traced_trials_explain_the_core() {
        use crate::trace::{CollectSink, TraceEventKind, Tracer};
        use std::sync::Arc;

        let mut sys = System::new();
        let v = sys.var("v");
        let w = sys.var("w");
        let a = sys.constant("a", exact("a+"));
        let b = sys.constant("b", exact("b+"));
        let c = sys.constant("c", exact("c*"));
        sys.require(Expr::Var(w), c); // redundant
        sys.require(Expr::Var(v), a); // conflict half 1
        sys.require(Expr::Var(v), b); // conflict half 2
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        let core = unsat_core_traced(&sys, &SolveOptions::default(), &tracer).expect("unsat");
        assert_eq!(core.indices, vec![1, 2]);
        let trials: Vec<(usize, bool)> = sink
            .take()
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::UnsatCoreTrial {
                    dropped,
                    still_unsat,
                } => Some((dropped, still_unsat)),
                _ => None,
            })
            .collect();
        // One trial per surviving constraint, and the redundant constraint's
        // trial stays unsat (which is why it leaves the core).
        assert!(trials.contains(&(0, true)), "{trials:?}");
        assert!(trials.contains(&(1, false)), "{trials:?}");
        assert!(trials.contains(&(2, false)), "{trials:?}");
    }

    #[test]
    fn core_through_concatenation() {
        // The safe-after-patching story: filter blocks quotes, policy wants
        // one — the core is exactly {filter, policy}, not the length check.
        let mut sys = System::new();
        let v = sys.var("v");
        let filter = sys.constant_regex("filter", "^[\\d]+$").expect("re");
        let len = sys.constant("len", Nfa::length_between(0, 64));
        let pre = sys.constant("pre", Nfa::literal(b"nid_"));
        let policy = sys.constant_regex("policy", "'").expect("re");
        sys.require(Expr::Var(v), filter);
        sys.require(Expr::Var(v), len);
        sys.require(Expr::Const(pre).concat(Expr::Var(v)), policy);
        let core = unsat_core(&sys, &SolveOptions::default()).expect("safe = unsat");
        assert_eq!(
            core.indices,
            vec![0, 2],
            "filter + policy, not the length cap"
        );
    }
}
