//! Resource budgets and metrics exposition for the solver.
//!
//! The metric *registry* itself lives in [`dprle_automata::metrics`] (so the
//! automata hot paths can record into it without a dependency cycle); this
//! module re-exports the registry types and layers the solver-side pieces on
//! top:
//!
//! * [`Budget`] — per-solve resource limits threaded through
//!   `SolveOptions::budget`. Limits convert automaton blowups (the paper's
//!   §3.5 quadratic product construction is the canonical one) into a
//!   graceful, typed [`ResourceExhausted`] error instead of an OOM kill.
//! * [`ResourceExhausted`] — the breach report: which limit, the configured
//!   bound, the observed value, the [`SolveStats`] accumulated so far, and —
//!   when metrics were enabled — a full [`MetricsSnapshot`].
//! * [`METRICS_SCHEMA`] / [`validate_metrics_jsonl`] / [`parse_snapshot`] —
//!   the pinned JSONL snapshot format (`docs/metrics.schema.json`),
//!   validated with the same fail-closed engine as the trace schema.
//! * [`render_report`] — the `dprle metrics-report` renderer: entries ranked
//!   by their headline cost (counter value, gauge peak, histogram sum).
//!
//! ## Determinism
//!
//! Budget checks are applied only at points whose inputs are identical at
//! every `--jobs N`: the per-operation product-state cap inside the
//! generalized concat-intersect depends only on the operand machines, and
//! the cumulative checks run in the driver's deterministic FIFO (sequential)
//! or ordered-replay (parallel) position. The one exception is
//! [`Budget::deadline`], which is wall-clock by nature and documented as
//! nondeterministic.

use crate::schema::{self, Json};
use crate::solve::SolveStats;
use std::fmt;
use std::time::Duration;

pub use dprle_automata::metrics::{
    id, MetricDef, MetricEntry, MetricKind, MetricValue, Metrics, MetricsSnapshot, METRIC_DEFS,
};

/// The JSON Schema (draft-07 subset) pinning the metrics snapshot JSONL
/// format; the file ships at `docs/metrics.schema.json`.
pub const METRICS_SCHEMA: &str = include_str!("../../../docs/metrics.schema.json");

/// The `schema` tag stamped into every snapshot's `Meta` line.
pub const METRICS_SCHEMA_TAG: &str = "dprle-metrics-v1";

/// Resource limits for one solve. `Default` is fully unlimited.
///
/// Limits are checked against the *driver-accumulated* totals (identical at
/// every `--jobs N`; see the module docs), except `deadline`, which is
/// wall-clock and therefore inherently nondeterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on the cumulative number of states *kept* across group solving
    /// and the reduce phase (the states a run holds live, as opposed to the
    /// product states it merely explores).
    pub max_live_states: Option<u64>,
    /// Cap on the cumulative number of product states explored by
    /// intersection constructions (paper §3.5: the product of an `n`-state
    /// and an `m`-state machine explores up to `n·m` states). Also applied
    /// *per operation*: a single intersection aborts the moment it would
    /// materialize more than this many pairs.
    pub max_product_states: Option<u64>,
    /// Wall-clock limit for the whole solve, checked between worklist
    /// entries. Nondeterministic by nature.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// True when no limit is set (the default): the budget machinery is
    /// bypassed entirely.
    pub fn is_unlimited(&self) -> bool {
        self.max_live_states.is_none()
            && self.max_product_states.is_none()
            && self.deadline.is_none()
    }
}

/// Which [`Budget`] limit a [`ResourceExhausted`] breached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `Budget::max_product_states`.
    ProductStates,
    /// `Budget::max_live_states`.
    LiveStates,
    /// `Budget::deadline`.
    Deadline,
}

impl BudgetKind {
    /// Stable kebab-case name, used in error messages and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::ProductStates => "product-states",
            BudgetKind::LiveStates => "live-states",
            BudgetKind::Deadline => "deadline",
        }
    }
}

/// A solve stopped because a [`Budget`] limit was breached.
///
/// For [`BudgetKind::Deadline`], `limit` and `observed` are microseconds;
/// for the state kinds they are state counts. `stats` holds the counters
/// accumulated up to the breach (always available); `snapshot` holds the
/// full metrics registry, present only when metrics were enabled.
#[derive(Clone, Debug)]
pub struct ResourceExhausted {
    /// The limit that was breached.
    pub kind: BudgetKind,
    /// The configured bound.
    pub limit: u64,
    /// The observed value that tripped the bound. For
    /// [`BudgetKind::ProductStates`] breaches raised by a capped
    /// intersection this is the cap itself: the construction aborts *before*
    /// exceeding it, so at most `limit` product states were materialized.
    pub observed: u64,
    /// Full registry snapshot at the breach, when metrics were enabled.
    pub snapshot: Option<MetricsSnapshot>,
    /// Solve counters accumulated up to the breach.
    pub stats: SolveStats,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.kind {
            BudgetKind::Deadline => "us",
            BudgetKind::ProductStates | BudgetKind::LiveStates => "states",
        };
        write!(
            f,
            "resource budget exhausted: {} limit {} {unit} reached (observed {})",
            self.kind.name(),
            self.limit,
            self.observed
        )
    }
}

impl std::error::Error for ResourceExhausted {}

/// Validates a metrics JSONL snapshot against [`METRICS_SCHEMA`]. Returns
/// the number of validated lines. Fail-closed: unknown fields, missing
/// required fields, and type mismatches are all errors.
pub fn validate_metrics_jsonl(jsonl: &str) -> Result<usize, String> {
    schema::validate_jsonl(METRICS_SCHEMA, jsonl)
}

/// Parses a metrics JSONL snapshot (the `--metrics-format json` output)
/// back into a [`MetricsSnapshot`]. The leading `Meta` line is checked for
/// the [`METRICS_SCHEMA_TAG`] schema tag and the entry count.
pub fn parse_snapshot(jsonl: &str) -> Result<MetricsSnapshot, String> {
    let mut lines = jsonl.lines().filter(|l| !l.trim().is_empty());
    let meta_line = lines.next().ok_or("empty metrics snapshot")?;
    let meta = Json::parse(meta_line)?;
    let meta = meta.as_object().ok_or("Meta line is not an object")?;
    match schema::get_str(meta, "kind")? {
        "Meta" => {}
        other => return Err(format!("first line has kind {other:?}, expected \"Meta\"")),
    }
    let tag = schema::get_str(meta, "schema")?;
    if tag != METRICS_SCHEMA_TAG {
        return Err(format!(
            "schema tag {tag:?} does not match {METRICS_SCHEMA_TAG:?}"
        ));
    }
    let declared = schema::get_u64(meta, "entries")?;
    let mut entries = Vec::new();
    for (i, line) in lines.enumerate() {
        let entry = parse_entry(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        entries.push(entry);
    }
    if entries.len() as u64 != declared {
        return Err(format!(
            "Meta declares {declared} entries but the snapshot has {}",
            entries.len()
        ));
    }
    Ok(MetricsSnapshot { entries })
}

fn parse_entry(line: &str) -> Result<MetricEntry, String> {
    let json = Json::parse(line)?;
    let obj = json.as_object().ok_or("metric line is not an object")?;
    let name = schema::get_str(obj, "name")?.to_string();
    let help = schema::get_str(obj, "help")?.to_string();
    let value = match schema::get_str(obj, "kind")? {
        "Counter" => MetricValue::Counter {
            value: schema::get_u64(obj, "value")?,
        },
        "Gauge" => MetricValue::Gauge {
            value: schema::get_u64(obj, "value")?,
            peak: schema::get_u64(obj, "peak")?,
        },
        "Histogram" => {
            let buckets = schema::lookup(obj, "buckets")
                .and_then(Json::as_array)
                .ok_or("histogram is missing a buckets array")?
                .iter()
                .map(|b| b.as_u64().ok_or("bucket count is not an integer"))
                .collect::<Result<Vec<u64>, _>>()?;
            MetricValue::Histogram {
                count: schema::get_u64(obj, "count")?,
                sum: schema::get_u64(obj, "sum")?,
                buckets,
            }
        }
        other => return Err(format!("unknown metric kind {other:?}")),
    };
    Ok(MetricEntry { name, help, value })
}

/// Renders the `dprle metrics-report` table: the top `k` entries ranked by
/// their headline cost ([`MetricEntry::headline`]), with the shape-specific
/// detail column. Ties rank by name so the output is deterministic.
pub fn render_report(snapshot: &MetricsSnapshot, k: usize) -> String {
    let mut ranked: Vec<&MetricEntry> = snapshot.entries.iter().collect();
    ranked.sort_by(|a, b| {
        b.headline()
            .cmp(&a.headline())
            .then_with(|| a.name.cmp(&b.name))
    });
    ranked.truncate(k);
    let name_width = ranked
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(4)
        .max("metric".len());
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>12}  detail\n",
        "metric",
        "cost",
        width = name_width
    ));
    for entry in &ranked {
        let detail = match &entry.value {
            MetricValue::Counter { .. } => "counter".to_string(),
            MetricValue::Gauge { value, peak } => {
                format!("gauge last={value} peak={peak}")
            }
            MetricValue::Histogram { count, sum, .. } => {
                let mean = if *count == 0 { 0 } else { sum / count };
                format!("histogram n={count} mean={mean}")
            }
        };
        out.push_str(&format!(
            "{:<width$}  {:>12}  {detail}\n",
            entry.name,
            entry.headline(),
            width = name_width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Metrics {
        let metrics = Metrics::enabled();
        metrics.add(id::INTERSECT_PRODUCTS, 120);
        metrics.observe(id::INTERSECT_EXPLORED, 120);
        metrics.gauge_set(id::WORKLIST_DEPTH, 3);
        metrics.gauge_set(id::WORKLIST_DEPTH, 1);
        metrics
    }

    #[test]
    fn snapshot_round_trips_through_jsonl() {
        let metrics = sample_registry();
        let snapshot = metrics.snapshot().expect("enabled registry snapshots");
        let jsonl = snapshot.to_jsonl(1234);
        let lines = validate_metrics_jsonl(&jsonl).expect("snapshot validates");
        assert_eq!(lines, snapshot.len() + 1, "entries plus the Meta line");
        let parsed = parse_snapshot(&jsonl).expect("snapshot parses back");
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn parse_rejects_wrong_schema_tag_and_bad_counts() {
        let metrics = sample_registry();
        let jsonl = metrics.snapshot().unwrap().to_jsonl(0);
        let bad_tag = jsonl.replacen(METRICS_SCHEMA_TAG, "dprle-metrics-v0", 1);
        assert!(parse_snapshot(&bad_tag).unwrap_err().contains("schema tag"));
        let truncated: String = jsonl.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse_snapshot(&truncated).unwrap_err().contains("declares"));
        assert!(parse_snapshot("").is_err());
    }

    #[test]
    fn report_ranks_by_headline_cost() {
        let metrics = sample_registry();
        let snapshot = metrics.snapshot().unwrap();
        let report = render_report(&snapshot, 3);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 4, "header plus top 3");
        assert!(
            lines[1].starts_with("automata.intersect.explored_states")
                || lines[1].starts_with("automata.intersect.products"),
            "the 120-cost entries rank first: {report}"
        );
        // Ties (both 120) break by name: explored_states < products.
        assert!(lines[1].starts_with("automata.intersect.explored_states"));
        assert!(lines[2].starts_with("automata.intersect.products"));
    }

    #[test]
    fn budget_reports_unlimited_only_when_empty() {
        assert!(Budget::default().is_unlimited());
        let b = Budget {
            max_product_states: Some(10),
            ..Budget::default()
        };
        assert!(!b.is_unlimited());
        let d = Budget {
            deadline: Some(Duration::from_millis(5)),
            ..Budget::default()
        };
        assert!(!d.is_unlimited());
    }

    #[test]
    fn exhausted_error_displays_kind_and_numbers() {
        let err = ResourceExhausted {
            kind: BudgetKind::ProductStates,
            limit: 100,
            observed: 100,
            snapshot: None,
            stats: SolveStats::default(),
        };
        let msg = err.to_string();
        assert!(msg.contains("product-states"), "{msg}");
        assert!(msg.contains("100"), "{msg}");
        let deadline = ResourceExhausted {
            kind: BudgetKind::Deadline,
            limit: 5000,
            observed: 6200,
            snapshot: None,
            stats: SolveStats::default(),
        };
        assert!(deadline.to_string().contains("us"), "{deadline}");
    }
}
