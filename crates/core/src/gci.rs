//! Generalized concat-intersect: solving whole CI-groups
//! (paper §3.4.3, Figure 8).
//!
//! A CI-group is a connected component of ∘-edges. Its temporaries form a
//! forest; the *roots* (temps that are not operands of another
//! concatenation — the paper's "non-influenced nodes") each denote one big
//! machine built from the group's leaves by concatenation and intersection.
//! The paper maintains a shared pointer-based sub-NFA representation so
//! that updates to a root's machine propagate to the solution views of its
//! leaves. This implementation achieves the same sharing with explicit
//! *provenance*:
//!
//! * Every state of every leaf machine gets a fresh **core id**.
//!   Concatenation preserves core ids; intersection maps each product state
//!   to the core id of its concatenation-side component; trimming renames
//!   states but keeps their cores.
//! * Each concatenation records its **bridge** as the *pair of core ids*
//!   `(final core of the left part, start core of the right part)`. Because
//!   leaf machines are normalized (no out-edges from finals, no in-edges to
//!   starts) and products never add edges, an epsilon edge whose endpoint
//!   cores match a bridge pair is necessarily an instance of that bridge —
//!   the generalized analogue of `Q_lhs × Q_rhs` in Figure 3.
//!
//! A disjunctive solution of a root chooses one epsilon instance per bridge
//! (Figure 8's `all_combinations`); the leaf *segments* between consecutive
//! chosen edges are cut out with `induce_segment`. A leaf that occurs in
//! several segments (the paper's Figure 9 `vb`, which joins two
//! concatenations) receives the **intersection** of its segment languages;
//! combinations where that intersection is empty are rejected.
//!
//! Deviation from the paper, documented in DESIGN.md: for shared leaves the
//! paper keeps only combinations whose per-side machines "match", which on
//! its own Figure 9/10 example yields 2 solutions; intersecting the sides
//! instead validates all 4 combinations (each satisfies every constraint).
//! We return the larger, still-satisfying set.
//!
//! Constant leaves cannot be narrowed by the solver: a combination is kept
//! only if each constant leaf's segment language equals the constant's full
//! language (always true for the string-literal constants produced by the
//! front end, where constants are singleton languages).

use crate::graph::{CiGroup, ConcatEdgePair, DependencyGraph, NodeId, NodeKind};
use crate::ledger::{product_draft, Ledger, QueryOutcome};
use crate::metrics::{id, BudgetKind, Metrics};
use crate::spec::System;
use crate::trace::{TraceEventKind, Tracer};
use dprle_automata::{
    ops, CanonicalKey, InclusionAbort, InclusionLimits, Lang, LangStore, Nfa, StateId,
};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Options controlling group solving.
#[derive(Clone, Debug)]
pub struct GciOptions {
    /// Remove language-equivalent duplicate solutions (quadratic in the
    /// number of solutions, using canonical language fingerprints).
    pub dedup: bool,
    /// Upper bound on the number of disjunctive solutions per group; the
    /// worst case is exponential in the number of bridges (paper §3.5).
    /// `None` means unbounded.
    pub max_disjuncts: Option<usize>,
    /// Minimize every induced segment machine before further processing.
    /// The paper's prototype did *not* minimize and attributes its
    /// Figure 12 `secure` outlier partly to that ("applying NFA
    /// minimization techniques might improve performance"); disabling this
    /// reproduces the prototype's behavior for the ablation study.
    pub minimize_solutions: bool,
    /// Metrics registry the group solve records its operation costs into.
    /// Disabled (no-op) by default. The per-entry set of recording calls
    /// depends only on the entry's inputs, so totals are identical at every
    /// `--jobs N`.
    pub metrics: Metrics,
    /// Per-operation cap on product states explored by one intersection
    /// (paper §3.5). A build whose intersection would materialize more than
    /// this many pairs aborts with [`ProductCapHit`] *before* exceeding it.
    /// The same cap bounds the macrostates of each budgeted inclusion check
    /// (constant-leaf filtering, subsumption pruning) — the inclusion
    /// engines' frontier loops are the other place the paper's exponential
    /// can hide. Deterministic at every `--jobs N`: the check depends only
    /// on the operand machines.
    pub max_product_states: Option<u64>,
    /// Wall-clock deadline for budgeted inclusion checks, forwarded into
    /// the engines' frontier loops. Set by the solver's normalization from
    /// [`crate::metrics::Budget::deadline`]; inherently nondeterministic,
    /// like the worklist-level deadline check.
    pub deadline: Option<Instant>,
    /// Query cost ledger each `intersect_build` product is recorded into.
    /// Disabled (no-op) by default; set by the solver's normalization from
    /// [`crate::solve::SolveOptions::ledger`].
    pub ledger: Ledger,
}

impl Default for GciOptions {
    fn default() -> Self {
        GciOptions {
            dedup: true,
            max_disjuncts: Some(256),
            minimize_solutions: true,
            metrics: Metrics::disabled(),
            max_product_states: None,
            deadline: None,
            ledger: Ledger::disabled(),
        }
    }
}

impl GciOptions {
    /// The limits handed to every budgeted inclusion check this group
    /// solve performs.
    fn inclusion_limits(&self) -> InclusionLimits {
        InclusionLimits {
            max_macrostates: self.max_product_states,
            deadline: self.deadline,
        }
    }
}

/// Deterministic cost totals of one [`solve_group`] call, charged against
/// the solver's cumulative [`crate::metrics::Budget`] by the driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCost {
    /// Product states explored by the group's intersection constructions.
    pub product_states: u64,
    /// States of the returned solution machines (the states the solver
    /// keeps live when it branches on the disjuncts).
    pub states_built: u64,
}

impl GroupCost {
    fn add_products(&self, cell: &Cell<u64>) -> GroupCost {
        GroupCost {
            product_states: self.product_states + cell.get(),
            states_built: self.states_built,
        }
    }
}

/// A solved group: its disjunctive solutions plus the cost totals.
#[derive(Clone, Debug)]
pub struct GroupOutcome {
    /// Disjunctive solutions; empty means the group is unsatisfiable.
    pub solutions: Vec<GroupSolution>,
    /// Deterministic cost of producing them.
    pub cost: GroupCost,
}

/// A group solve aborted: one intersection or budgeted inclusion check hit
/// a per-operation limit. For [`BudgetKind::ProductStates`] at most `limit`
/// product states (or inclusion macrostates) were materialized by the
/// aborting operation; for [`BudgetKind::Deadline`] an inclusion frontier
/// loop observed the wall-clock deadline (the driver recomputes the
/// elapsed/limit micros itself, so `limit` is zero here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProductCapHit {
    /// Which budget dimension was breached.
    pub kind: BudgetKind,
    /// The configured per-operation cap (zero for deadline breaches).
    pub limit: u64,
    /// Cost accumulated by the group before the abort.
    pub cost: GroupCost,
}

/// Maps an engine-level abort to the group-level error the driver handles.
fn abort_to_cap_hit(abort: &InclusionAbort, cost: GroupCost) -> ProductCapHit {
    match abort {
        InclusionAbort::MacrostateCap { limit, .. } => ProductCapHit {
            kind: BudgetKind::ProductStates,
            limit: *limit,
            cost,
        },
        InclusionAbort::Deadline { .. } => ProductCapHit {
            kind: BudgetKind::Deadline,
            limit: 0,
            cost,
        },
    }
}

/// One disjunctive solution for a group: a language handle per *leaf*
/// vertex (variables and constants; temporaries are interior and omitted).
/// Handles are cheap to clone, so merging a solution into many worklist
/// branches shares the underlying machines.
pub type GroupSolution = BTreeMap<NodeId, Lang>;

/// Solves one CI-group: returns the disjunctive solutions for its leaves.
///
/// `leaf_machines` must contain, for every non-temp vertex of the group,
/// the machine to use for that leaf — for variables, Σ* already intersected
/// with the variable's inbound subset constants (the paper's
/// *operation-ordering* invariant: subset constraints are processed before
/// concatenation constraints); for constants, the constant's machine.
///
/// An empty return value means the group is unsatisfiable (some root's
/// intersection machine is empty, or every combination was rejected).
///
/// When `tracer` is enabled the call is bracketed by `CiGroupStart` /
/// `CiGroupEnd` events and every returned solution is reported as a
/// `GciDisjunct` (so the event count equals the disjunct count the solver
/// branches on), carrying the group's bridge count, the solution's total
/// leaf states, and a hash of its canonical language fingerprints.
///
/// Returns `Err` when an intersection hits
/// [`GciOptions::max_product_states`]; the `CiGroupEnd` event is still
/// emitted (with zero disjuncts) so traces stay well-bracketed.
pub fn solve_group(
    graph: &DependencyGraph,
    group: &CiGroup,
    system: &System,
    leaf_machines: &BTreeMap<NodeId, Lang>,
    options: &GciOptions,
    store: &LangStore,
    tracer: &Tracer,
) -> Result<GroupOutcome, ProductCapHit> {
    tracer.emit(|| TraceEventKind::CiGroupStart {
        group: group.index,
        nodes: group.nodes.iter().map(|n| n.index() as u32).collect(),
        bridges: group.num_bridges(),
    });
    let result = solve_group_inner(graph, group, system, leaf_machines, options, store, tracer);
    let solutions: &[GroupSolution] = match &result {
        Ok(outcome) => &outcome.solutions,
        Err(_) => &[],
    };
    if options.metrics.is_enabled() {
        for sol in solutions {
            let states: usize = sol.values().map(Lang::num_states).sum();
            options
                .metrics
                .observe(id::GCI_DISJUNCT_STATES, states as u64);
        }
    }
    if tracer.is_enabled() {
        for sol in solutions {
            let states: usize = sol.values().map(Lang::num_states).sum();
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            for (node, lang) in sol {
                node.index().hash(&mut hasher);
                store.key_of(lang).hash(&mut hasher);
            }
            let fingerprint = hasher.finish();
            tracer.emit(|| TraceEventKind::GciDisjunct {
                group: group.index,
                bridge_eps: group.num_bridges(),
                states,
                fingerprint,
            });
        }
    }
    let disjuncts = solutions.len();
    tracer.emit(|| TraceEventKind::CiGroupEnd {
        group: group.index,
        disjuncts,
    });
    result
}

fn solve_group_inner(
    graph: &DependencyGraph,
    group: &CiGroup,
    system: &System,
    leaf_machines: &BTreeMap<NodeId, Lang>,
    options: &GciOptions,
    store: &LangStore,
    tracer: &Tracer,
) -> Result<GroupOutcome, ProductCapHit> {
    let cap = options
        .max_product_states
        .map_or(usize::MAX, |v| usize::try_from(v).unwrap_or(usize::MAX));
    let builder = GroupBuilder {
        graph,
        group,
        system,
        leaf_machines,
        metrics: &options.metrics,
        ledger: &options.ledger,
        cap,
        product_states: Cell::new(0),
    };
    let mut cost = GroupCost::default();
    let roots = match builder.build_roots() {
        Ok(Some(roots)) => roots,
        // Some root machine is empty: no solutions.
        Ok(None) => {
            return Ok(GroupOutcome {
                solutions: Vec::new(),
                cost: cost.add_products(&builder.product_states),
            })
        }
        Err(CapHit) => {
            return Err(ProductCapHit {
                kind: BudgetKind::ProductStates,
                limit: options.max_product_states.unwrap_or(u64::MAX),
                cost: cost.add_products(&builder.product_states),
            })
        }
    };
    cost = cost.add_products(&builder.product_states);

    let unsat = |cost: GroupCost| {
        Ok(GroupOutcome {
            solutions: Vec::new(),
            cost,
        })
    };

    // Enumerate per-root candidate solutions (choices of bridge edges).
    let mut per_root: Vec<Vec<RootSolution>> = Vec::with_capacity(roots.len());
    {
        let _enumerate_span = tracer.span("enumerate", None, Some(group.index));
        for root in &roots {
            let candidates = enumerate_root(
                root,
                options.max_disjuncts,
                options.minimize_solutions,
                store,
            );
            if candidates.is_empty() {
                return unsat(cost);
            }
            per_root.push(candidates);
        }
    }

    // Cartesian product across roots, merging shared leaves by
    // intersection.
    let mut solutions: Vec<GroupSolution> = vec![GroupSolution::new()];
    for candidates in &per_root {
        let mut next = Vec::new();
        for partial in &solutions {
            for candidate in candidates {
                if let Some(merged) = merge(partial, candidate, store) {
                    next.push(merged);
                }
                if let Some(cap) = options.max_disjuncts {
                    if next.len() >= cap {
                        break;
                    }
                }
            }
        }
        solutions = next;
        if solutions.is_empty() {
            return unsat(cost);
        }
    }

    // Reject combinations that narrow a constant leaf: constants are not
    // assignable, so their induced language must be their full language.
    // Each check is a budgeted inclusion query: the engine's frontier loop
    // honors the same per-operation cap (and deadline) as the product
    // builds, so a blowup hiding in the subset judgment aborts the group
    // instead of running away.
    let limits = options.inclusion_limits();
    {
        let mut kept = Vec::with_capacity(solutions.len());
        for sol in solutions {
            let mut holds = true;
            for (node, machine) in &sol {
                if let NodeKind::Const(c) = graph.kind(*node) {
                    match store.try_is_subset(system.const_lang(c), machine, &limits) {
                        Ok(included) => {
                            if !included {
                                holds = false;
                                break;
                            }
                        }
                        Err(abort) => return Err(abort_to_cap_hit(&abort, cost)),
                    }
                }
            }
            if holds {
                kept.push(sol);
            }
        }
        solutions = kept;
    }

    if options.dedup {
        // A leaf is *linear* when it occupies exactly one segment across all
        // roots; unioning a linear leaf across two otherwise-equal solutions
        // is sound because every constraint sees it once.
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for root in &roots {
            for leaf in &root.segments {
                *counts.entry(*leaf).or_insert(0) += 1;
            }
        }
        let linear: Vec<NodeId> = counts
            .iter()
            .filter_map(|(n, c)| (*c == 1).then_some(*n))
            .collect();
        let _minimize_span = tracer.span("minimize", None, Some(group.index));
        solutions = minimize(solutions, &linear, store, &options.metrics, &limits)
            .map_err(|abort| abort_to_cap_hit(&abort, cost))?;
    }
    cost.states_built = solutions
        .iter()
        .flat_map(|sol| sol.values())
        .map(|lang| lang.num_states() as u64)
        .sum();
    Ok(GroupOutcome { solutions, cost })
}

/// A candidate solution for one root: ordered `(leaf, segment language)`
/// pairs.
type RootSolution = Vec<(NodeId, Lang)>;

fn merge(
    partial: &GroupSolution,
    candidate: &RootSolution,
    store: &LangStore,
) -> Option<GroupSolution> {
    let mut out = partial.clone();
    for (node, machine) in candidate {
        match out.get(node) {
            None => {
                out.insert(*node, machine.clone());
            }
            Some(existing) => {
                let both = store.intersect(existing, machine);
                if both.is_empty_language() {
                    return None;
                }
                out.insert(*node, both);
            }
        }
    }
    Some(out)
}

/// Removes language-equivalent duplicates, widens solutions by merging
/// pairs that differ only at one *linear* leaf (unioning that leaf — sound
/// because every constraint sees a linear leaf exactly once, and union
/// distributes over concatenation), and finally removes solutions
/// *subsumed* pointwise by another (they add no coverage; see
/// `ci::minimal_solutions`).
fn minimize(
    solutions: Vec<GroupSolution>,
    linear: &[NodeId],
    store: &LangStore,
    metrics: &Metrics,
    limits: &InclusionLimits,
) -> Result<Vec<GroupSolution>, InclusionAbort> {
    let deduped = dedup(solutions, store);
    let merged = merge_linear(deduped, linear, store, metrics);
    prune_subsumed(merged, store, limits)
}

fn dedup(solutions: Vec<GroupSolution>, store: &LangStore) -> Vec<Keyed> {
    let mut out: Vec<Keyed> = Vec::with_capacity(solutions.len());
    for s in solutions {
        let k = Keyed::new(s, store);
        if !out.iter().any(|t| t.keys == k.keys) {
            out.push(k);
        }
    }
    out
}

/// A group solution paired with per-node canonical language fingerprints,
/// so equality and merge checks avoid repeated complement constructions.
/// Fingerprints come from the store: a handle shared across solutions (the
/// common case after intersection-merging) is canonicalized once.
struct Keyed {
    sol: GroupSolution,
    keys: BTreeMap<NodeId, Arc<CanonicalKey>>,
}

impl Keyed {
    fn new(sol: GroupSolution, store: &LangStore) -> Keyed {
        let keys = sol.iter().map(|(n, m)| (*n, store.key_of(m))).collect();
        Keyed { sol, keys }
    }
}

/// Additive merge closure over linear leaves (see [`minimize`]); originals
/// are kept so one solution can feed several maximal merges, and the
/// subsumption prune removes dominated entries afterwards.
fn merge_linear(
    mut sols: Vec<Keyed>,
    linear: &[NodeId],
    store: &LangStore,
    metrics: &Metrics,
) -> Vec<Keyed> {
    const MAX_ADDED: usize = 64;
    let mut added = 0;
    let mut changed = true;
    while changed && added < MAX_ADDED {
        changed = false;
        'pairs: for i in 0..sols.len() {
            for j in (i + 1)..sols.len() {
                let Some(candidate) = try_merge(&sols[i], &sols[j], linear, store, metrics) else {
                    continue;
                };
                if !sols.iter().any(|t| t.keys == candidate.keys) {
                    sols.push(candidate);
                    added += 1;
                    changed = true;
                    break 'pairs;
                }
            }
        }
    }
    sols
}

/// If `a` and `b` agree (language-equivalent) on every node except exactly
/// one linear node, returns the widened solution unioning that node.
fn try_merge(
    a: &Keyed,
    b: &Keyed,
    linear: &[NodeId],
    store: &LangStore,
    metrics: &Metrics,
) -> Option<Keyed> {
    if a.keys.len() != b.keys.len() {
        return None;
    }
    let mut difference: Option<NodeId> = None;
    for (node, ka) in &a.keys {
        let kb = b.keys.get(node)?;
        if ka != kb {
            if difference.is_some() {
                return None; // differs at two nodes
            }
            difference = Some(*node);
        }
    }
    let node = difference?;
    if !linear.contains(&node) {
        return None;
    }
    let mut sol = a.sol.clone();
    let union = ops::union(&a.sol[&node], &b.sol[&node]);
    metrics.add(id::UNION_STATES, union.num_states() as u64);
    let widened = store.minimized(&Lang::new(union));
    sol.insert(node, widened);
    Some(Keyed::new(sol, store))
}

/// Keeps only solutions not pointwise contained in another solution. Every
/// containment test is a budgeted inclusion query (same per-operation
/// limits as the product builds).
fn prune_subsumed(
    out: Vec<Keyed>,
    store: &LangStore,
    limits: &InclusionLimits,
) -> Result<Vec<GroupSolution>, InclusionAbort> {
    let mut keep = vec![true; out.len()];
    for i in 0..out.len() {
        for (j, other) in out.iter().enumerate() {
            if i == j || !keep[j] || other.keys.len() != out[i].keys.len() {
                continue;
            }
            let mut subsumed = true;
            for (node, machine) in &out[i].sol {
                let contained = match other.sol.get(node) {
                    Some(big) => store.try_is_subset(machine, big, limits)?,
                    None => false,
                };
                if !contained {
                    subsumed = false;
                    break;
                }
            }
            if subsumed {
                keep[i] = false;
                break;
            }
        }
    }
    Ok(out
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s.sol))
        .collect())
}

// ---------------------------------------------------------------------
// Root construction with core provenance
// ---------------------------------------------------------------------

/// A root machine under construction: the NFA plus, for every state, the
/// *core id* of the leaf-skeleton state it descends from.
struct Build {
    nfa: Nfa,
    core: Vec<u32>,
    /// Leaf vertex per segment, left to right.
    segments: Vec<NodeId>,
    /// Bridge core pairs; `bridges[k]` joins `segments[k]` and
    /// `segments[k+1]`.
    bridges: Vec<(u32, u32)>,
}

impl Build {
    fn single_final(&self) -> StateId {
        self.nfa.single_final()
    }
}

/// Marker error: a build's intersection hit the product-state cap.
struct CapHit;

struct GroupBuilder<'a> {
    graph: &'a DependencyGraph,
    group: &'a CiGroup,
    system: &'a System,
    leaf_machines: &'a BTreeMap<NodeId, Lang>,
    metrics: &'a Metrics,
    ledger: &'a Ledger,
    /// Per-operation product-state cap (`usize::MAX` when unbudgeted).
    cap: usize,
    /// Product states explored so far across this builder's intersections.
    product_states: Cell<u64>,
}

impl GroupBuilder<'_> {
    /// Builds the machine for every root temp of the group. `Ok(None)`
    /// means some root's language is empty; `Err(CapHit)` means an
    /// intersection hit the product-state cap.
    fn build_roots(&self) -> Result<Option<Vec<Build>>, CapHit> {
        let edges: Vec<&ConcatEdgePair> = self
            .group
            .edge_indices
            .iter()
            .map(|&i| &self.graph.concat_edges()[i])
            .collect();
        let is_operand = |n: NodeId| edges.iter().any(|e| e.left == n || e.right == n);
        let mut roots = Vec::new();
        let mut next_core = 0u32;
        for e in &edges {
            if !is_operand(e.target) {
                match self.build_node(e.target, &edges, &mut next_core)? {
                    Some(build) => roots.push(build),
                    None => return Ok(None),
                }
            }
        }
        Ok(Some(roots))
    }

    fn build_node(
        &self,
        node: NodeId,
        edges: &[&ConcatEdgePair],
        next_core: &mut u32,
    ) -> Result<Option<Build>, CapHit> {
        let mut build = match self.graph.kind(node) {
            NodeKind::Temp(_) => {
                let e = edges
                    .iter()
                    .find(|e| e.target == node)
                    .expect("every temp in a group is a concat target");
                let Some(left) = self.build_node(e.left, edges, next_core)? else {
                    return Ok(None);
                };
                let Some(right) = self.build_node(e.right, edges, next_core)? else {
                    return Ok(None);
                };
                let joined = concat_builds(left, right);
                self.metrics
                    .add(id::CONCAT_STATES, joined.nfa.num_states() as u64);
                joined
            }
            NodeKind::Var(_) | NodeKind::Const(_) => {
                let machine = self
                    .leaf_machines
                    .get(&node)
                    .expect("leaf machine supplied for every group leaf")
                    .normalize();
                let n = machine.num_states();
                let core: Vec<u32> = (*next_core..*next_core + n as u32).collect();
                *next_core += n as u32;
                Build {
                    nfa: machine,
                    core,
                    segments: vec![node],
                    bridges: Vec::new(),
                }
            }
        };
        // Operation ordering (paper invariant 1): this node's own inbound
        // subset constraints are applied before its result feeds any parent
        // concatenation. Leaf variables already come pre-intersected; temp
        // constraints are applied here.
        if matches!(self.graph.kind(node), NodeKind::Temp(_)) {
            for source in self.graph.inbound_subset_sources(node) {
                let NodeKind::Const(c) = self.graph.kind(source) else {
                    unreachable!("subset-edge sources are constants in the Figure 2 grammar");
                };
                match self.intersect_build(build, self.system.const_machine(c))? {
                    Some(next) => build = next,
                    None => return Ok(None),
                }
            }
        }
        Ok(Some(build))
    }

    /// Intersects a build with a constraint machine, mapping cores through
    /// the product and trimming. `Ok(None)` when the result is empty;
    /// `Err(CapHit)` when the product would exceed the cap (at most `cap`
    /// product states were materialized).
    fn intersect_build(&self, build: Build, constraint: &Nfa) -> Result<Option<Build>, CapHit> {
        let constraint = constraint.normalize();
        // The clock is read only when the ledger is enabled, preserving the
        // zero-cost-when-disabled contract.
        let started = self.ledger.is_enabled().then(Instant::now);
        let wall = |started: Option<Instant>| {
            started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
            })
        };
        let Some(product) = ops::try_intersect(&build.nfa, &constraint, self.cap) else {
            self.product_states
                .set(self.product_states.get() + self.cap as u64);
            self.ledger.record(|| {
                product_draft(
                    &build.nfa,
                    &constraint,
                    QueryOutcome::Exhausted,
                    self.cap as u64,
                    0,
                    wall(started),
                )
            });
            return Err(CapHit);
        };
        let explored = product.pairs.len();
        self.product_states
            .set(self.product_states.get() + explored as u64);
        let core: Vec<u32> = product
            .pairs
            .iter()
            .map(|&(left, _)| build.core[left.index()])
            .collect();
        let (trimmed, old_of_new) = product.nfa.trim();
        self.metrics.add(id::INTERSECT_PRODUCTS, explored as u64);
        self.metrics
            .observe(id::INTERSECT_EXPLORED, explored as u64);
        self.metrics
            .observe(id::INTERSECT_REACHABLE, trimmed.num_states() as u64);
        if trimmed.finals().is_empty() {
            self.ledger.record(|| {
                product_draft(
                    &build.nfa,
                    &constraint,
                    QueryOutcome::Empty,
                    explored as u64,
                    0,
                    wall(started),
                )
            });
            return Ok(None);
        }
        self.ledger.record(|| {
            product_draft(
                &build.nfa,
                &constraint,
                QueryOutcome::Built,
                explored as u64,
                trimmed.num_states() as u64,
                wall(started),
            )
        });
        let core = old_of_new.iter().map(|old| core[old.index()]).collect();
        Ok(Some(Build {
            nfa: trimmed,
            core,
            segments: build.segments,
            bridges: build.bridges,
        }))
    }
}

/// Concatenates two builds with a fresh epsilon bridge, preserving cores.
fn concat_builds(left: Build, right: Build) -> Build {
    let mut nfa = left.nfa.clone();
    let offset = nfa.num_states() as u32;
    for _ in 0..right.nfa.num_states() {
        nfa.add_state();
    }
    for (from, class, to) in right.nfa.edges() {
        nfa.add_edge(StateId(from.0 + offset), class, StateId(to.0 + offset));
    }
    for (from, to) in right.nfa.eps_edges() {
        nfa.add_eps(StateId(from.0 + offset), StateId(to.0 + offset));
    }
    let left_final = left.nfa.single_final();
    let right_start = StateId(right.nfa.start().0 + offset);
    nfa.add_eps(left_final, right_start);
    nfa.set_single_final(StateId(right.nfa.single_final().0 + offset));

    let mut core = left.core.clone();
    core.extend(right.core.iter().copied());

    let bridge = (
        left.core[left_final.index()],
        right.core[right.nfa.start().index()],
    );
    let mut bridges = left.bridges;
    bridges.push(bridge);
    bridges.extend(right.bridges);

    let mut segments = left.segments;
    segments.extend(right.segments);

    Build {
        nfa,
        core,
        segments,
        bridges,
    }
}

// ---------------------------------------------------------------------
// Solution enumeration
// ---------------------------------------------------------------------

/// Enumerates the candidate solutions of one root: every combination of one
/// epsilon instance per bridge whose induced segments are all nonempty.
fn enumerate_root(
    root: &Build,
    cap: Option<usize>,
    minimize: bool,
    store: &LangStore,
) -> Vec<RootSolution> {
    // Candidate epsilon instances per bridge, identified by core pairs.
    let mut candidates: Vec<Vec<(StateId, StateId)>> = vec![Vec::new(); root.bridges.len()];
    for (from, to) in root.nfa.eps_edges() {
        let pair = (root.core[from.index()], root.core[to.index()]);
        for (k, bridge) in root.bridges.iter().enumerate() {
            if *bridge == pair {
                candidates[k].push((from, to));
            }
        }
    }
    let mut out = Vec::new();
    let mut chosen: Vec<(StateId, StateId)> = Vec::with_capacity(root.bridges.len());
    enumerate_rec(
        root,
        &candidates,
        &mut chosen,
        &mut out,
        cap,
        minimize,
        store,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec(
    root: &Build,
    candidates: &[Vec<(StateId, StateId)>],
    chosen: &mut Vec<(StateId, StateId)>,
    out: &mut Vec<RootSolution>,
    cap: Option<usize>,
    minimize: bool,
    store: &LangStore,
) {
    if let Some(cap) = cap {
        if out.len() >= cap {
            return;
        }
    }
    let k = chosen.len();
    if k == candidates.len() {
        // All bridges chosen; cut out every segment.
        let mut solution = Vec::with_capacity(root.segments.len());
        for (i, &leaf) in root.segments.iter().enumerate() {
            let start = if i == 0 {
                root.nfa.start()
            } else {
                chosen[i - 1].1
            };
            let final_ = if i == root.segments.len() - 1 {
                root.single_final()
            } else {
                chosen[i].0
            };
            let machine = root.nfa.induce_segment(start, final_);
            if machine.is_empty_language() {
                return; // incompatible choice combination
            }
            store.note_materialized(machine.num_states());
            let machine = Lang::new(machine);
            let machine = if minimize {
                store.minimized(&machine)
            } else {
                machine
            };
            solution.push((leaf, machine));
        }
        out.push(solution);
        return;
    }
    for &edge in &candidates[k] {
        // Early pruning: the segment ending at this bridge must be
        // nonempty given the previous choice.
        let seg_start = if k == 0 {
            root.nfa.start()
        } else {
            chosen[k - 1].1
        };
        if root
            .nfa
            .induce_segment(seg_start, edge.0)
            .is_empty_language()
        {
            continue;
        }
        chosen.push(edge);
        enumerate_rec(root, candidates, chosen, out, cap, minimize, store);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::spec::{Expr, System};
    use dprle_automata::{equivalent, is_subset, Nfa};
    use dprle_regex::Regex;

    fn exact(pattern: &str) -> Nfa {
        Regex::new(pattern)
            .expect("pattern compiles")
            .exact_language()
            .clone()
    }

    /// Helper: build the graph, collect leaf machines (vars pre-intersected
    /// with their plain subset constraints), and solve the single group.
    fn solve_single_group(sys: &System) -> Vec<GroupSolution> {
        let graph = DependencyGraph::from_system(sys);
        let groups = graph.ci_groups();
        assert_eq!(groups.len(), 1, "test systems have one group");
        let group = &groups[0];
        let store = LangStore::new();
        let mut leaf_machines = BTreeMap::new();
        for &node in &group.nodes {
            match graph.kind(node) {
                NodeKind::Var(_) => {
                    let mut m = Nfa::sigma_star();
                    for source in graph.inbound_subset_sources(node) {
                        if let NodeKind::Const(c) = graph.kind(source) {
                            m = ops::intersect_lang(&m, sys.const_machine(c));
                        }
                    }
                    leaf_machines.insert(node, Lang::new(m));
                }
                NodeKind::Const(c) => {
                    leaf_machines.insert(node, sys.const_lang(c).clone());
                }
                NodeKind::Temp(_) => {}
            }
        }
        solve_group(
            &graph,
            group,
            sys,
            &leaf_machines,
            &GciOptions::default(),
            &store,
            &Tracer::disabled(),
        )
        .expect("no product-state cap set")
        .solutions
    }

    /// The §3.1.1 two-variable system (one temp, so `intersect_build` runs).
    fn simple_system() -> System {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", exact("x(yy)+"));
        let c2 = sys.constant("c2", exact("(yy)*z"));
        let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
        sys
    }

    fn solve_single_group_with(
        sys: &System,
        options: &GciOptions,
    ) -> Result<GroupOutcome, ProductCapHit> {
        let graph = DependencyGraph::from_system(sys);
        let groups = graph.ci_groups();
        assert_eq!(groups.len(), 1, "test systems have one group");
        let group = &groups[0];
        let store = LangStore::new();
        let mut leaf_machines = BTreeMap::new();
        for &node in &group.nodes {
            match graph.kind(node) {
                NodeKind::Var(_) => {
                    let mut m = Nfa::sigma_star();
                    for source in graph.inbound_subset_sources(node) {
                        if let NodeKind::Const(c) = graph.kind(source) {
                            m = ops::intersect_lang(&m, sys.const_machine(c));
                        }
                    }
                    leaf_machines.insert(node, Lang::new(m));
                }
                NodeKind::Const(c) => {
                    leaf_machines.insert(node, sys.const_lang(c).clone());
                }
                NodeKind::Temp(_) => {}
            }
        }
        solve_group(
            &graph,
            group,
            sys,
            &leaf_machines,
            options,
            &store,
            &Tracer::disabled(),
        )
    }

    #[test]
    fn product_cap_aborts_before_exceeding_the_limit() {
        let sys = simple_system();
        let tight = GciOptions {
            max_product_states: Some(1),
            ..GciOptions::default()
        };
        let hit = solve_single_group_with(&sys, &tight).expect_err("cap of 1 must trip");
        assert_eq!(hit.limit, 1);
        assert!(hit.cost.product_states >= 1);
        // The same system solves cleanly with the cap lifted, and reports
        // a nonzero deterministic cost.
        let outcome =
            solve_single_group_with(&sys, &GciOptions::default()).expect("uncapped solves");
        assert_eq!(outcome.solutions.len(), 2);
        assert!(outcome.cost.product_states > 0);
        assert!(outcome.cost.states_built > 0);
    }

    #[test]
    fn group_solve_records_into_an_installed_registry() {
        let sys = simple_system();
        let metrics = Metrics::enabled();
        let options = GciOptions {
            metrics: metrics.clone(),
            ..GciOptions::default()
        };
        let outcome = solve_single_group_with(&sys, &options).expect("solves");
        let snapshot = metrics.snapshot().expect("enabled registry");
        let products = snapshot
            .get("automata.intersect.products")
            .expect("recorded")
            .headline();
        assert_eq!(products, outcome.cost.product_states);
        let disjuncts = snapshot
            .get("core.gci.disjunct_states")
            .expect("recorded")
            .headline();
        assert_eq!(disjuncts, outcome.cost.states_built);
        assert!(
            snapshot
                .get("automata.concat.states")
                .expect("recorded")
                .headline()
                > 0
        );
    }

    #[test]
    fn simple_ci_group_matches_ci_algorithm() {
        // v1 ⊆ x(yy)+, v2 ⊆ (yy)*z, v1·v2 ⊆ xyyz|xyyyyz — §3.1.1.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", exact("x(yy)+"));
        let c2 = sys.constant("c2", exact("(yy)*z"));
        let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
        let graph = DependencyGraph::from_system(&sys);
        let n1 = graph.var_node(v1);
        let n2 = graph.var_node(v2);
        let solutions = solve_single_group(&sys);
        assert_eq!(solutions.len(), 2, "two disjunctive solutions");
        let a1 = solutions
            .iter()
            .find(|s| s[&n1].contains(b"xyy") && !s[&n1].contains(b"xyyyy"))
            .expect("A1");
        assert!(a1[&n2].contains(b"z") && a1[&n2].contains(b"yyz"));
        let a2 = solutions
            .iter()
            .find(|s| s[&n1].contains(b"xyyyy"))
            .expect("A2");
        assert!(a2[&n2].contains(b"z") && !a2[&n2].contains(b"yyz"));
    }

    #[test]
    fn figure9_shared_variable_group() {
        // va·vb ⊆ c1, vb·vc ⊆ c2 with the paper's Figure 9 languages.
        let mut sys = System::new();
        let va = sys.var("va");
        let vb = sys.var("vb");
        let vc = sys.var("vc");
        let ca = sys.constant("ca", exact("o(pp)+"));
        let cb = sys.constant("cb", exact("p*(qq)+"));
        let cc = sys.constant("cc", exact("q*r"));
        let c1 = sys.constant("c1", exact("op{5}q*"));
        let c2 = sys.constant("c2", exact("p*q{4}r"));
        sys.require(Expr::Var(va), ca);
        sys.require(Expr::Var(vb), cb);
        sys.require(Expr::Var(vc), cc);
        sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
        sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

        let graph = DependencyGraph::from_system(&sys);
        let (na, nb, nc) = (graph.var_node(va), graph.var_node(vb), graph.var_node(vc));
        let solutions = solve_single_group(&sys);
        // The paper reports A1 = [va↦op², vb↦p³q², vc↦q²r] and
        // A2 = [va↦op⁴, vb↦pq², vc↦q²r]; intersection-merging additionally
        // validates the two cross combinations (see module docs).
        assert!(
            solutions.len() >= 2 && solutions.len() <= 4,
            "got {}",
            solutions.len()
        );
        let a1 = solutions
            .iter()
            .find(|s| s[&na].contains(b"opp") && s[&nc].contains(b"qqr"))
            .expect("paper's A1 present");
        assert!(a1[&nb].contains(b"pppqq"));
        let a2 = solutions
            .iter()
            .find(|s| s[&na].contains(b"opppp") && s[&nc].contains(b"qqr"))
            .expect("paper's A2 present");
        assert!(a2[&nb].contains(b"pqq"));
        // Every solution satisfies both concatenation constraints.
        for s in &solutions {
            let t1 = ops::concat(&s[&na], &s[&nb]).nfa;
            assert!(is_subset(&t1, sys.const_machine(c1)));
            let t2 = ops::concat(&s[&nb], &s[&nc]).nfa;
            assert!(is_subset(&t2, sys.const_machine(c2)));
        }
    }

    #[test]
    fn constant_operand_is_not_narrowed() {
        // c2·v1 ⊆ c3 (the motivating example): the constant keeps its full
        // language and v1 gets the exploit language.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c1 = sys.constant_regex("c1", "[\\d]+$").expect("filter");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant_regex("c3", "'").expect("quote");
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        let graph = DependencyGraph::from_system(&sys);
        let n1 = graph.var_node(v1);
        let solutions = solve_single_group(&sys);
        assert_eq!(solutions.len(), 1);
        let v1_lang = &solutions[0][&n1];
        assert!(v1_lang.contains(b"' OR 1=1 ; DROP news --9"));
        assert!(!v1_lang.contains(b"1234"));
        // The constant leaf keeps exactly its language.
        let nc2 = graph.const_node(c2);
        assert!(equivalent(&solutions[0][&nc2], sys.const_machine(c2)));
    }

    #[test]
    fn nested_concatenation_tower() {
        // (v1·v2)·v3 ⊆ c4 with per-variable constraints (paper §3.4.3's
        // nested example shape).
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let c1 = sys.constant("c1", exact("a+"));
        let c2 = sys.constant("c2", exact("b+"));
        let c3 = sys.constant("c3", exact("c+"));
        let c4 = sys.constant("c4", exact("aabbcc"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v3), c3);
        sys.require(
            Expr::Var(v1).concat(Expr::Var(v2)).concat(Expr::Var(v3)),
            c4,
        );
        let graph = DependencyGraph::from_system(&sys);
        let solutions = solve_single_group(&sys);
        assert_eq!(solutions.len(), 1);
        let s = &solutions[0];
        assert!(s[&graph.var_node(v1)].contains(b"aa"));
        assert!(s[&graph.var_node(v2)].contains(b"bb"));
        assert!(s[&graph.var_node(v3)].contains(b"cc"));
        assert!(!s[&graph.var_node(v1)].contains(b"a"));
    }

    #[test]
    fn unsatisfiable_group_returns_no_solutions() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let ca = sys.constant("ca", exact("a+"));
        let cb = sys.constant("cb", exact("b+"));
        let cc = sys.constant("cc", exact("c+"));
        sys.require(Expr::Var(v1), ca);
        sys.require(Expr::Var(v2), cb);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), cc);
        assert!(solve_single_group(&sys).is_empty());
    }

    #[test]
    fn self_concatenation_intersects_both_occurrences() {
        // v·v ⊆ abab|cdcd with v ⊆ ab|cd: v must work in both positions, so
        // each solution is {ab} or {cd}, never {ab, cd}.
        let mut sys = System::new();
        let v = sys.var("v");
        let cv = sys.constant("cv", exact("ab|cd"));
        let cc = sys.constant("cc", exact("abab|cdcd"));
        sys.require(Expr::Var(v), cv);
        sys.require(Expr::Var(v).concat(Expr::Var(v)), cc);
        let graph = DependencyGraph::from_system(&sys);
        let nv = graph.var_node(v);
        let solutions = solve_single_group(&sys);
        assert!(!solutions.is_empty());
        for s in &solutions {
            let vv = ops::concat(&s[&nv], &s[&nv]).nfa;
            assert!(is_subset(&vv, sys.const_machine(cc)));
            // {ab, cd} would give abcd ∉ cc; intersection-merging prevents it.
            assert!(!(s[&nv].contains(b"ab") && s[&nv].contains(b"cd")));
        }
    }
}
