//! # dprle-core
//!
//! The DPRLE decision procedure: a solver for systems of **subset
//! constraints over regular languages**, reproducing Hooimeijer & Weimer,
//! *A Decision Procedure for Subset Constraints over Regular Languages*
//! (PLDI 2009).
//!
//! Given constraints of the form `e ⊆ c` — where `e` concatenates regular
//! language *variables* and *constants* and `c` is a constant — the solver
//! returns *maximal, possibly disjunctive* satisfying assignments of
//! regular languages to the variables (the **Regular Matching Assignments**
//! problem, §3.1 of the paper).
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 / Fig. 2 — constraint language, RMA | [`spec`], [`solution`] |
//! | §3.2 / Fig. 3 — Concatenation–Intersection | [`ci`] |
//! | §3.4.1 / Fig. 5 — dependency graphs | [`graph`] |
//! | §3.4.2 / Fig. 7 — worklist solver | [`solve`] |
//! | §3.4.3 / Fig. 8 — generalized concat-intersect | [`gci`] |
//!
//! ## Example: the paper's SQL-injection query
//!
//! ```
//! use dprle_core::{solve, Expr, SolveOptions, System};
//! use dprle_automata::Nfa;
//!
//! let mut sys = System::new();
//! let v1 = sys.var("posted_newsid");
//! // Line 2 of the vulnerable code: the faulty filter /[\d]+$/ (missing ^).
//! let c1 = sys.constant_regex("filter", "[\\d]+$")?;
//! // Line 6: $newsid = "nid_" . $newsid.
//! let c2 = sys.constant("nid_", Nfa::literal(b"nid_"));
//! // The attack policy: the value reaching the query contains a quote.
//! let c3 = sys.constant_regex("unsafe", "'")?;
//! sys.require(Expr::Var(v1), c1);
//! sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
//!
//! let solution = solve(&sys, &SolveOptions::default());
//! let exploit = solution.first().expect("vulnerable").witness(v1).expect("nonempty");
//! assert!(exploit.contains(&b'\''));          // injects a quote…
//! assert!(exploit.last().unwrap().is_ascii_digit()); // …and passes the filter
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod ci;
pub mod gci;
pub mod graph;
pub mod incremental;
pub mod ledger;
pub mod metrics;
pub mod parallel;
pub mod schema;
pub mod solution;
pub mod solve;
pub mod spec;
pub mod trace;
pub mod unsat_core;

pub use bounded::{solve_bounded, BoundedOptions, BoundedSolution};
pub use ci::{
    concat_intersect, concat_intersect_full, dedup_solutions, minimal_solutions, CiRun, CiSolution,
};
pub use gci::{GciOptions, GroupCost, GroupOutcome, ProductCapHit};
pub use graph::{DependencyGraph, NodeId, NodeKind};
pub use incremental::Solver;
pub use ledger::{
    parse_ledger, render_diff, render_model, render_top, render_top_by_request,
    validate_ledger_jsonl, CollectLedger, DiffOptions, DiffReport, Ledger, LedgerRecord,
    LedgerSink, MemoStatus, QueryKind, QueryOutcome, LEDGER_SCHEMA,
};
pub use metrics::{
    parse_snapshot, render_report, validate_metrics_jsonl, Budget, BudgetKind, MetricEntry,
    MetricValue, Metrics, MetricsSnapshot, ResourceExhausted, METRICS_SCHEMA,
};
pub use parallel::ParallelSolver;
pub use schema::{json_string, lookup, schema_kinds, validate_jsonl, Json};
pub use solution::{Assignment, Solution};
pub use solve::{
    satisfies_system, satisfies_with, solve, solve_first, solve_traced, solve_with_stats,
    solve_with_store, solver_graph, try_solve_traced, SolveOptions, SolveStats,
};
// Re-exported so downstream crates (CLI, bench) can select an inclusion
// engine without depending on dprle-automata directly.
pub use dprle_automata::EngineKind;
pub use spec::{ConstId, Constraint, Expr, System, VarId};
pub use trace::{
    check_well_nested, parse_jsonl, provenance_dot, CollectSink, JsonlSink, NullSink, PhaseRow,
    SpanGuard, TeeSink, TraceEvent, TraceEventKind, TraceReport, TraceSink, Tracer,
    TracerStoreObserver, TRACE_SCHEMA,
};
pub use unsat_core::{unsat_core, unsat_core_traced, UnsatCore};
