//! Branch-parallel worklist exploration with a deterministic merge.
//!
//! The sequential worklist (Figure 7; [`solve`](crate::solve())) is strictly
//! *level-synchronous*: every queue entry at group index `g` is processed
//! before any entry at `g + 1`, because each pop enqueues only `g + 1`
//! children at the back of a FIFO queue. Within a level the entries are
//! independent partial assignments over disjoint CI-groups, so they can run
//! on any thread in any order — the only shared mutable state is the
//! [`LangStore`] memo layer, which is internally synchronized and
//! *value-deterministic*: every memo slot's representative is the same value
//! no matter which thread computes it first (minimization is canonical per
//! language, see [`dprle_automata::minimize`], and products of deterministic
//! operands are deterministic).
//!
//! This module exploits that: each level's entries are distributed to a
//! scoped thread pool (workers pull the next branch from a shared cursor —
//! a single shared deque, so the load balances like work stealing without
//! per-thread queues), and the results are then **replayed in the
//! sequential order** (the lexicographic order of branch paths, which is
//! exactly the order entries occupy within a level). The replay:
//!
//! - appends each entry's buffered trace events to the parent journal in
//!   order ([`Tracer::fork_buffered`] / [`Tracer::absorb_events`]), so span
//!   ids and sequence numbers match the sequential run exactly;
//! - rewrites each buffered `MemoHit`/`MemoMiss` outcome to the outcome the
//!   *sequential* run would have observed: within a level, the first touch
//!   of a memo slot (identified by [`MemoIdentity`]) in replay order is the
//!   miss — provided the slot was computed during this level at all; slots
//!   computed in earlier levels or pre-populated by earlier solves are hits
//!   everywhere, in both runs;
//! - accumulates the branch counters and re-simulates the sequential
//!   queue-length trajectory, so `peak_worklist` and the `depth` field of
//!   `WorklistBranch` events are scheduling-independent;
//! - applies `max_assignments` by truncating the replay of the final
//!   (branch-completion) level, discarding the speculative work past the
//!   cap — completing a branch touches no memo state, so the speculation
//!   never leaks into the stats.
//!
//! The result: solutions, statistics, and trace journals are byte-identical
//! to the sequential solver's (timestamps aside) for every thread count.
//! The `determinism` CI job and `tests/parallel_determinism.rs` enforce
//! this equivalence on the full corpus.

// `HashSet<MemoIdentity>` trips clippy's `mutable_key_type`: a
// `MemoIdentity` holds a `Lang`, whose interior fingerprint cache is a
// `OnceLock`. The lint is a false positive here — `MemoIdentity`'s
// `Hash`/`Eq` go through the handle *address* and immutable
// `Arc<CanonicalKey>`s only, never through the mutable cell.
#![allow(clippy::mutable_key_type)]

use crate::gci::{solve_group, GroupOutcome, ProductCapHit};
use crate::graph::{CiGroup, DependencyGraph, NodeId};
use crate::ledger::{
    collect_computed_costs, draft_from_inclusion, replay_drafts, Ledger, LedgerDraft,
    LedgerSlotGuard,
};
use crate::metrics::id;
use crate::solution::{Assignment, Solution};
use crate::solve::{
    cap_hit_breach, charge_entry_cost, check_deadline, finish_branch, Breach, BudgetTrack,
    SolveOptions, SolveStats,
};
use crate::spec::{Constraint, System};
use crate::trace::{TraceEvent, TraceEventKind, Tracer};
use dprle_automata::{InclusionQuery, Lang, LangStore, MemoIdentity, StoreObserver, StoreOp};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A handle that runs the solver with a fixed worker count. Thin
/// convenience over [`SolveOptions::jobs`]: `ParallelSolver::new(n)` solves
/// exactly like [`solve`](crate::solve()) with `options.jobs = n` — same
/// solutions in the same order, same statistics, same trace journal
/// (timestamps aside). `new(1)` *is* the sequential solver.
#[derive(Clone, Copy, Debug)]
pub struct ParallelSolver {
    jobs: usize,
}

impl ParallelSolver {
    /// A solver driving the worklist with `jobs` worker threads (clamped to
    /// at least 1).
    pub fn new(jobs: usize) -> ParallelSolver {
        ParallelSolver { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Solves `system` with this solver's worker count (other options from
    /// `options`; its `jobs` field is overridden).
    pub fn solve(&self, system: &System, options: &SolveOptions) -> Solution {
        self.solve_with_stats(system, options).0
    }

    /// Like [`ParallelSolver::solve`], additionally returning statistics.
    pub fn solve_with_stats(
        &self,
        system: &System,
        options: &SolveOptions,
    ) -> (Solution, SolveStats) {
        let store = LangStore::interning(options.interning);
        self.solve_traced(system, options, &store, &Tracer::disabled())
    }

    /// Like [`solve_traced`](crate::solve_traced), with this solver's
    /// worker count.
    pub fn solve_traced(
        &self,
        system: &System,
        options: &SolveOptions,
        store: &LangStore,
        tracer: &Tracer,
    ) -> (Solution, SolveStats) {
        let mut options = options.clone();
        options.jobs = self.jobs;
        crate::solve::solve_traced(system, &options, store, tracer)
    }
}

/// Everything one worklist entry needs, borrowed from `solve_prepared`.
pub(crate) struct WorklistCtx<'a> {
    pub system: &'a System,
    pub graph: &'a DependencyGraph,
    pub groups: &'a [CiGroup],
    pub leaf: &'a BTreeMap<NodeId, Lang>,
    pub options: &'a SolveOptions,
    pub original: &'a System,
    pub verify_constraints: &'a [Constraint],
    pub store: &'a LangStore,
    pub tracer: &'a Tracer,
}

/// What one group-level entry produced: its group outcome (disjunctive
/// solutions plus deterministic cost, or a product-cap breach) plus the
/// trace events (and their memo-slot identities) buffered while computing
/// them. Costs and breaches are *charged* only at the entry's replay
/// position, so budget accounting is identical to the sequential run.
struct EntryOutcome {
    result: Result<GroupOutcome, ProductCapHit>,
    events: Vec<TraceEvent>,
    ids: Vec<Option<MemoIdentity>>,
    ledger: Vec<LedgerDraft>,
}

/// What one completed branch produced.
struct FinishOutcome {
    assignment: Option<Assignment>,
    events: Vec<TraceEvent>,
    ids: Vec<Option<MemoIdentity>>,
    ledger: Vec<LedgerDraft>,
}

// ---------------------------------------------------------------------
// Store-observer routing
// ---------------------------------------------------------------------

type IdBuffer = Rc<RefCell<Vec<Option<MemoIdentity>>>>;

thread_local! {
    /// The active worker slot: while a thread processes one worklist entry
    /// it routes memo events (and their slot identities) into the entry's
    /// private buffers instead of the parent tracer.
    static WORKER_SLOT: RefCell<Option<(Tracer, IdBuffer)>> = const { RefCell::new(None) };
}

/// A [`StoreObserver`] that emits `MemoHit`/`MemoMiss` to the thread's
/// active worker buffer when one is installed, and to the main tracer
/// otherwise. With no worker slots in play (sequential runs, the reduce
/// phase) this behaves exactly like
/// [`TracerStoreObserver`](crate::trace::TracerStoreObserver).
///
/// When the run carries an enabled [`Ledger`], the observer additionally
/// reports every answered inclusion query into it; the ledger does its own
/// worker-slot routing (see [`LedgerSlotGuard`]), mirroring the trace path.
pub(crate) struct RoutedStoreObserver {
    main: Tracer,
    ledger: Ledger,
}

impl RoutedStoreObserver {
    pub(crate) fn new(main: Tracer, ledger: Ledger) -> RoutedStoreObserver {
        RoutedStoreObserver { main, ledger }
    }
}

fn memo_kind(op: StoreOp, hit: bool) -> TraceEventKind {
    if hit {
        TraceEventKind::MemoHit {
            op: op.name().to_owned(),
        }
    } else {
        TraceEventKind::MemoMiss {
            op: op.name().to_owned(),
        }
    }
}

impl StoreObserver for RoutedStoreObserver {
    fn memo_event(&self, op: StoreOp, hit: bool) {
        self.memo_event_keyed(op, None, hit);
    }

    fn memo_event_keyed(&self, op: StoreOp, identity: Option<&MemoIdentity>, hit: bool) {
        WORKER_SLOT.with(|slot| match &*slot.borrow() {
            Some((tracer, ids)) => {
                ids.borrow_mut().push(identity.cloned());
                tracer.emit(|| memo_kind(op, hit));
            }
            None => self.main.emit(|| memo_kind(op, hit)),
        });
    }

    fn wants_queries(&self) -> bool {
        self.ledger.is_enabled()
    }

    fn inclusion_query(&self, query: &InclusionQuery<'_>) {
        self.ledger.record(|| draft_from_inclusion(query));
    }
}

/// Installs the worker slot for the duration of one entry; removes it on
/// drop (also on unwind, so a panicking worker cannot leak its slot into
/// later entries on the same thread).
struct SlotGuard;

impl SlotGuard {
    fn install(tracer: &Tracer, ids: &IdBuffer) -> Option<SlotGuard> {
        if !tracer.is_enabled() {
            return None;
        }
        WORKER_SLOT.with(|slot| {
            *slot.borrow_mut() = Some((tracer.clone(), ids.clone()));
        });
        Some(SlotGuard)
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        WORKER_SLOT.with(|slot| {
            *slot.borrow_mut() = None;
        });
    }
}

// ---------------------------------------------------------------------
// The level pool
// ---------------------------------------------------------------------

/// Runs `f(0..n)` on up to `jobs` scoped worker threads pulling indices
/// from a shared cursor, returning the results in index order. Falls back
/// to an inline loop when one worker (or one item) makes threads pointless.
fn map_level<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // The spawner's request-scoped stats scope is thread-local, so it does
    // not propagate into the pool on its own: capture it here and install
    // it once per worker. Scoped counters are atomic and adds commute, so
    // totals stay byte-identical at every jobs count.
    let stats_scope = dprle_automata::current_stats_scope();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _stats_guard = stats_scope.clone().map(dprle_automata::install_stats_scope);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().expect("level slot") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("level slot")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

fn solve_level_entry(ctx: &WorklistCtx<'_>, gi: usize) -> EntryOutcome {
    let (fork, sink) = ctx.tracer.fork_buffered();
    let ids: IdBuffer = Rc::default();
    let guard = SlotGuard::install(&fork, &ids);
    let ledger_guard = ctx
        .options
        .ledger
        .is_enabled()
        .then(LedgerSlotGuard::install);
    let result = {
        let _gci_span = fork.span("gci", None, Some(gi));
        solve_group(
            ctx.graph,
            &ctx.groups[gi],
            ctx.system,
            ctx.leaf,
            &ctx.options.gci,
            ctx.store,
            &fork,
        )
    };
    let ledger = ledger_guard
        .map(LedgerSlotGuard::finish)
        .unwrap_or_default();
    drop(guard);
    EntryOutcome {
        result,
        events: sink.map(|s| s.take()).unwrap_or_default(),
        ids: Rc::try_unwrap(ids)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
        ledger,
    }
}

fn finish_level_entry(ctx: &WorklistCtx<'_>, partial: &BTreeMap<NodeId, Lang>) -> FinishOutcome {
    let (fork, sink) = ctx.tracer.fork_buffered();
    let ids: IdBuffer = Rc::default();
    let guard = SlotGuard::install(&fork, &ids);
    let ledger_guard = ctx
        .options
        .ledger
        .is_enabled()
        .then(LedgerSlotGuard::install);
    let assignment = finish_branch(
        ctx.system,
        ctx.graph,
        ctx.leaf,
        partial,
        ctx.options,
        ctx.original,
        ctx.verify_constraints,
        &fork,
        ctx.groups.len(),
    );
    let ledger = ledger_guard
        .map(LedgerSlotGuard::finish)
        .unwrap_or_default();
    drop(guard);
    FinishOutcome {
        assignment,
        events: sink.map(|s| s.take()).unwrap_or_default(),
        ids: Rc::try_unwrap(ids)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
        ledger,
    }
}

// ---------------------------------------------------------------------
// Deterministic replay
// ---------------------------------------------------------------------

/// Collects the memo slots that were *computed* (actually missed) anywhere
/// in this level. A slot absent from this set was either computed in an
/// earlier level or pre-populated by an earlier solve — in both cases the
/// sequential run hits it too, so its events need no rewriting.
fn collect_computed<'a>(
    items: impl Iterator<Item = (&'a [TraceEvent], &'a [Option<MemoIdentity>])>,
    computed: &mut HashSet<MemoIdentity>,
) {
    for (events, ids) in items {
        let mut k = 0usize;
        for event in events {
            match &event.kind {
                TraceEventKind::MemoMiss { .. } => {
                    if let Some(Some(id)) = ids.get(k) {
                        computed.insert(id.clone());
                    }
                    k += 1;
                }
                TraceEventKind::MemoHit { .. } => k += 1,
                _ => {}
            }
        }
    }
}

/// Replays one entry's buffered events into the parent journal, rewriting
/// memo outcomes to the sequential ones: for each slot computed during
/// this level, the first touch in replay order becomes the miss and every
/// later touch a hit. Slot-less events (pass-through stores) keep their
/// recorded outcome — with no cache, every operation deterministically
/// misses.
fn replay_entry_events(
    parent: &Tracer,
    mut events: Vec<TraceEvent>,
    ids: &[Option<MemoIdentity>],
    computed: &HashSet<MemoIdentity>,
    seen: &mut HashSet<MemoIdentity>,
) {
    let mut k = 0usize;
    for event in &mut events {
        let op = match &event.kind {
            TraceEventKind::MemoHit { op } | TraceEventKind::MemoMiss { op } => op.clone(),
            _ => continue,
        };
        if let Some(Some(id)) = ids.get(k) {
            let hit = seen.contains(id) || !computed.contains(id);
            seen.insert(id.clone());
            event.kind = memo_kind_named(op, hit);
        }
        k += 1;
    }
    parent.absorb_events(events);
}

fn memo_kind_named(op: String, hit: bool) -> TraceEventKind {
    if hit {
        TraceEventKind::MemoHit { op }
    } else {
        TraceEventKind::MemoMiss { op }
    }
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// Drives the worklist with `jobs` workers, producing the assignments in
/// the sequential order and updating `stats` exactly as the sequential
/// loop would. Called from `solve_prepared` when `options.jobs > 1`.
///
/// Budget accounting happens at replay positions only, so breaches are
/// raised at the same worklist entry as in the sequential run. The workers
/// may already have computed (and recorded metrics for) level-mates of the
/// breaching entry — that speculative work is discarded here, but an
/// error-path metrics *snapshot* can include it (documented on
/// [`try_solve_traced`](crate::solve::try_solve_traced)).
pub(crate) fn drive_worklist(
    ctx: &WorklistCtx<'_>,
    jobs: usize,
    stats: &mut SolveStats,
    track: &mut BudgetTrack,
) -> Result<Vec<Assignment>, Breach> {
    let metrics = &ctx.options.metrics;
    // The simulated sequential queue length: one seed entry, then
    // `-1` per pop and `+1` per push, replayed in sequential order.
    let mut sim_len = 1usize;
    stats.peak_worklist = stats.peak_worklist.max(sim_len);
    metrics.gauge_set(id::WORKLIST_DEPTH, sim_len as u64);

    let mut level: Vec<BTreeMap<NodeId, Lang>> = vec![BTreeMap::new()];
    for gi in 0..ctx.groups.len() {
        if level.is_empty() {
            break; // every branch died; the sequential queue drains too
        }
        let results = map_level(jobs, level.len(), |_entry| solve_level_entry(ctx, gi));
        let mut computed = HashSet::new();
        collect_computed(
            results
                .iter()
                .map(|r| (r.events.as_slice(), r.ids.as_slice())),
            &mut computed,
        );
        // The ledger replay mirrors the trace replay exactly: per level,
        // gather the engine cost of every memo slot computed here, then
        // rewrite each entry's drafts in sequential order (first touch of
        // a level-computed slot = the miss, carrying its cost).
        let mut ledger_costs = HashMap::new();
        collect_computed_costs(
            results.iter().map(|r| r.ledger.as_slice()),
            &mut ledger_costs,
        );
        let mut ledger_seen = HashSet::new();
        let mut seen = HashSet::new();
        let mut next: Vec<BTreeMap<NodeId, Lang>> = Vec::new();
        for (partial, result) in level.iter().zip(results) {
            sim_len -= 1;
            metrics.gauge_set(id::WORKLIST_DEPTH, sim_len as u64);
            check_deadline(ctx.options, track)?;
            replay_entry_events(ctx.tracer, result.events, &result.ids, &computed, &mut seen);
            replay_drafts(
                &ctx.options.ledger,
                result.ledger,
                &ledger_costs,
                &mut ledger_seen,
            );
            let outcome = match result.result {
                Ok(outcome) => outcome,
                Err(hit) => {
                    stats.product_states += hit.cost.product_states;
                    metrics.add(id::SOLVE_PRODUCT_STATES, hit.cost.product_states);
                    return Err(cap_hit_breach(&hit, ctx.options, track));
                }
            };
            charge_entry_cost(&outcome.cost, ctx.options, stats, track)?;
            let disjuncts = outcome.solutions;
            if ctx.options.trace {
                stats.events.push(format!(
                    "group {} produced {} disjunctive solution(s)",
                    gi,
                    disjuncts.len()
                ));
            }
            stats.group_disjuncts += disjuncts.len();
            if disjuncts.is_empty() {
                ctx.tracer.emit(|| TraceEventKind::WorklistPrune {
                    group: gi,
                    reason: "group-unsat".to_owned(),
                });
            }
            for disjunct in disjuncts {
                let mut extended = partial.clone();
                extended.extend(disjunct);
                next.push(extended);
                sim_len += 1;
                stats.peak_worklist = stats.peak_worklist.max(sim_len);
                metrics.gauge_set(id::WORKLIST_DEPTH, sim_len as u64);
                ctx.tracer.emit(|| TraceEventKind::WorklistBranch {
                    group: gi,
                    depth: sim_len,
                });
            }
        }
        level = next;
    }

    // Completion level: convert and filter every surviving branch. Branch
    // completion performs no store operations, so running branches past
    // `max_assignments` speculatively costs wall time on the workers but
    // cannot perturb any counter — the truncated replay below discards
    // everything past the cap, matching the sequential early exit.
    let results = map_level(jobs, level.len(), |i| finish_level_entry(ctx, &level[i]));
    let mut computed = HashSet::new();
    collect_computed(
        results
            .iter()
            .map(|r| (r.events.as_slice(), r.ids.as_slice())),
        &mut computed,
    );
    let mut ledger_costs = HashMap::new();
    collect_computed_costs(
        results.iter().map(|r| r.ledger.as_slice()),
        &mut ledger_costs,
    );
    let mut ledger_seen = HashSet::new();
    let mut seen = HashSet::new();
    let mut produced: Vec<Assignment> = Vec::new();
    for result in results {
        sim_len = sim_len.saturating_sub(1);
        metrics.gauge_set(id::WORKLIST_DEPTH, sim_len as u64);
        check_deadline(ctx.options, track)?;
        stats.branches_completed += 1;
        replay_entry_events(ctx.tracer, result.events, &result.ids, &computed, &mut seen);
        replay_drafts(
            &ctx.options.ledger,
            result.ledger,
            &ledger_costs,
            &mut ledger_seen,
        );
        match result.assignment {
            Some(assignment) => {
                produced.push(assignment);
                if let Some(cap) = ctx.options.max_assignments {
                    if produced.len() >= cap {
                        break;
                    }
                }
            }
            None => stats.branches_filtered += 1,
        }
    }
    Ok(produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_traced;
    use crate::spec::Expr;
    use crate::trace::CollectSink;
    use dprle_regex::Regex;
    use std::sync::Arc;

    /// Two branching CI-groups — the worklist genuinely fans out, so the
    /// journal exercises the buffered-fork replay (see the solve.rs tests
    /// for the sequential expectations on this system).
    fn branching_system() -> System {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let v4 = sys.var("v4");
        let re = |p: &str| {
            Regex::new(p)
                .expect("pattern compiles")
                .exact_language()
                .clone()
        };
        let cx = sys.constant("cx", re("x(yy)+"));
        let cy = sys.constant("cy", re("(yy)*z"));
        let ct = sys.constant("ct", re("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), cx);
        sys.require(Expr::Var(v2), cy);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), ct);
        sys.require(Expr::Var(v3), cx);
        sys.require(Expr::Var(v4), cy);
        sys.require(Expr::Var(v3).concat(Expr::Var(v4)), ct);
        sys
    }

    /// Solves a fresh instance of the branching system at the given worker
    /// count and returns the journal as JSONL lines with timestamps zeroed
    /// (the only field scheduling may legitimately change).
    fn journal(jobs: usize, options: &SolveOptions) -> Vec<String> {
        let sys = branching_system();
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        let store = LangStore::interning(options.interning);
        let opts = SolveOptions {
            jobs,
            ..options.clone()
        };
        let _ = solve_traced(&sys, &opts, &store, &tracer);
        sink.take()
            .into_iter()
            .map(|mut e| {
                e.ts_us = 0;
                e.to_json()
            })
            .collect()
    }

    #[test]
    fn journals_are_byte_identical_across_thread_counts() {
        let opts = SolveOptions::default();
        let baseline = journal(1, &opts);
        assert!(
            baseline
                .iter()
                .any(|l| l.contains("\"kind\":\"WorklistBranch\"")),
            "system must branch for the test to mean anything"
        );
        assert!(
            baseline
                .iter()
                .any(|l| l.contains("\"kind\":\"MemoHit\"") || l.contains("\"kind\":\"MemoMiss\"")),
            "memo traffic must appear for the rewrite to be exercised"
        );
        for jobs in [2, 4, 8] {
            assert_eq!(journal(jobs, &opts), baseline, "jobs={jobs}");
        }
    }

    /// Solves a fresh instance of the branching system at the given worker
    /// count with the ledger enabled and returns the records as JSONL with
    /// `ts_us` zeroed (the only field scheduling may legitimately change).
    fn ledger_lines(jobs: usize, options: &SolveOptions) -> Vec<String> {
        let sys = branching_system();
        let sink = Arc::new(crate::ledger::CollectLedger::new());
        let opts = SolveOptions {
            jobs,
            ledger: Ledger::new(sink.clone()),
            ..options.clone()
        };
        let store = LangStore::interning(opts.interning);
        let _ = solve_traced(&sys, &opts, &store, &Tracer::disabled());
        sink.take()
            .into_iter()
            .map(|mut r| {
                r.ts_us = 0;
                r.to_json()
            })
            .collect()
    }

    #[test]
    fn ledgers_are_byte_identical_across_thread_counts() {
        let opts = SolveOptions::default();
        let baseline = ledger_lines(1, &opts);
        assert!(
            baseline
                .iter()
                .any(|l| l.contains("\"kind\":\"Inclusion\"")),
            "inclusion queries must appear for the test to mean anything"
        );
        assert!(
            baseline.iter().any(|l| l.contains("\"kind\":\"Product\"")),
            "product builds must appear for the test to mean anything"
        );
        assert!(
            baseline.iter().any(|l| l.contains("\"memo\":\"hit\""))
                && baseline.iter().any(|l| l.contains("\"memo\":\"miss\"")),
            "memo traffic must appear for the replay rewrite to be exercised"
        );
        for jobs in [2, 4, 8] {
            assert_eq!(ledger_lines(jobs, &opts), baseline, "jobs={jobs}");
        }
    }

    #[test]
    fn journals_match_under_max_assignments_cap() {
        let opts = SolveOptions {
            max_assignments: Some(2),
            ..SolveOptions::default()
        };
        let baseline = journal(1, &opts);
        for jobs in [4, 8] {
            assert_eq!(journal(jobs, &opts), baseline, "jobs={jobs}");
        }
    }

    #[test]
    fn map_level_preserves_index_order() {
        let squares = map_level(4, 37, |i| i * i);
        assert_eq!(squares, (0..37).map(|i| i * i).collect::<Vec<_>>());
        let inline = map_level(1, 5, |i| i + 1);
        assert_eq!(inline, vec![1, 2, 3, 4, 5]);
        let empty: Vec<usize> = map_level(8, 0, |i| i);
        assert!(empty.is_empty());
    }
}
