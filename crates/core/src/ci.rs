//! The Concatenation–Intersection (CI) problem and its algorithm
//! (paper §3.2, Figure 3).
//!
//! A CI instance is the fixed-shape system
//!
//! ```text
//! v₁ ⊆ c₁      v₂ ⊆ c₂      v₁ · v₂ ⊆ c₃
//! ```
//!
//! The algorithm builds `M₄ = M₁ · M₂` (with a single epsilon bridge),
//! intersects with `M₃` to get `M₅`, and slices `M₅` at every epsilon
//! transition descending from the bridge: each such edge `(q_a, q_b)` with
//! `q_a ∈ Q_lhs = {f₁q′}` and `q_b ∈ Q_rhs = {s₂q′}` yields one disjunctive
//! solution `[v₁ ↦ induce_from_final(M₅, q_a), v₂ ↦ induce_from_start(M₅,
//! q_b)]`.
//!
//! The three correctness properties the paper mechanizes in Coq — Regular,
//! Satisfying, and All-Solutions — are encoded as executable property tests
//! in this crate's test suite (see `tests/theorem_properties.rs` at the
//! workspace root and the unit tests below).

use dprle_automata::{equivalent, ops, CanonicalKey, Lang, Nfa, StateId};
use std::sync::Arc;

/// One disjunctive solution of a CI instance: a pair of regular languages
/// for `v₁` and `v₂`, held as shared [`Lang`] handles (cloning a solution
/// shares the machines, and canonical fingerprints computed during
/// dedup/subsumption stay cached on the handles).
#[derive(Clone, Debug)]
pub struct CiSolution {
    /// Assignment for the left variable.
    pub v1: Lang,
    /// Assignment for the right variable.
    pub v2: Lang,
}

/// The full output of a CI run, exposing the intermediate machines
/// (paper Figure 4 shows these for the running example).
#[derive(Clone, Debug)]
pub struct CiRun {
    /// `M₄ = M₁ · M₂`, the concatenation machine (Figure 3, line 6).
    pub m4: Nfa,
    /// `M₅ = M₄ ∩ M₃` (Figure 3, lines 7–8).
    pub m5: Nfa,
    /// Product states whose left component is `f₁` (Figure 3, line 10).
    pub qlhs: Vec<StateId>,
    /// Product states whose left component is `s₂` (Figure 3, line 11).
    pub qrhs: Vec<StateId>,
    /// The disjunctive solutions, one per bridge epsilon edge whose induced
    /// machines are both nonempty.
    pub solutions: Vec<CiSolution>,
    /// NFA states visited, the paper's §3.5 cost metric: the concatenation
    /// machine plus the product construction plus one pass over `M₅` per
    /// extracted solution (`|M₄| + |M₅| + #solutions·|M₅|`).
    pub states_visited: usize,
}

/// Solves the CI instance `(c₁, c₂, c₃)`, returning the set of disjunctive
/// solutions. Solutions whose `v₁` or `v₂` language is empty are rejected
/// (Figure 3 discussion: "if either M₁′ or M₂′ describe the empty language,
/// then we reject that assignment").
///
/// # Examples
///
/// ```
/// use dprle_automata::Nfa;
/// use dprle_core::ci::concat_intersect;
///
/// // v1 ⊆ ab*, v2 ⊆ b*c, v1·v2 ⊆ ab*c — one maximal solution.
/// use dprle_core::ci::minimal_solutions;
/// use dprle_regex::Regex;
/// let c1 = Regex::new("^ab*$")?.exact_language().clone();
/// let c2 = Regex::new("^b*c$")?.exact_language().clone();
/// let c3 = Regex::new("^ab*c$")?.exact_language().clone();
/// let solutions = minimal_solutions(concat_intersect(&c1, &c2, &c3));
/// assert_eq!(solutions.len(), 1);
/// assert!(solutions[0].v1.contains(b"ab"));
/// assert!(solutions[0].v2.contains(b"c"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn concat_intersect(c1: &Nfa, c2: &Nfa, c3: &Nfa) -> Vec<CiSolution> {
    concat_intersect_full(c1, c2, c3).solutions
}

/// Like [`concat_intersect`] but also returns the intermediate machines and
/// the `Q_lhs`/`Q_rhs` state sets.
pub fn concat_intersect_full(c1: &Nfa, c2: &Nfa, c3: &Nfa) -> CiRun {
    // Without loss of generality each machine has a single start and final
    // state (paper §3.2); `normalize` supplies the generality.
    let cat = ops::concat(c1, c2);
    let (f1, s2) = cat.bridge;
    let m3 = c3.normalize();
    let product = ops::intersect(&cat.nfa, &m3);
    let m5 = &product.nfa;

    let qlhs: Vec<StateId> = m5
        .state_ids()
        .filter(|q| product.pairs[q.index()].0 == f1)
        .collect();
    let qrhs: Vec<StateId> = m5
        .state_ids()
        .filter(|q| product.pairs[q.index()].0 == s2)
        .collect();

    // Enumerate bridge epsilon edges q_a → q_b with q_a ∈ Q_lhs, q_b ∈ Q_rhs
    // (Figure 3, line 12: (q_a, q_b) with q_b ∈ δ₅(q_a, ε)).
    let mut solutions = Vec::new();
    for &qa in &qlhs {
        for &qb in &m5.state(qa).eps {
            if product.pairs[qb.index()].0 != s2 {
                continue;
            }
            let v1 = m5.induce_from_final(qa);
            if v1.is_empty_language() {
                continue;
            }
            let v2 = m5.induce_from_start(qb);
            if v2.is_empty_language() {
                continue;
            }
            solutions.push(CiSolution {
                v1: v1.into(),
                v2: v2.into(),
            });
        }
    }
    let m5_states = product.nfa.num_states();
    let states_visited = cat.nfa.num_states() + m5_states + solutions.len() * m5_states;
    CiRun {
        m4: cat.nfa,
        m5: product.nfa.clone(),
        qlhs,
        qrhs,
        solutions,
        states_visited,
    }
}

/// Removes solutions that are language-equivalent duplicates of earlier
/// ones. Distinct bridge edges can induce identical language pairs; callers
/// that enumerate *unique* satisfying assignments (paper §3.1) use this.
///
/// Cost: O(n²) language-equivalence checks; intended for the modest
/// solution counts the procedure produces (bounded by |M₃|, paper §3.5).
pub fn dedup_solutions(solutions: Vec<CiSolution>) -> Vec<CiSolution> {
    let mut out: Vec<CiSolution> = Vec::with_capacity(solutions.len());
    for s in solutions {
        let dup = out
            .iter()
            .any(|t| equivalent(&s.v1, &t.v1) && equivalent(&s.v2, &t.v2));
        if !dup {
            out.push(s);
        }
    }
    out
}

/// Deduplicates and then removes *subsumed* solutions: a solution whose
/// languages are pointwise contained in another solution's languages covers
/// nothing the other does not, so dropping it preserves the All-Solutions
/// property while keeping the output maximal.
///
/// (Distinct bridge instances induced by epsilon chains inside normalized
/// machines often split one paper-level solution into a maximal disjunct
/// plus strictly weaker shards; this reassembles the paper's output.)
pub fn minimal_solutions(solutions: Vec<CiSolution>) -> Vec<CiSolution> {
    // Work on minimized machines with canonical language keys: equality
    // checks become Vec comparisons and inclusion checks stay small.
    let keyed: Vec<Keyed> = solutions
        .into_iter()
        .map(|s| {
            Keyed::new(CiSolution {
                v1: Lang::new(dprle_automata::minimize(&s.v1)),
                v2: Lang::new(dprle_automata::minimize(&s.v2)),
            })
        })
        .collect();
    let mut sols: Vec<Keyed> = Vec::with_capacity(keyed.len());
    for s in keyed {
        if !sols.iter().any(|t| t.k1 == s.k1 && t.k2 == s.k2) {
            sols.push(s);
        }
    }
    let sols = merge_keyed(sols);
    let mut keep = vec![true; sols.len()];
    for i in 0..sols.len() {
        for (j, other) in sols.iter().enumerate() {
            if i == j || !keep[j] {
                continue;
            }
            if dprle_automata::is_subset(&sols[i].sol.v1, &other.sol.v1)
                && dprle_automata::is_subset(&sols[i].sol.v2, &other.sol.v2)
            {
                keep[i] = false;
                break;
            }
        }
    }
    sols.into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s.sol))
        .collect()
}

/// A CI solution with canonical language fingerprints for both sides. The
/// fingerprints come from the handles' interior caches, so a language that
/// survives into several merge candidates is canonicalized once.
struct Keyed {
    sol: CiSolution,
    k1: Arc<CanonicalKey>,
    k2: Arc<CanonicalKey>,
}

impl Keyed {
    fn new(sol: CiSolution) -> Keyed {
        let k1 = sol.v1.fingerprint();
        let k2 = sol.v2.fingerprint();
        Keyed { sol, k1, k2 }
    }
}

/// Merges solution pairs that agree on one side by unioning the other
/// side, to a fixpoint.
///
/// Soundness: if `(X, Y₁)` and `(X, Y₂)` both satisfy the CI constraints
/// then so does `(X, Y₁ ∪ Y₂)`, because concatenation distributes over
/// union and `v₁`, `v₂` are distinct variables. Merging widens individual
/// disjuncts toward the paper's *maximal* assignments without changing
/// their union (All-Solutions coverage is preserved).
fn merge_keyed(mut sols: Vec<Keyed>) -> Vec<Keyed> {
    // Additive closure: merged solutions are *added* (originals stay, so a
    // solution can contribute to several maximal merges); the subsequent
    // subsumption prune removes the now-dominated originals. Capped to keep
    // degenerate inputs from blowing up.
    const MAX_ADDED: usize = 64;
    let mut added = 0;
    let mut changed = true;
    while changed && added < MAX_ADDED {
        changed = false;
        'pairs: for i in 0..sols.len() {
            for j in (i + 1)..sols.len() {
                let candidate = if sols[i].k1 == sols[j].k1 {
                    CiSolution {
                        v1: sols[i].sol.v1.clone(),
                        v2: Lang::new(dprle_automata::minimize(&ops::union(
                            &sols[i].sol.v2,
                            &sols[j].sol.v2,
                        ))),
                    }
                } else if sols[i].k2 == sols[j].k2 {
                    CiSolution {
                        v1: Lang::new(dprle_automata::minimize(&ops::union(
                            &sols[i].sol.v1,
                            &sols[j].sol.v1,
                        ))),
                        v2: sols[i].sol.v2.clone(),
                    }
                } else {
                    continue;
                };
                let candidate = Keyed::new(candidate);
                let fresh = !sols
                    .iter()
                    .any(|t| t.k1 == candidate.k1 && t.k2 == candidate.k2);
                if fresh {
                    sols.push(candidate);
                    added += 1;
                    changed = true;
                    break 'pairs;
                }
            }
        }
    }
    sols
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_automata::{is_subset, ByteClass};

    fn digits() -> ByteClass {
        ByteClass::range(b'0', b'9')
    }

    /// The running example (paper §2 / Figure 4): c₁ = "nid_",
    /// c₂ = Σ*[0-9] (the faulty filter), c₃ = Σ*'Σ* (contains a quote).
    fn running_example() -> (Nfa, Nfa, Nfa) {
        let c1 = Nfa::literal(b"nid_");
        let c2 = ops::concat(&Nfa::sigma_star(), &Nfa::class(digits())).nfa;
        let c3 = ops::concat(
            &ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"'")).nfa,
            &Nfa::sigma_star(),
        )
        .nfa;
        (c1, c2, c3)
    }

    #[test]
    fn figure4_worked_example() {
        let (c1, c2, c3) = running_example();
        let run = concat_intersect_full(&c1, &c2, &c3);
        let solutions = minimal_solutions(run.solutions);
        assert_eq!(solutions.len(), 1, "paper finds exactly one solution");
        let s = &solutions[0];
        // [v1'] = L(nid_), as desired.
        assert!(equivalent(&s.v1, &Nfa::literal(b"nid_")));
        // [v2'] = strings that contain a quote and end with a digit.
        assert!(s.v2.contains(b"' OR 1=1 ; DROP news --9"));
        assert!(s.v2.contains(b"'9"));
        assert!(!s.v2.contains(b"123")); // no quote
        assert!(!s.v2.contains(b"'abc")); // no trailing digit
    }

    #[test]
    fn solutions_are_satisfying() {
        // Theorem statement 2 (Satisfying) on the running example.
        let (c1, c2, c3) = running_example();
        for s in concat_intersect(&c1, &c2, &c3) {
            assert!(is_subset(&s.v1, &c1));
            assert!(is_subset(&s.v2, &c2));
            let cat = ops::concat(&s.v1, &s.v2).nfa;
            assert!(is_subset(&cat, &c3));
        }
    }

    #[test]
    fn all_solutions_cover_the_intersection() {
        // Theorem statement 3 (All Solutions): every word of (c1·c2) ∩ c3 is
        // covered by some solution's v1·v2.
        let (c1, c2, c3) = running_example();
        let solutions = concat_intersect(&c1, &c2, &c3);
        let whole = ops::intersect(&ops::concat(&c1, &c2).nfa, &c3).nfa;
        let union = ops::union_all(
            solutions
                .iter()
                .map(|s| ops::concat(&s.v1, &s.v2).nfa)
                .collect::<Vec<_>>()
                .iter(),
        );
        assert!(is_subset(&whole, &union));
        assert!(is_subset(&union, &whole));
    }

    #[test]
    fn empty_intersection_means_no_solutions() {
        // v1 ⊆ a+, v2 ⊆ b+, v1·v2 ⊆ c+ — nothing fits.
        let a = ops::plus(&Nfa::literal(b"a"));
        let b = ops::plus(&Nfa::literal(b"b"));
        let c = ops::plus(&Nfa::literal(b"c"));
        assert!(concat_intersect(&a, &b, &c).is_empty());
    }

    #[test]
    fn disjunctive_solutions_are_found() {
        // §3.1.1 second example: v1 ⊆ x(yy)+, v2 ⊆ (yy)*z,
        // v1·v2 ⊆ xyyz|xyyyyz → two disjunctive solutions.
        let x = Nfa::literal(b"x");
        let y = Nfa::literal(b"y");
        let z = Nfa::literal(b"z");
        let yy = ops::concat(&y, &y).nfa;
        let c1 = ops::concat(&x, &ops::plus(&yy)).nfa;
        let c2 = ops::concat(&ops::star(&yy), &z).nfa;
        let c3 = ops::union(&Nfa::literal(b"xyyz"), &Nfa::literal(b"xyyyyz"));
        let solutions = minimal_solutions(concat_intersect(&c1, &c2, &c3));
        assert_eq!(solutions.len(), 2, "two disjunctive solutions (A₁ and A₂)");
        // A₁ = [v1 ↦ xyy, v2 ↦ z|yyz]; A₂ = [v1 ↦ x(yy|yyyy), v2 ↦ z].
        let a1 = solutions
            .iter()
            .find(|s| s.v1.contains(b"xyy") && !s.v1.contains(b"xyyyy"))
            .expect("A1 present");
        assert!(a1.v2.contains(b"z"));
        assert!(a1.v2.contains(b"yyz"));
        assert!(!a1.v2.contains(b"yyyyz"));
        let a2 = solutions
            .iter()
            .find(|s| s.v1.contains(b"xyyyy"))
            .expect("A2 present");
        assert!(a2.v1.contains(b"xyy"));
        assert!(a2.v2.contains(b"z"));
        assert!(!a2.v2.contains(b"yyz"));
    }

    #[test]
    fn solution_count_bounded_by_m3_states() {
        // §3.5: the number of solutions is bounded by |M₃|.
        let (c1, c2, c3) = running_example();
        let m3_states = c3.normalize().num_states();
        let run = concat_intersect_full(&c1, &c2, &c3);
        assert!(run.solutions.len() <= m3_states);
    }

    #[test]
    fn intermediate_machines_are_exposed() {
        let (c1, c2, c3) = running_example();
        let run = concat_intersect_full(&c1, &c2, &c3);
        assert!(run.m4.contains(b"nid_'7"));
        assert!(run.m5.contains(b"nid_'7"));
        assert!(!run.m5.contains(b"nid_7"));
        assert!(!run.qlhs.is_empty());
        assert!(!run.qrhs.is_empty());
    }

    #[test]
    fn states_visited_matches_cost_model() {
        let (c1, c2, c3) = running_example();
        let run = concat_intersect_full(&c1, &c2, &c3);
        let expected =
            run.m4.num_states() + run.m5.num_states() + run.solutions.len() * run.m5.num_states();
        assert_eq!(run.states_visited, expected);
        // §3.5 construction bound: |M5| <= |M3'|·|M4|.
        let m3 = c3.normalize().num_states();
        assert!(run.m5.num_states() <= m3 * run.m4.num_states());
    }

    #[test]
    fn epsilon_operands() {
        // v1 ⊆ {ε}, v2 ⊆ a*, v1·v2 ⊆ aa → v1 = ε, v2 = aa.
        let solutions = concat_intersect(
            &Nfa::epsilon(),
            &ops::star(&Nfa::literal(b"a")),
            &Nfa::literal(b"aa"),
        );
        assert_eq!(minimal_solutions(solutions.clone()).len(), 1);
        let s = &solutions[0];
        assert!(s.v1.contains(b""));
        assert!(s.v2.contains(b"aa"));
        assert!(!s.v2.contains(b"a"));
    }

    #[test]
    fn dedup_removes_equivalent_pairs() {
        let s = CiSolution {
            v1: Nfa::literal(b"a").into(),
            v2: Nfa::literal(b"b").into(),
        };
        let dup = CiSolution {
            v1: Nfa::literal(b"a").normalize().into(),
            v2: Nfa::literal(b"b").normalize().into(),
        };
        let other = CiSolution {
            v1: Nfa::literal(b"x").into(),
            v2: Nfa::literal(b"b").into(),
        };
        let out = dedup_solutions(vec![s, dup, other]);
        assert_eq!(out.len(), 2);
    }
}
