//! A bounded-string baseline solver.
//!
//! The paper positions DPRLE against *bounded* approaches (§5: its
//! concurrent HAMPI work "show[s] that bounded context-free language
//! constraints can be solved efficiently by direct conversion to SAT.
//! Both approaches deal with individual string assignments. The algorithm
//! presented here, in contrast, deals with languages rather than
//! individual strings, and does not require (or reason about) string
//! length bounds."
//!
//! To measure that contrast, this module implements the baseline: find
//! *one concrete string per variable*, with every string's length at most
//! a user-supplied bound, satisfying the system. The search enumerates
//! candidate strings per variable from the variable's *local* constraints
//! (plain subset constraints only — the cheap pruning any bounded solver
//! would do) in length-lexicographic order and backtracks over tuples,
//! checking concatenation constraints by direct membership.
//!
//! The `baseline` bench compares this against the decision procedure: the
//! baseline degrades with the length bound and with how deep the shortest
//! witness sits, while DPRLE's cost is independent of witness length.

use crate::graph::{DependencyGraph, NodeKind};
use crate::solution::Assignment;
use crate::spec::{Constraint, Expr, System, VarId};
use dprle_automata::analysis::members;
use dprle_automata::{ops, Nfa};
use std::collections::BTreeMap;

/// Options for the bounded baseline.
#[derive(Clone, Debug)]
pub struct BoundedOptions {
    /// Maximum length of any variable's string.
    pub max_len: usize,
    /// Maximum candidate strings enumerated per variable.
    pub max_candidates: usize,
}

impl Default for BoundedOptions {
    fn default() -> Self {
        BoundedOptions {
            max_len: 8,
            max_candidates: 4096,
        }
    }
}

/// A concrete (single-string-per-variable) solution.
pub type BoundedSolution = BTreeMap<VarId, Vec<u8>>;

/// Finds one bounded concrete solution, or `None` if none exists within
/// the bounds. (Unlike [`crate::solve`], a `None` here proves nothing:
/// longer strings might work — that incompleteness is the point of the
/// comparison.)
pub fn solve_bounded(system: &System, options: &BoundedOptions) -> Option<BoundedSolution> {
    let constraints = system.union_free_constraints();

    // Check variable-free constraints directly.
    for c in &constraints {
        if c.lhs.variables().is_empty() {
            let lhs = crate::solve::eval_expr(system, &c.lhs, &Assignment::new());
            if !dprle_automata::is_subset(&lhs, system.const_machine(c.rhs)) {
                return None;
            }
        }
    }

    // Per-variable candidate languages: Σ≤n intersected with the
    // variable's plain subset constraints.
    let graph = DependencyGraph::from_constraints(system, &constraints);
    let vars: Vec<VarId> = system.var_ids().collect();
    let mut candidates: Vec<Vec<Vec<u8>>> = Vec::with_capacity(vars.len());
    for &v in &vars {
        let node = graph.var_node(v);
        let mut lang = Nfa::length_between(0, options.max_len);
        for source in graph.inbound_subset_sources(node) {
            if let NodeKind::Const(c) = graph.kind(source) {
                lang = ops::intersect_lang(&lang, system.const_machine(c));
            }
        }
        let words: Vec<Vec<u8>> = members(&lang).take(options.max_candidates).collect();
        if words.is_empty() {
            return None;
        }
        candidates.push(words);
    }

    // Backtracking over tuples, checking every constraint whose variables
    // are all assigned.
    let mut assignment: BTreeMap<VarId, Vec<u8>> = BTreeMap::new();
    if search(system, &constraints, &vars, &candidates, 0, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

fn search(
    system: &System,
    constraints: &[Constraint],
    vars: &[VarId],
    candidates: &[Vec<Vec<u8>>],
    depth: usize,
    assignment: &mut BTreeMap<VarId, Vec<u8>>,
) -> bool {
    if depth == vars.len() {
        return true;
    }
    let v = vars[depth];
    for word in &candidates[depth] {
        assignment.insert(v, word.clone());
        // Early pruning: check constraints fully assigned so far.
        let consistent = constraints.iter().all(|c| {
            let used = c.lhs.variables();
            if used.iter().any(|u| !assignment.contains_key(u)) {
                return true; // not yet checkable
            }
            let concrete = concretize(system, &c.lhs, assignment);
            system.const_machine(c.rhs).contains(&concrete)
        });
        if consistent && search(system, constraints, vars, candidates, depth + 1, assignment) {
            return true;
        }
    }
    assignment.remove(&v);
    false
}

/// Evaluates a union-free expression to concrete bytes under a concrete
/// assignment (constants contribute their shortest member).
fn concretize(system: &System, e: &Expr, assignment: &BTreeMap<VarId, Vec<u8>>) -> Vec<u8> {
    match e {
        Expr::Var(v) => assignment.get(v).cloned().unwrap_or_default(),
        Expr::Const(c) => system
            .const_machine(*c)
            .shortest_member()
            .unwrap_or_default(),
        Expr::Concat(a, b) => {
            let mut out = concretize(system, a, assignment);
            out.extend(concretize(system, b, assignment));
            out
        }
        Expr::Union(a, _) => concretize(system, a, assignment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve, SolveOptions};
    use dprle_regex::Regex;

    fn exact(pattern: &str) -> Nfa {
        Regex::new(pattern)
            .expect("compiles")
            .exact_language()
            .clone()
    }

    /// Checks a bounded solution against the system concretely.
    fn check(system: &System, sol: &BoundedSolution) {
        for c in system.union_free_constraints() {
            let concrete = concretize(system, &c.lhs, sol);
            assert!(
                system.const_machine(c.rhs).contains(&concrete),
                "constraint violated by {:?}",
                sol
            );
        }
    }

    #[test]
    fn bounded_finds_simple_solutions() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", exact("x(yy)+"));
        let c2 = sys.constant("c2", exact("(yy)*z"));
        let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
        let sol = solve_bounded(&sys, &BoundedOptions::default()).expect("in bounds");
        check(&sys, &sol);
    }

    #[test]
    fn bounded_agrees_with_dprle_on_the_motivating_example() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c1 = sys.constant_regex("c1", "[\\d]+$").expect("filter");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant_regex("c3", "'").expect("quote");
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        let sol = solve_bounded(&sys, &BoundedOptions::default()).expect("in bounds");
        check(&sys, &sol);
        assert!(sol[&v1].contains(&b'\''));
        assert!(solve(&sys, &SolveOptions::default()).is_sat());
    }

    #[test]
    fn bounded_misses_long_witnesses() {
        // The shortest satisfying string has length 10; a bound of 8 fails
        // while the decision procedure (no bounds) succeeds — the paper's
        // "does not require string length bounds" claim in miniature.
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", exact("a{10}"));
        sys.require(Expr::Var(v), c);
        assert!(solve_bounded(&sys, &BoundedOptions::default()).is_none());
        assert!(solve(&sys, &SolveOptions::default()).is_sat());
        let bigger = BoundedOptions {
            max_len: 10,
            ..Default::default()
        };
        assert!(solve_bounded(&sys, &bigger).is_some());
    }

    #[test]
    fn bounded_respects_unsat() {
        let mut sys = System::new();
        let v = sys.var("v");
        let a = sys.constant("a", exact("a+"));
        let b = sys.constant("b", exact("b+"));
        sys.require(Expr::Var(v), a);
        sys.require(Expr::Var(v), b);
        assert!(solve_bounded(&sys, &BoundedOptions::default()).is_none());
    }

    #[test]
    fn bounded_checks_variable_free_constraints() {
        let mut sys = System::new();
        let v = sys.var("v");
        let small = sys.constant("small", exact("zz"));
        let big = sys.constant("big", exact("z"));
        sys.require(Expr::Const(small), big); // zz ⊄ z
        sys.require(Expr::Var(v), small);
        assert!(solve_bounded(&sys, &BoundedOptions::default()).is_none());
    }

    #[test]
    fn shared_variable_tuples_are_checked_jointly() {
        // va·vb ⊆ c1, vb·vc ⊆ c2 — vb must satisfy both.
        let mut sys = System::new();
        let va = sys.var("va");
        let vb = sys.var("vb");
        let vc = sys.var("vc");
        let c1 = sys.constant("c1", exact("op{5}q*"));
        let c2 = sys.constant("c2", exact("p*q{4}r"));
        let ca = sys.constant("ca", exact("o(pp)+"));
        let cb = sys.constant("cb", exact("p*(qq)+"));
        let cc = sys.constant("cc", exact("q*r"));
        sys.require(Expr::Var(va), ca);
        sys.require(Expr::Var(vb), cb);
        sys.require(Expr::Var(vc), cc);
        sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
        sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);
        let options = BoundedOptions {
            max_len: 7,
            ..Default::default()
        };
        let sol = solve_bounded(&sys, &options).expect("in bounds");
        check(&sys, &sol);
    }
}
