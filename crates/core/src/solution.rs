//! Satisfying assignments: the output of the decision procedure.
//!
//! An [`Assignment`] maps each variable of a [`System`](crate::System) to a
//! regular language (an NFA). The RMA problem (paper §3.1) may admit several
//! inherently disjunctive assignments; [`Solution`] carries all of them, or
//! records that none exists.

use crate::spec::{System, VarId};
use dprle_automata::{equivalent, Lang};
use std::collections::BTreeMap;
use std::fmt;

/// A single satisfying assignment `A = [v₁ ↦ x₁, …, vₘ ↦ xₘ]`.
///
/// Languages are held as shared [`Lang`] handles: cloning an assignment (or
/// a whole [`Solution`]) is O(number of variables), not O(machine size),
/// and the handles keep their cached canonical fingerprints, so language
/// comparisons across solver phases stay cheap.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    map: BTreeMap<VarId, Lang>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Sets the language for `var`.
    pub fn insert(&mut self, var: VarId, language: impl Into<Lang>) {
        self.map.insert(var, language.into());
    }

    /// The language assigned to `var` — `A[vᵢ]` in the paper's notation.
    /// The returned handle dereferences to the underlying machine.
    pub fn get(&self, var: VarId) -> Option<&Lang> {
        self.map.get(&var)
    }

    /// The assigned variables in id order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.map.keys().copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A concrete witness string for `var`: a shortest member of its
    /// assigned language. This is what turns a solved constraint system
    /// into a test input (paper §4: generating exploit inputs).
    pub fn witness(&self, var: VarId) -> Option<Vec<u8>> {
        self.map.get(&var).and_then(|l| l.shortest_member())
    }

    /// Whether some assigned language is empty (cached per handle).
    pub fn has_empty_language(&self) -> bool {
        self.map.values().any(Lang::is_empty_language)
    }

    /// Language-level equality with another assignment over the same
    /// variables. Handles sharing a machine compare in O(1).
    pub fn equivalent_to(&self, other: &Assignment) -> bool {
        self.map.len() == other.map.len()
            && self.map.iter().all(|(v, m)| {
                other
                    .map
                    .get(v)
                    .is_some_and(|o| Lang::ptr_eq(m, o) || equivalent(m.nfa(), o.nfa()))
            })
    }

    /// Renders the assignment with variable names and shortest witnesses.
    pub fn display<'a>(&'a self, system: &'a System) -> AssignmentDisplay<'a> {
        AssignmentDisplay {
            assignment: self,
            system,
        }
    }
}

/// Helper returned by [`Assignment::display`].
#[derive(Debug)]
pub struct AssignmentDisplay<'a> {
    assignment: &'a Assignment,
    system: &'a System,
}

impl fmt::Display for AssignmentDisplay<'_> {
    /// Renders each variable's language as a regular expression when that
    /// stays readable (the paper's `L(xyy|xyyyy)` notation), falling back
    /// to a structural summary, and includes a shortest witness.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (var, machine)) in self.assignment.map.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            let name = self.system.var_name(*var);
            let lang = dprle_regex::display_language(machine, 200);
            match machine.shortest_member() {
                Some(w) => write!(
                    f,
                    "{name} -> {lang} (e.g. {:?})",
                    String::from_utf8_lossy(&w)
                )?,
                None => write!(f, "{name} -> (empty language)")?,
            }
        }
        Ok(())
    }
}

/// The result of solving a system: the disjunctive satisfying assignments,
/// or the paper's "no assignments found".
#[derive(Clone, Debug)]
pub enum Solution {
    /// One or more disjunctive satisfying assignments.
    Assignments(Vec<Assignment>),
    /// No satisfying assignment exists (under the solver's nonemptiness
    /// requirement — see [`crate::solve::SolveOptions::require_nonempty`]).
    Unsat,
}

impl Solution {
    /// The assignments, or an empty slice for `Unsat`.
    pub fn assignments(&self) -> &[Assignment] {
        match self {
            Solution::Assignments(v) => v,
            Solution::Unsat => &[],
        }
    }

    /// The first assignment, if any.
    pub fn first(&self) -> Option<&Assignment> {
        self.assignments().first()
    }

    /// Whether the system was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Solution::Assignments(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_automata::Nfa;

    #[test]
    fn assignment_roundtrip() {
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.insert(VarId(0), Nfa::literal(b"hi"));
        assert_eq!(a.len(), 1);
        assert!(a.get(VarId(0)).expect("set").contains(b"hi"));
        assert!(a.get(VarId(1)).is_none());
        assert_eq!(a.witness(VarId(0)), Some(b"hi".to_vec()));
        assert!(!a.has_empty_language());
    }

    #[test]
    fn empty_language_detection() {
        let mut a = Assignment::new();
        a.insert(VarId(0), Nfa::empty_language());
        assert!(a.has_empty_language());
        assert_eq!(a.witness(VarId(0)), None);
    }

    #[test]
    fn equivalence_is_language_level() {
        let mut a = Assignment::new();
        a.insert(VarId(0), Nfa::literal(b"x"));
        let mut b = Assignment::new();
        b.insert(VarId(0), Nfa::literal(b"x").normalize());
        assert!(a.equivalent_to(&b));
        let mut c = Assignment::new();
        c.insert(VarId(0), Nfa::literal(b"y"));
        assert!(!a.equivalent_to(&c));
        let empty = Assignment::new();
        assert!(!a.equivalent_to(&empty));
    }

    #[test]
    fn solution_accessors() {
        let sat = Solution::Assignments(vec![Assignment::new()]);
        assert!(sat.is_sat());
        assert!(sat.first().is_some());
        let unsat = Solution::Unsat;
        assert!(!unsat.is_sat());
        assert!(unsat.assignments().is_empty());
    }

    #[test]
    fn display_shows_witness() {
        let mut sys = System::new();
        let v = sys.var("input");
        let mut a = Assignment::new();
        a.insert(v, Nfa::literal(b"hi"));
        let s = a.display(&sys).to_string();
        assert!(s.contains("input ->"), "got {s}");
        assert!(s.contains("hi"), "got {s}");
        let mut b = Assignment::new();
        b.insert(v, Nfa::empty_language());
        assert!(
            b.display(&sys).to_string().contains("empty"),
            "empty case labelled"
        );
    }
}
