//! The worklist solver for general dependency graphs
//! (paper §3.4.2, Figure 7).
//!
//! Given a constraint [`System`], the solver:
//!
//! 1. desugars unions and builds the dependency graph (Figure 5);
//! 2. checks variable-free constraints directly (a constraint like
//!    `c₁·c₂ ⊆ c₃` either holds or the system is unsatisfiable — no
//!    branching can repair it);
//! 3. *reduces* plain variables — vertices with only inbound ⊆-edges — by
//!    NFA intersection in one pass (Figure 7, lines 3–8: `sort_acyclic_
//!    nodes` + `reduce`);
//! 4. pre-intersects the ⊆-constraints of variables that participate in
//!    concatenations (the *operation ordering* invariant: subsets before
//!    concats), then repeatedly applies the generalized concat-intersect
//!    procedure to each CI-group, maintaining a worklist of partial
//!    assignments that branches on disjunctive group solutions (Figure 7,
//!    lines 9–15);
//! 5. filters assignments per Figure 7's termination conditions (lines
//!    16–23): a branch in which some variable's language is empty is
//!    abandoned in favor of other worklist entries; if every branch dies
//!    the answer is "no assignments found".
//!
//! In the Figure 2 grammar distinct CI-groups share no vertices (a shared
//! variable joins its concatenations into one group), so the queue
//! processes groups in a fixed order and the set of complete assignments is
//! the merge of per-group disjuncts — the same set Figure 7 computes, with
//! the same branch-on-disjunction behavior.

use crate::gci::{solve_group, GciOptions, GroupCost, ProductCapHit};
use crate::graph::{DependencyGraph, NodeId, NodeKind};
use crate::ledger::{bypass_inclusion_draft, Ledger, SITE_CONST_CHECK, SITE_VERIFY};
use crate::metrics::{id, Budget, BudgetKind, Metrics, ResourceExhausted};
use crate::parallel::{drive_worklist, RoutedStoreObserver, WorklistCtx};
use crate::solution::{Assignment, Solution};
use crate::spec::{Constraint, Expr, System, VarId};
use crate::trace::{TraceEventKind, Tracer};
use dprle_automata::{
    current_stats_scope, inclusion_engine, install_stats_scope, ops, EngineKind, InclusionLimits,
    Lang, LangStore, Nfa, ScopedStoreStats,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Options controlling the solver.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Options for the generalized concat-intersect step.
    pub gci: GciOptions,
    /// Reject assignments that map some variable to the empty language
    /// (Figure 7 treats such branches as failed). Disable to observe the
    /// raw per-branch languages.
    pub require_nonempty: bool,
    /// Re-verify every produced assignment against the original system and
    /// drop any that fail. The core algorithm's outputs satisfy by
    /// construction for variable leaves; verification additionally guards
    /// the constant-leaf filtering (see `gci` module docs). Cost: one
    /// inclusion check per constraint per assignment.
    pub verify: bool,
    /// Stop after this many satisfying assignments (e.g. `Some(1)` for a
    /// "first solution" query — the paper notes the first solution can be
    /// produced without enumerating the rest, §3.5).
    pub max_assignments: Option<usize>,
    /// Minimize intermediate machines during the reduce phase. Long
    /// constraint chains otherwise grow multiplicatively under repeated
    /// products — exactly the behavior behind the paper's `secure` outlier
    /// ("more efficient use of the intermediate NFAs (e.g., by applying
    /// NFA minimization techniques) might improve performance", §4).
    /// Disable to reproduce the prototype's behavior for ablations.
    pub minimize_intermediate: bool,
    /// Record a human-readable event trace of the run in
    /// [`SolveStats::events`] (group discovery, disjunct counts, branch
    /// outcomes). Off by default; the trace allocates strings.
    pub trace: bool,
    /// Rewrite constraints whose concatenation spine begins or ends with a
    /// *constant* by taking the universal quotient of the right-hand side:
    /// `C·e ⊆ c ⟺ e ⊆ {w | ∀u ∈ C, u·w ∈ c}` (and symmetrically on the
    /// right). An extension beyond the paper: the paper's algorithm treats
    /// constants as CI leaves, which is exact for the singleton string
    /// literals its front end produces but incomplete for multi-string
    /// constants (the induced sub-machine can never equal the whole
    /// constant); quotient stripping is exact for any regular constant.
    pub strip_constant_operands: bool,
    /// Hash-cons languages in a [`LangStore`] and memoize intersection,
    /// inclusion, and minimization by canonical fingerprint. Worklist
    /// branches then share unchanged leaf machines structurally and
    /// repeated language computations across disjuncts hit the cache.
    /// Disable (`ablation_interning`) to measure the sharing's effect.
    pub interning: bool,
    /// Worker threads for the worklist phase. `1` (the default) runs the
    /// sequential Figure 7 loop; larger values distribute each worklist
    /// level across a scoped thread pool and deterministically merge the
    /// results, so solutions, statistics, and trace journals are
    /// byte-identical to the sequential run (timestamps aside) — see the
    /// [`parallel`](crate::parallel) module. `0` is treated as `1`.
    pub jobs: usize,
    /// Metrics registry the run records into (see
    /// [`metrics`](crate::metrics)). Disabled — a no-op handle — by
    /// default. The entry points copy this handle into [`GciOptions`] and
    /// install it on the [`LangStore`], so automata-, store-, and
    /// solver-level costs all land in one registry.
    pub metrics: Metrics,
    /// Resource limits for the run. Breaches surface as a typed
    /// [`ResourceExhausted`] from [`try_solve_traced`]; the infallible
    /// entry points panic with a descriptive message instead of silently
    /// blowing up memory. Unlimited by default.
    pub budget: Budget,
    /// Which inclusion engine decides the run's `⊆` judgments (constant
    /// filtering, subsumption pruning, verification). The engines provably
    /// agree on every judgment, so solutions and unsat answers are
    /// engine-invariant; costs differ — the default antichain engine
    /// explores macrostates lazily and can decide inclusions whose eager
    /// determinize/complement/product construction blows up, the
    /// derivative engine prunes both sides of the query, and `auto`
    /// resolves each query to the cheapest predicted concrete engine.
    /// Selected on the CLI with
    /// `--inclusion=eager|antichain|derivative|auto`.
    pub inclusion_engine: EngineKind,
    /// Query cost ledger for the run (see [`ledger`](crate::ledger)):
    /// every store inclusion query, every engine-bypassing `⊆` judgment
    /// (constant pre-check, verification), and every gci product emits
    /// one attributed cost record. Disabled — a no-op handle — by
    /// default; the entry points copy this handle into [`GciOptions`] and
    /// install a query-reporting store observer. Records are
    /// byte-identical at every [`SolveOptions::jobs`] count apart from
    /// the `ts_us` wall-time field. Enabled on the CLI with
    /// `--ledger-out`.
    pub ledger: Ledger,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            gci: GciOptions::default(),
            require_nonempty: true,
            verify: true,
            max_assignments: None,
            minimize_intermediate: true,
            trace: false,
            strip_constant_operands: false,
            interning: true,
            jobs: 1,
            metrics: Metrics::disabled(),
            budget: Budget::default(),
            inclusion_engine: EngineKind::default(),
            ledger: Ledger::disabled(),
        }
    }
}

/// Statistics from one solver run, for benchmarking and reporting (the
/// paper reasons about costs in machine sizes and solution counts; these
/// counters expose the same quantities).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use = "solver statistics are the point of the *_with_stats entry points"]
pub struct SolveStats {
    /// Number of CI-groups the dependency graph contained.
    pub groups: usize,
    /// Total disjunctive group solutions produced across all `gci` calls.
    pub group_disjuncts: usize,
    /// Worklist branches that completed (reached the last group).
    pub branches_completed: usize,
    /// Assignments dropped by the nonemptiness/verification filters.
    pub branches_filtered: usize,
    /// Largest leaf machine (states) after the reduce phase.
    pub max_leaf_states: usize,
    /// Fingerprint lookups answered from a handle's cached canonical key
    /// (each hit is one determinize+minimize avoided).
    pub fingerprint_hits: usize,
    /// Fingerprint lookups that had to canonicalize a machine (the number
    /// of minimal-DFA constructions the run actually performed).
    pub fingerprint_misses: usize,
    /// Memoized binary operations (intersection, inclusion, minimization)
    /// answered from the [`LangStore`] cache.
    pub memo_op_hits: usize,
    /// Memoized binary operations computed fresh.
    pub memo_op_misses: usize,
    /// Deepest the worklist of partial assignments ever got.
    pub peak_worklist: usize,
    /// Total NFA states of machines materialized by store-level operations.
    pub states_materialized: usize,
    /// Product states explored by the run's budget-relevant intersection
    /// constructions (the generalized concat-intersect builds — the paper's
    /// §3.5 quadratic term). Driver-accumulated from per-group costs, so it
    /// is available with metrics disabled and identical at every
    /// [`SolveOptions::jobs`] count.
    pub product_states: u64,
    /// Macrostates explored by the run's winning inclusion checks
    /// (subset-construction states plus product pairs — see the
    /// [`inclusion`](dprle_automata::inclusion) module). Captured by a
    /// request-scoped counter scope ([`dprle_automata::ScopedStoreStats`]),
    /// identical at every [`SolveOptions::jobs`] count but
    /// *engine-dependent*: differential engine comparisons must exclude it.
    pub inclusion_macrostates: u64,
    /// Growth of the store's memo byte footprint over this run (interned
    /// machines and memo table entries — see `StoreStats::memo_bytes`):
    /// bytes this run's memo inserts charged minus bytes evicted during the
    /// run, so shared-store callers get this run's contribution only even
    /// under concurrent sessions; under a store byte cap eviction can
    /// outpace charging, in which case this saturates at zero rather than
    /// underflowing.
    pub peak_bytes: u64,
    /// Memo entries dropped by store LRU eviction during this run. Zero
    /// unless a `--store-max-bytes` cap is installed; nonzero values mean
    /// hit rates — never answers — were affected by cache pressure.
    pub store_evictions: u64,
    /// Human-readable trace events (populated when
    /// [`SolveOptions::trace`] is set).
    pub events: Vec<String>,
}

impl SolveStats {
    /// Minimal-DFA canonicalizations performed — the cost the fingerprint
    /// cache exists to bound (each miss is one canonicalization).
    pub fn minimizations(&self) -> usize {
        self.fingerprint_misses
    }

    /// Every numeric counter as a `(name, value)` row, in display order.
    /// The single source of truth for stats reporting: the CLI's `--stats`
    /// output, the [`Display`](fmt::Display) impl, and the bench JSON all
    /// iterate this instead of hand-copying fields.
    pub fn counter_fields(&self) -> [(&'static str, u64); 15] {
        [
            ("groups", self.groups as u64),
            ("group-disjuncts", self.group_disjuncts as u64),
            ("branches-completed", self.branches_completed as u64),
            ("branches-filtered", self.branches_filtered as u64),
            ("max-leaf-states", self.max_leaf_states as u64),
            ("fingerprint-hits", self.fingerprint_hits as u64),
            ("fingerprint-misses", self.fingerprint_misses as u64),
            ("memo-op-hits", self.memo_op_hits as u64),
            ("memo-op-misses", self.memo_op_misses as u64),
            ("peak-worklist", self.peak_worklist as u64),
            ("states-materialized", self.states_materialized as u64),
            ("product-states", self.product_states),
            ("inclusion-macrostates", self.inclusion_macrostates),
            ("peak-bytes", self.peak_bytes),
            ("store-evictions", self.store_evictions),
        ]
    }

    /// Accumulates another run's counters into this one (summing totals,
    /// taking the max of the high-water marks, appending events) — for
    /// aggregating across the check-sats of one SMT script or the repeats
    /// of one benchmark row.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.groups += other.groups;
        self.group_disjuncts += other.group_disjuncts;
        self.branches_completed += other.branches_completed;
        self.branches_filtered += other.branches_filtered;
        self.max_leaf_states = self.max_leaf_states.max(other.max_leaf_states);
        self.fingerprint_hits += other.fingerprint_hits;
        self.fingerprint_misses += other.fingerprint_misses;
        self.memo_op_hits += other.memo_op_hits;
        self.memo_op_misses += other.memo_op_misses;
        self.peak_worklist = self.peak_worklist.max(other.peak_worklist);
        self.states_materialized += other.states_materialized;
        self.product_states += other.product_states;
        self.inclusion_macrostates += other.inclusion_macrostates;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.store_evictions += other.store_evictions;
        self.events.extend(other.events.iter().cloned());
    }
}

impl fmt::Display for SolveStats {
    /// One `name: value` line per counter, in [`SolveStats::counter_fields`]
    /// order (callers wanting a prefix — the CLI's `stats: ` — prepend it
    /// per line).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.counter_fields() {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

/// Solves `system`, returning all disjunctive satisfying assignments (or
/// [`Solution::Unsat`]).
///
/// # Examples
///
/// The paper's §3.1.1 example — `v₁ ⊆ (xx)+y` and `v₁ ⊆ x*y`:
///
/// ```
/// use dprle_core::{solve, System, Expr, SolveOptions};
///
/// let mut sys = System::new();
/// let v1 = sys.var("v1");
/// let a = sys.constant_regex_exact("a", "(xx)+y")?;
/// let b = sys.constant_regex_exact("b", "x*y")?;
/// sys.require(Expr::Var(v1), a);
/// sys.require(Expr::Var(v1), b);
/// let solution = solve(&sys, &SolveOptions::default());
/// let x1 = solution.first().expect("satisfiable").get(v1).expect("assigned");
/// assert!(x1.contains(b"xxy"));      // in (xx)+y ∩ x*y
/// assert!(!x1.contains(b"xy"));      // not in (xx)+y
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(system: &System, options: &SolveOptions) -> Solution {
    solve_with_stats(system, options).0
}

/// Like [`solve`], additionally returning run statistics.
pub fn solve_with_stats(system: &System, options: &SolveOptions) -> (Solution, SolveStats) {
    let store = LangStore::interning(options.interning);
    solve_with_store(system, options, &store)
}

/// Like [`solve_with_stats`], but sharing a caller-supplied [`LangStore`]:
/// interned languages and memoized operations survive across calls, which
/// is what makes re-solving related systems (incremental push/pop, unsat
/// core shrinking) cheap. The returned counters are deltas for this call.
pub fn solve_with_store(
    system: &System,
    options: &SolveOptions,
    store: &LangStore,
) -> (Solution, SolveStats) {
    solve_traced(system, options, store, &Tracer::disabled())
}

/// Like [`solve_with_store`], additionally recording a structured event
/// trace of the run (phase spans, reduce steps, CI-group disjuncts,
/// worklist decisions — see the [`trace`](crate::trace) module). While the
/// run lasts, the tracer is installed as the store's observer so memo-cache
/// outcomes appear as `MemoHit`/`MemoMiss` events. A disabled tracer makes
/// this identical to [`solve_with_store`]: no event is ever constructed.
pub fn solve_traced(
    system: &System,
    options: &SolveOptions,
    store: &LangStore,
    tracer: &Tracer,
) -> (Solution, SolveStats) {
    match try_solve_traced(system, options, store, tracer) {
        Ok(result) => result,
        Err(exhausted) => panic!(
            "solve exceeded its resource budget: {exhausted} \
             (use try_solve_traced to handle ResourceExhausted gracefully)"
        ),
    }
}

/// The fallible form of [`solve_traced`]: returns a typed
/// [`ResourceExhausted`] when [`SolveOptions::budget`] is breached, instead
/// of panicking. With the default (unlimited) budget it never errs.
///
/// The error carries the [`SolveStats`] accumulated up to the breach and —
/// when [`SolveOptions::metrics`] is enabled — a full registry snapshot.
/// At `jobs > 1` an error-path snapshot may additionally include the
/// speculative work of level-mates computed before the breach was replayed;
/// success-path metrics are byte-identical at every jobs count.
pub fn try_solve_traced(
    system: &System,
    options: &SolveOptions,
    store: &LangStore,
    tracer: &Tracer,
) -> Result<(Solution, SolveStats), Box<ResourceExhausted>> {
    // Normalize: group solving records into the same registry and inherits
    // the per-operation product cap from the budget (an explicitly set
    // `gci.max_product_states` wins). The wall-clock deadline is turned
    // into an absolute instant here so the inclusion engines' frontier
    // loops measure the same clock as the worklist-level check, and the
    // selected inclusion engine is installed on the store so every memoized
    // `⊆` judgment of this run dispatches through it.
    let mut options = options.clone();
    options.gci.metrics = options.metrics.clone();
    options.gci.ledger = options.ledger.clone();
    if options.gci.max_product_states.is_none() {
        options.gci.max_product_states = options.budget.max_product_states;
    }
    if options.gci.deadline.is_none() {
        options.gci.deadline = options.budget.deadline.map(|d| Instant::now() + d);
    }
    store.set_metrics(options.metrics.clone());
    store.set_inclusion_engine(options.inclusion_engine);
    let options = &options;

    let observing = tracer.is_enabled() || options.ledger.is_enabled();
    if observing {
        // The routed observer behaves exactly like `TracerStoreObserver`
        // on the main thread; on parallel workers it redirects memo events
        // into the worker's per-entry buffer for the deterministic replay.
        // With the ledger enabled it additionally reports every answered
        // inclusion query.
        store.set_observer(Arc::new(RoutedStoreObserver::new(
            tracer.clone(),
            options.ledger.clone(),
        )));
    }
    // Request-scoped counter capture: a thread-local scope mirrors every
    // store counter bump made by this solve (parallel workers re-install it,
    // see `parallel::map_level`), so the reported stats cover exactly this
    // run's work — accurate even when the store is shared with concurrent
    // sessions, and byte-identical to the old global before/after diffs
    // when it is not.
    let scope = Arc::new(ScopedStoreStats::default());
    let result = {
        let _scope_guard = install_stats_scope(Arc::clone(&scope));
        if options.strip_constant_operands {
            let (stripped, constraints) = strip_constant_operands(system);
            solve_prepared(&stripped, &constraints, options, system, store, tracer)
        } else {
            let constraints = system.union_free_constraints();
            solve_prepared(system, &constraints, options, system, store, tracer)
        }
    };
    if observing {
        store.clear_observer();
    }
    let finalize = |stats: &mut SolveStats| {
        let load = |counter: &std::sync::atomic::AtomicU64| {
            counter.load(std::sync::atomic::Ordering::Relaxed)
        };
        stats.fingerprint_hits = load(&scope.fingerprint_hits) as usize;
        stats.fingerprint_misses = load(&scope.fingerprint_misses) as usize;
        stats.memo_op_hits = load(&scope.op_hits) as usize;
        stats.memo_op_misses = load(&scope.op_misses) as usize;
        stats.states_materialized = load(&scope.states_materialized) as usize;
        stats.inclusion_macrostates = load(&scope.inclusion_macrostates);
        stats.store_evictions = load(&scope.evictions);
    };
    match result {
        Ok((solution, mut stats)) => {
            finalize(&mut stats);
            Ok((solution, stats))
        }
        Err(mut exhausted) => {
            finalize(&mut exhausted.stats);
            Err(exhausted)
        }
    }
}

/// A budget breach as `(kind, limit, observed)` — the internal currency of
/// the budget checks, turned into a full [`ResourceExhausted`] (snapshot +
/// stats attached) only at the driver's return boundary.
pub(crate) type Breach = (BudgetKind, u64, u64);

/// Mutable budget-tracking state threaded through the sequential loop and
/// the parallel replay, so both charge identical totals in identical order.
pub(crate) struct BudgetTrack {
    /// Solve start time; `Some` only when a deadline is configured.
    pub(crate) start: Option<Instant>,
    /// Cumulative states *kept* (reduce-phase leaves + group solution
    /// machines), checked against `Budget::max_live_states`.
    pub(crate) live_states: u64,
    /// Cumulative group-solution states, reported by the
    /// `MetricsSnapshot` trace event.
    pub(crate) states_built: u64,
}

impl BudgetTrack {
    fn new(budget: &Budget) -> BudgetTrack {
        BudgetTrack {
            start: budget.deadline.map(|_| Instant::now()),
            live_states: 0,
            states_built: 0,
        }
    }
}

/// Charges one entry's deterministic group cost against the cumulative
/// budget, the stats, and the metrics registry. Shared by the sequential
/// loop and the parallel replay (called at the entry's replay position), so
/// totals and breach points are identical at every `--jobs N`.
pub(crate) fn charge_entry_cost(
    cost: &GroupCost,
    options: &SolveOptions,
    stats: &mut SolveStats,
    track: &mut BudgetTrack,
) -> Result<(), Breach> {
    stats.product_states += cost.product_states;
    track.live_states += cost.states_built;
    track.states_built += cost.states_built;
    options
        .metrics
        .add(id::SOLVE_PRODUCT_STATES, cost.product_states);
    options
        .metrics
        .add(id::SOLVE_STATES_BUILT, cost.states_built);
    if let Some(limit) = options.budget.max_product_states {
        if stats.product_states > limit {
            return Err((BudgetKind::ProductStates, limit, stats.product_states));
        }
    }
    if let Some(limit) = options.budget.max_live_states {
        if track.live_states > limit {
            return Err((BudgetKind::LiveStates, limit, track.live_states));
        }
    }
    Ok(())
}

/// The wall-clock check, run between worklist entries. Inherently
/// nondeterministic (documented on [`Budget::deadline`]).
pub(crate) fn check_deadline(options: &SolveOptions, track: &BudgetTrack) -> Result<(), Breach> {
    if let (Some(deadline), Some(start)) = (options.budget.deadline, track.start) {
        let elapsed = start.elapsed();
        if elapsed > deadline {
            return Err((
                BudgetKind::Deadline,
                u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX),
                u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            ));
        }
    }
    Ok(())
}

/// Turns a group-level [`ProductCapHit`] into the driver's breach tuple.
/// Product-state hits report the configured cap as both limit and observed
/// (the operation aborted *before* exceeding it); deadline hits — possible
/// only from an inclusion engine's frontier loop — recompute the
/// elapsed/limit micros against the run's own clock, matching
/// [`check_deadline`]'s reporting.
pub(crate) fn cap_hit_breach(
    hit: &ProductCapHit,
    options: &SolveOptions,
    track: &BudgetTrack,
) -> Breach {
    match hit.kind {
        BudgetKind::Deadline => {
            let limit = options
                .budget
                .deadline
                .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
            let observed = track.start.map_or(limit, |s| {
                u64::try_from(s.elapsed().as_micros()).unwrap_or(u64::MAX)
            });
            (BudgetKind::Deadline, limit, observed)
        }
        kind => (kind, hit.limit, hit.limit),
    }
}

/// Wraps a breach into the full error, attaching the metrics snapshot (when
/// enabled) and the stats accumulated so far.
fn budget_error(
    breach: Breach,
    options: &SolveOptions,
    stats: &SolveStats,
) -> Box<ResourceExhausted> {
    let (kind, limit, observed) = breach;
    Box::new(ResourceExhausted {
        kind,
        limit,
        observed,
        snapshot: options.metrics.snapshot(),
        stats: stats.clone(),
    })
}

/// The solver body, parameterized over a possibly-rewritten system.
/// `original` is used for final verification so rewrites cannot mask an
/// unsound transformation.
fn solve_prepared(
    system: &System,
    constraints: &[Constraint],
    options: &SolveOptions,
    original: &System,
    store: &LangStore,
    tracer: &Tracer,
) -> Result<(Solution, SolveStats), Box<ResourceExhausted>> {
    let mut stats = SolveStats::default();
    let mut track = BudgetTrack::new(&options.budget);
    // Net memo growth observed by the ambient stats scope installed in
    // `try_solve_traced`; reproduces the old `memo_bytes` before/after diff
    // exactly in a single-request window and stays request-attributable
    // when the store is shared (see `ScopedStoreStats::net_bytes`).
    let scoped_net_bytes = || current_stats_scope().map_or(0, |s| s.net_bytes());
    macro_rules! trace {
        ($($arg:tt)*) => {
            if options.trace {
                stats.events.push(format!($($arg)*));
            }
        };
    }
    let constraints = constraints.to_vec();
    tracer.emit(|| TraceEventKind::SolveStart {
        constraints: constraints.len(),
        vars: system.num_vars(),
    });
    let _solve_span = tracer.span("solve", None, None);
    trace!(
        "{} union-free constraints over {} variables",
        constraints.len(),
        system.num_vars()
    );
    // Verification always runs against the *original* system so a buggy
    // rewrite cannot vouch for itself.
    let verify_constraints = original.union_free_constraints();

    // Variable-free constraints are decided directly and kept out of the
    // graph (routing them through gci could only narrow constants, which
    // the constant filter would then reject).
    let mut graph_constraints = Vec::with_capacity(constraints.len());
    let mut constant_constraints = Vec::new();
    for c in &constraints {
        if c.lhs.variables().is_empty() {
            constant_constraints.push(c.clone());
        } else {
            graph_constraints.push(c.clone());
        }
    }

    // The graph and its groups are computed before the variable-free check
    // so every exit path — including an early UNSAT — reports the full
    // shape counters.
    let graph = DependencyGraph::from_constraints(system, &graph_constraints);
    let groups = graph.ci_groups();
    stats.groups = groups.len();
    trace!(
        "dependency graph: {} nodes, {} CI-group(s)",
        graph.num_nodes(),
        groups.len()
    );

    for c in &constant_constraints {
        if !constant_constraint_holds_with(options, system, c) {
            trace!(
                "variable-free constraint `{} <= {}` fails: unsat",
                system.expr_to_string(&c.lhs),
                system.const_name(c.rhs)
            );
            stats.peak_bytes = scoped_net_bytes();
            emit_metrics_snapshot(tracer, options, &stats, &track);
            tracer.emit(|| TraceEventKind::SolveEnd {
                sat: false,
                assignments: 0,
            });
            return Ok((Solution::Unsat, stats));
        }
    }

    // Reduce phase: every variable picks up the intersection of its inbound
    // subset constants. For plain variables this is their final language;
    // for CI-group members it is their leaf machine. Constants enter as
    // shared handles, so two variables bounded by the same constant reuse
    // one fingerprint and the store memoizes the repeated intersections.
    let mut leaf: BTreeMap<NodeId, Lang> = BTreeMap::new();
    for v in system.var_ids() {
        let node = graph.var_node(v);
        let _reduce_span = tracer.span("reduce", Some(node.index() as u32), None);
        let mut m: Option<Lang> = None;
        for source in graph.inbound_subset_sources(node) {
            if let NodeKind::Const(c) = graph.kind(source) {
                let constant = system.const_lang(c);
                let next = match m {
                    None => constant.clone(),
                    Some(prev) => store.intersect(&prev, constant),
                };
                m = Some(if options.minimize_intermediate {
                    let _min_span = tracer.span("minimize", Some(node.index() as u32), None);
                    store.minimized(&next)
                } else {
                    next
                });
            }
        }
        let m = m.unwrap_or_else(|| Lang::new(Nfa::sigma_star()));
        stats.max_leaf_states = stats.max_leaf_states.max(m.num_states());
        // The reduce phase keeps every leaf machine live for the rest of
        // the run, so its states are charged against `max_live_states`.
        let leaf_cost = GroupCost {
            product_states: 0,
            states_built: m.num_states() as u64,
        };
        if let Err(breach) = charge_entry_cost(&leaf_cost, options, &mut stats, &mut track) {
            stats.peak_bytes = scoped_net_bytes();
            return Err(budget_error(breach, options, &stats));
        }
        trace!(
            "reduced {} to a {}-state machine",
            system.var_name(v),
            m.num_states()
        );
        tracer.emit(|| TraceEventKind::ReduceStep {
            node: node.index() as u32,
            var: system.var_name(v).to_owned(),
            states: m.num_states(),
        });
        leaf.insert(node, m);
    }
    for group in &groups {
        for &node in &group.nodes {
            if let NodeKind::Const(c) = graph.kind(node) {
                leaf.insert(node, system.const_lang(c).clone());
            }
        }
    }

    // Worklist over CI-groups: each queue entry is (next group index,
    // partial node assignment); group solutions branch the queue
    // (Figure 7, lines 13–14).
    // Partial assignments hold `Lang` handles: branching clones the map of
    // handles (O(entries) Arc bumps), never the machines themselves.
    if options.jobs > 1 {
        let ctx = WorklistCtx {
            system,
            graph: &graph,
            groups: &groups,
            leaf: &leaf,
            options,
            original,
            verify_constraints: &verify_constraints,
            store,
            tracer,
        };
        let produced = match drive_worklist(&ctx, options.jobs, &mut stats, &mut track) {
            Ok(produced) => produced,
            Err(breach) => {
                stats.peak_bytes = scoped_net_bytes();
                return Err(budget_error(breach, options, &stats));
            }
        };
        trace!(
            "{} branch(es) completed, {} filtered, {} assignment(s) returned",
            stats.branches_completed,
            stats.branches_filtered,
            stats.branches_completed - stats.branches_filtered
        );
        let solution = if produced.is_empty() {
            Solution::Unsat
        } else {
            Solution::Assignments(produced)
        };
        stats.peak_bytes = scoped_net_bytes();
        emit_metrics_snapshot(tracer, options, &stats, &track);
        tracer.emit(|| TraceEventKind::SolveEnd {
            sat: solution.is_sat(),
            assignments: solution.assignments().len(),
        });
        return Ok((solution, stats));
    }

    let mut queue: VecDeque<(usize, BTreeMap<NodeId, Lang>)> =
        VecDeque::from([(0, BTreeMap::new())]);
    stats.peak_worklist = queue.len();
    options
        .metrics
        .gauge_set(id::WORKLIST_DEPTH, queue.len() as u64);
    let mut produced: Vec<Assignment> = Vec::new();

    'queue: while let Some((gi, partial)) = queue.pop_front() {
        options
            .metrics
            .gauge_set(id::WORKLIST_DEPTH, queue.len() as u64);
        if let Err(breach) = check_deadline(options, &track) {
            stats.peak_bytes = scoped_net_bytes();
            return Err(budget_error(breach, options, &stats));
        }
        if gi == groups.len() {
            // Convert and filter as soon as a branch completes so that
            // `max_assignments` can stop the search early.
            stats.branches_completed += 1;
            match finish_branch(
                system,
                &graph,
                &leaf,
                &partial,
                options,
                original,
                &verify_constraints,
                tracer,
                gi,
            ) {
                Some(assignment) => {
                    produced.push(assignment);
                    if let Some(cap) = options.max_assignments {
                        if produced.len() >= cap {
                            break 'queue;
                        }
                    }
                }
                None => stats.branches_filtered += 1,
            }
            continue;
        }
        let result = {
            let _gci_span = tracer.span("gci", None, Some(gi));
            solve_group(
                &graph,
                &groups[gi],
                system,
                &leaf,
                &options.gci,
                store,
                tracer,
            )
        };
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(hit) => {
                // A single intersection or inclusion hit a per-operation
                // limit: at most `limit` product states / macrostates were
                // materialized by it.
                stats.product_states += hit.cost.product_states;
                options
                    .metrics
                    .add(id::SOLVE_PRODUCT_STATES, hit.cost.product_states);
                stats.peak_bytes = scoped_net_bytes();
                return Err(budget_error(
                    cap_hit_breach(&hit, options, &track),
                    options,
                    &stats,
                ));
            }
        };
        if let Err(breach) = charge_entry_cost(&outcome.cost, options, &mut stats, &mut track) {
            stats.peak_bytes = scoped_net_bytes();
            return Err(budget_error(breach, options, &stats));
        }
        let disjuncts = outcome.solutions;
        trace!(
            "group {} produced {} disjunctive solution(s)",
            gi,
            disjuncts.len()
        );
        stats.group_disjuncts += disjuncts.len();
        // An unsatisfiable group kills this branch (and, since groups share
        // no vertices, every branch — but the queue drains naturally).
        if disjuncts.is_empty() {
            tracer.emit(|| TraceEventKind::WorklistPrune {
                group: gi,
                reason: "group-unsat".to_owned(),
            });
        }
        for d in disjuncts {
            let mut extended = partial.clone();
            extended.extend(d);
            queue.push_back((gi + 1, extended));
            // Track the high-water mark at every enqueue: measuring once
            // per loop iteration (as earlier revisions did) under-reports
            // the peak whenever the run stops mid-iteration — e.g. a
            // `max_assignments` break after this entry's pushes.
            stats.peak_worklist = stats.peak_worklist.max(queue.len());
            options
                .metrics
                .gauge_set(id::WORKLIST_DEPTH, queue.len() as u64);
            tracer.emit(|| TraceEventKind::WorklistBranch {
                group: gi,
                depth: queue.len(),
            });
        }
    }

    trace!(
        "{} branch(es) completed, {} filtered, {} assignment(s) returned",
        stats.branches_completed,
        stats.branches_filtered,
        stats.branches_completed - stats.branches_filtered
    );
    let solution = if produced.is_empty() {
        Solution::Unsat
    } else {
        Solution::Assignments(produced)
    };
    stats.peak_bytes = scoped_net_bytes();
    emit_metrics_snapshot(tracer, options, &stats, &track);
    tracer.emit(|| TraceEventKind::SolveEnd {
        sat: solution.is_sat(),
        assignments: solution.assignments().len(),
    });
    Ok((solution, stats))
}

/// Emits the `MetricsSnapshot` trace event — the registry's headline
/// aggregates — just before `SolveEnd`, when metrics are enabled.
fn emit_metrics_snapshot(
    tracer: &Tracer,
    options: &SolveOptions,
    stats: &SolveStats,
    track: &BudgetTrack,
) {
    if let Some(snapshot) = options.metrics.snapshot() {
        let product_states = stats.product_states;
        let states_built = track.states_built;
        let peak_bytes = stats.peak_bytes;
        let entries = snapshot.len() as u64;
        tracer.emit(|| TraceEventKind::MetricsSnapshot {
            product_states,
            states_built,
            peak_bytes,
            entries,
        });
    }
}

/// The dependency graph the (non-rewriting) solver actually uses for
/// `system`: its union-free constraints with the variable-free ones
/// removed (those are decided directly and never enter the graph). Trace
/// events' `node` ids refer to this graph — pair it with a recorded event
/// stream for the provenance DOT export.
pub fn solver_graph(system: &System) -> DependencyGraph {
    let constraints: Vec<Constraint> = system
        .union_free_constraints()
        .into_iter()
        .filter(|c| !c.lhs.variables().is_empty())
        .collect();
    DependencyGraph::from_constraints(system, &constraints)
}

/// Convenience wrapper: the first satisfying assignment, if any.
pub fn solve_first(system: &System, options: &SolveOptions) -> Option<Assignment> {
    let mut opts = options.clone();
    opts.max_assignments = Some(1);
    match solve(system, &opts) {
        Solution::Assignments(mut v) => v.pop(),
        Solution::Unsat => None,
    }
}

/// Turns a completed branch's node assignment into a variable assignment,
/// applying the nonemptiness and verification filters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_branch(
    system: &System,
    graph: &DependencyGraph,
    leaf: &BTreeMap<NodeId, Lang>,
    node_map: &BTreeMap<NodeId, Lang>,
    options: &SolveOptions,
    original: &System,
    verify_constraints: &[Constraint],
    tracer: &Tracer,
    group_index: usize,
) -> Option<Assignment> {
    let mut assignment = Assignment::new();
    for v in system.var_ids() {
        let node = graph.var_node(v);
        let machine = node_map
            .get(&node)
            .or_else(|| leaf.get(&node))
            .cloned()
            .unwrap_or_else(|| Lang::new(Nfa::sigma_star()));
        assignment.insert(v, machine);
    }
    if options.require_nonempty && assignment.has_empty_language() {
        tracer.emit(|| TraceEventKind::WorklistPrune {
            group: group_index,
            reason: "empty-language".to_owned(),
        });
        return None;
    }
    if options.verify {
        let _verify_span = tracer.span("verify", None, None);
        if !satisfies_ledgered(
            options.inclusion_engine,
            &options.ledger,
            original,
            verify_constraints,
            &assignment,
        ) {
            tracer.emit(|| TraceEventKind::WorklistPrune {
                group: group_index,
                reason: "verify-failed".to_owned(),
            });
            return None;
        }
    }
    Some(assignment)
}

/// Rewrites every constraint by stripping leading and trailing constant
/// operands into universal quotients of the right-hand side. Returns the
/// rewritten system (same variable interning) plus its union-free
/// constraints.
///
/// `C·e ⊆ c` holds iff `e ⊆ {w | ∀u ∈ L(C), u·w ∈ L(c)}` (the universal
/// left quotient), and symmetrically for trailing constants, so the
/// rewriting preserves the satisfying-assignment set exactly.
fn strip_constant_operands(system: &System) -> (System, Vec<Constraint>) {
    use dprle_automata::quotient::{left_quotient_universal, right_quotient_universal};
    let mut out = system.clone();
    let mut fresh = 0usize;
    let mut rewritten = Vec::new();
    for constraint in system.union_free_constraints() {
        // Flatten the concatenation spine.
        fn flatten(e: &Expr, parts: &mut Vec<Expr>) {
            match e {
                Expr::Concat(a, b) => {
                    flatten(a, parts);
                    flatten(b, parts);
                }
                other => parts.push(other.clone()),
            }
        }
        let mut parts = Vec::new();
        flatten(&constraint.lhs, &mut parts);
        if parts.iter().all(|p| matches!(p, Expr::Const(_))) {
            // Variable-free: leave for the direct check.
            rewritten.push(constraint);
            continue;
        }
        let mut bound = system.const_machine(constraint.rhs).clone();
        let mut changed = false;
        while let Some(Expr::Const(c)) = parts.first() {
            bound = left_quotient_universal(&bound, system.const_machine(*c));
            parts.remove(0);
            changed = true;
        }
        while let Some(Expr::Const(c)) = parts.last() {
            bound = right_quotient_universal(&bound, system.const_machine(*c));
            parts.pop();
            changed = true;
        }
        let rhs = if changed {
            let name = format!("__quot{fresh}");
            fresh += 1;
            out.constant(&name, bound)
        } else {
            constraint.rhs
        };
        let mut lhs = parts.remove(0);
        for p in parts {
            lhs = lhs.concat(p);
        }
        rewritten.push(Constraint { lhs, rhs });
    }
    (out, rewritten)
}

/// Checks a variable-free constraint by direct machine evaluation, through
/// the selected inclusion engine; recorded into the ledger under the
/// `const-check` site.
fn constant_constraint_holds_with(options: &SolveOptions, system: &System, c: &Constraint) -> bool {
    let lhs = eval_expr(system, &c.lhs, &Assignment::new());
    ledgered_subset(
        options.inclusion_engine,
        &options.ledger,
        SITE_CONST_CHECK,
        &lhs,
        system.const_machine(c.rhs),
    )
}

/// A `⊆` judgment through the selected engine, recorded into the ledger
/// as an engine-bypassing query (no store, no memo). Reads the clock only
/// when the ledger is enabled.
fn ledgered_subset(
    kind: EngineKind,
    ledger: &Ledger,
    site: &'static str,
    lhs: &Nfa,
    rhs: &Nfa,
) -> bool {
    // Resolve `auto` to its per-query winner so the ledger's engine
    // column names the worker that actually ran (and so the engine
    // dispatch below is concrete).
    let kind = inclusion_engine(kind).resolve(lhs, rhs);
    let engine = inclusion_engine(kind);
    if !ledger.is_enabled() {
        return engine.is_subset(lhs, rhs);
    }
    let started = Instant::now();
    let (result, cost) = engine
        .try_subset(lhs, rhs, &InclusionLimits::UNLIMITED)
        .expect("an unlimited inclusion check cannot abort");
    let wall = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    ledger.record(|| bypass_inclusion_draft(kind, site, lhs, rhs, Some(result), cost, wall));
    result
}

/// Evaluates `[e]_A`: substitutes assigned variable languages and folds
/// concatenations into one machine.
pub fn eval_expr(system: &System, e: &Expr, assignment: &Assignment) -> Nfa {
    match e {
        Expr::Var(v) => assignment
            .get(*v)
            .map(|l| l.nfa().clone())
            .unwrap_or_else(Nfa::sigma_star),
        Expr::Const(c) => system.const_machine(*c).clone(),
        Expr::Concat(a, b) => {
            ops::concat(
                &eval_expr(system, a, assignment),
                &eval_expr(system, b, assignment),
            )
            .nfa
        }
        Expr::Union(a, b) => ops::union(
            &eval_expr(system, a, assignment),
            &eval_expr(system, b, assignment),
        ),
    }
}

/// The *Satisfying* judgment (paper §3.1): every constraint holds under the
/// assignment, with constants at full strength. Decided by the default
/// (antichain) inclusion engine; the solver's verification filter uses
/// [`satisfies_with`] to honor [`SolveOptions::inclusion_engine`].
pub fn satisfies(system: &System, constraints: &[Constraint], assignment: &Assignment) -> bool {
    satisfies_with(EngineKind::default(), system, constraints, assignment)
}

/// [`satisfies`] through an explicitly selected inclusion engine.
pub fn satisfies_with(
    kind: EngineKind,
    system: &System,
    constraints: &[Constraint],
    assignment: &Assignment,
) -> bool {
    satisfies_ledgered(kind, &Ledger::disabled(), system, constraints, assignment)
}

/// [`satisfies_with`], recording each per-constraint `⊆` judgment into the
/// ledger under the `verify` site (the solver's verification filter).
pub(crate) fn satisfies_ledgered(
    kind: EngineKind,
    ledger: &Ledger,
    system: &System,
    constraints: &[Constraint],
    assignment: &Assignment,
) -> bool {
    constraints.iter().all(|c| {
        let lhs = eval_expr(system, &c.lhs, assignment);
        ledgered_subset(kind, ledger, SITE_VERIFY, &lhs, system.const_machine(c.rhs))
    })
}

/// Like [`satisfies`] but over the system's own (possibly union-carrying)
/// constraints.
pub fn satisfies_system(system: &System, assignment: &Assignment) -> bool {
    satisfies(system, system.constraints(), assignment)
}

/// Returns the set of variables for which `assignment` can be *extended* —
/// a violation of the paper's Maximal condition — under the restriction
/// that each variable occurs at most once per constraint (for
/// multi-occurrence constraints extension checking is not supported and
/// those variables are skipped).
///
/// For each variable `v` and each constraint `α·v·β ⊆ c` the maximal
/// admissible language for `v` (others fixed) is the universal quotient
/// `{w | ∀u ∈ [α], ∀u′ ∈ [β] : u·w·u′ ∈ c}`; `v` is extendable iff its
/// assigned language is a proper subset of the intersection of these.
pub fn extendable_vars(system: &System, assignment: &Assignment) -> Vec<VarId> {
    use dprle_automata::quotient::{left_quotient_universal, right_quotient_universal};
    let constraints = system.union_free_constraints();
    let mut out = Vec::new();
    'vars: for v in system.var_ids() {
        let Some(current) = assignment.get(v) else {
            continue;
        };
        let mut allowed: Option<Nfa> = None;
        for c in &constraints {
            let occurrences = c.lhs.variables().iter().filter(|x| **x == v).count();
            if occurrences == 0 {
                continue;
            }
            if occurrences > 1 {
                continue 'vars; // multi-occurrence: skip this variable
            }
            let (alpha, beta) = split_around(system, &c.lhs, v, assignment);
            let mut bound = system.const_machine(c.rhs).clone();
            bound = left_quotient_universal(&bound, &alpha);
            bound = right_quotient_universal(&bound, &beta);
            allowed = Some(match allowed {
                None => bound,
                Some(a) => ops::intersect_lang(&a, &bound),
            });
        }
        if let Some(allowed) = allowed {
            if !dprle_automata::is_subset(&allowed, current) {
                out.push(v);
            }
        }
    }
    out
}

/// Splits `e` (union-free) around the single occurrence of `v`: the
/// machines for the prefix context α and suffix context β with all other
/// variables substituted from `assignment`.
fn split_around(system: &System, e: &Expr, v: VarId, assignment: &Assignment) -> (Nfa, Nfa) {
    // Flatten the concat spine.
    fn flatten<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Concat(a, b) => {
                flatten(a, out);
                flatten(b, out);
            }
            other => out.push(other),
        }
    }
    let mut parts = Vec::new();
    flatten(e, &mut parts);
    let pos = parts
        .iter()
        .position(|p| matches!(p, Expr::Var(x) if *x == v))
        .expect("v occurs in e");
    let mut alpha = Nfa::epsilon();
    for p in &parts[..pos] {
        alpha = ops::concat(&alpha, &eval_expr(system, p, assignment)).nfa;
    }
    let mut beta = Nfa::epsilon();
    for p in &parts[pos + 1..] {
        beta = ops::concat(&beta, &eval_expr(system, p, assignment)).nfa;
    }
    (alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_automata::equivalent;
    use dprle_regex::Regex;

    fn exact(pattern: &str) -> Nfa {
        Regex::new(pattern)
            .expect("pattern compiles")
            .exact_language()
            .clone()
    }

    #[test]
    fn plain_intersection_system() {
        // §3.1.1 first example: v1 ⊆ (xx)+y, v1 ⊆ x*y → v1 = (xx)+y.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let a = sys.constant("a", exact("(xx)+y"));
        let b = sys.constant("b", exact("x*y"));
        sys.require(Expr::Var(v1), a);
        sys.require(Expr::Var(v1), b);
        let solution = solve(&sys, &SolveOptions::default());
        let asg = solution.first().expect("satisfiable");
        let x1 = asg.get(v1).expect("assigned");
        assert!(equivalent(x1, &exact("(xx)+y")));
        assert!(extendable_vars(&sys, asg).is_empty(), "solution is maximal");
    }

    #[test]
    fn motivating_example_end_to_end() {
        // v1 ⊆ c1 (faulty filter), c2·v1 ⊆ c3 (query contains a quote).
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c1 = sys.constant_regex("c1", "[\\d]+$").expect("filter");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant_regex("c3", "'").expect("quote");
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        let solution = solve(&sys, &SolveOptions::default());
        let asg = solution.first().expect("the code is vulnerable");
        let exploit = asg.witness(v1).expect("nonempty language");
        // Any witness passes the faulty filter and injects a quote.
        assert!(Regex::new("[\\d]+$").expect("re").is_match(&exploit));
        assert!(exploit.contains(&b'\''));
    }

    #[test]
    fn fixed_filter_is_unsatisfiable() {
        // With the corrected filter ^[\d]+$ the exploit language is empty:
        // the paper notes the algorithm then reports no bug.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c1 = sys.constant_regex("c1", "^[\\d]+$").expect("filter");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant_regex("c3", "'").expect("quote");
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        assert!(!solve(&sys, &SolveOptions::default()).is_sat());
    }

    #[test]
    fn variable_free_constraints_are_checked() {
        let mut sys = System::new();
        let small = sys.constant("small", exact("ab"));
        let big = sys.constant("big", exact("a*b*"));
        sys.require(Expr::Const(small), big);
        assert!(solve(&sys, &SolveOptions::default()).is_sat());

        let mut bad = System::new();
        let v = bad.var("v");
        let small = bad.constant("small", exact("ab"));
        let big = bad.constant("big", exact("a*b*"));
        bad.require(Expr::Const(big), small);
        bad.require(Expr::Var(v), big);
        assert!(!solve(&bad, &SolveOptions::default()).is_sat());
    }

    #[test]
    fn disjunctive_worklist_branches() {
        // Two independent CI groups, each with two disjuncts → 4 assignments.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let v4 = sys.var("v4");
        let cx = sys.constant("cx", exact("x(yy)+"));
        let cy = sys.constant("cy", exact("(yy)*z"));
        let ct = sys.constant("ct", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), cx);
        sys.require(Expr::Var(v2), cy);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), ct);
        sys.require(Expr::Var(v3), cx);
        sys.require(Expr::Var(v4), cy);
        sys.require(Expr::Var(v3).concat(Expr::Var(v4)), ct);
        let solution = solve(&sys, &SolveOptions::default());
        assert_eq!(solution.assignments().len(), 4);
        for a in solution.assignments() {
            assert!(satisfies_system(&sys, a));
        }
    }

    #[test]
    fn solve_first_stops_early() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let cx = sys.constant("cx", exact("x(yy)+"));
        let cy = sys.constant("cy", exact("(yy)*z"));
        let ct = sys.constant("ct", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), cx);
        sys.require(Expr::Var(v2), cy);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), ct);
        let first = solve_first(&sys, &SolveOptions::default()).expect("sat");
        assert!(satisfies_system(&sys, &first));
    }

    #[test]
    fn union_extension_solves() {
        // (v1 ∪ v2) ⊆ ab|cd with v1 ⊆ a., v2 ⊆ c. →
        // v1 = ab, v2 = cd.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c = sys.constant("c", exact("ab|cd"));
        let ca = sys.constant("ca", exact("a."));
        let cb = sys.constant("cb", exact("c."));
        sys.require(Expr::Var(v1), ca);
        sys.require(Expr::Var(v2), cb);
        sys.require(Expr::Var(v1).union(Expr::Var(v2)), c);
        let solution = solve(&sys, &SolveOptions::default());
        let asg = solution.first().expect("sat");
        assert!(equivalent(asg.get(v1).expect("v1"), &exact("ab")));
        assert!(equivalent(asg.get(v2).expect("v2"), &exact("cd")));
    }

    #[test]
    fn length_extension_solves() {
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", exact("a*"));
        sys.require(Expr::Var(v), c);
        sys.require_length(v, 2, 3);
        let solution = solve(&sys, &SolveOptions::default());
        let asg = solution.first().expect("sat");
        let lang = asg.get(v).expect("v");
        assert!(lang.contains(b"aa") && lang.contains(b"aaa"));
        assert!(!lang.contains(b"a") && !lang.contains(b"aaaa"));
    }

    #[test]
    fn unconstrained_variable_gets_sigma_star() {
        let mut sys = System::new();
        let v = sys.var("used");
        let w = sys.var("unused");
        let c = sys.constant("c", exact("a"));
        sys.require(Expr::Var(v), c);
        let solution = solve(&sys, &SolveOptions::default());
        let asg = solution.first().expect("sat");
        assert!(asg
            .get(w)
            .expect("unused var still assigned")
            .contains(b"anything"));
    }

    #[test]
    fn empty_result_reports_unsat_not_empty_assignment() {
        let mut sys = System::new();
        let v = sys.var("v");
        let ca = sys.constant("ca", exact("a"));
        let cb = sys.constant("cb", exact("b"));
        sys.require(Expr::Var(v), ca);
        sys.require(Expr::Var(v), cb);
        assert!(!solve(&sys, &SolveOptions::default()).is_sat());
        // With require_nonempty disabled the branch survives with ∅.
        let opts = SolveOptions {
            require_nonempty: false,
            ..Default::default()
        };
        let solution = solve(&sys, &opts);
        assert!(solution.is_sat());
        assert!(solution.first().expect("branch").has_empty_language());
    }

    #[test]
    fn maximality_detector_flags_shrunk_assignment() {
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", exact("a|b"));
        sys.require(Expr::Var(v), c);
        let mut shrunk = Assignment::new();
        shrunk.insert(v, exact("a"));
        assert!(satisfies_system(&sys, &shrunk));
        assert_eq!(extendable_vars(&sys, &shrunk), vec![v]);
        let solution = solve(&sys, &SolveOptions::default());
        assert!(extendable_vars(&sys, solution.first().expect("sat")).is_empty());
    }

    #[test]
    fn quotient_stripping_recovers_multistring_constant_solutions() {
        // c·v ⊆ {ab, abb} with c = {a, ab}: the maximal v is {b} (a·b = ab
        // and ab·b = abb both land in the bound). The paper-faithful
        // enumerate mode cannot keep the whole constant on one bridge edge
        // and reports unsat; quotient stripping is exact.
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", exact("a|ab"));
        let bound = sys.constant("bound", exact("ab|abb"));
        sys.require(Expr::Const(c).concat(Expr::Var(v)), bound);

        let faithful = solve(&sys, &SolveOptions::default());
        assert!(
            !faithful.is_sat(),
            "documented incompleteness of enumerate mode"
        );

        let opts = SolveOptions {
            strip_constant_operands: true,
            ..Default::default()
        };
        let solution = solve(&sys, &opts);
        let asg = solution
            .first()
            .expect("quotient mode finds the assignment");
        assert!(equivalent(asg.get(v).expect("assigned"), &exact("b")));
        assert!(satisfies_system(&sys, asg));
    }

    #[test]
    fn quotient_stripping_matches_enumerate_on_singletons() {
        // On the motivating example (singleton constant) both modes agree.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c1 = sys.constant_regex("c1", "[\\d]+$").expect("filter");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant_regex("c3", "'").expect("quote");
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        let base = solve(&sys, &SolveOptions::default());
        let opts = SolveOptions {
            strip_constant_operands: true,
            ..Default::default()
        };
        let stripped = solve(&sys, &opts);
        let a = base.first().expect("sat");
        let b = stripped.first().expect("sat");
        assert!(equivalent(
            a.get(v1).expect("assigned"),
            b.get(v1).expect("assigned")
        ));
    }

    #[test]
    fn quotient_stripping_handles_trailing_constants() {
        // v·c ⊆ {xa, xab}* shape: v ⊆ Σ*, v·"ab" ⊆ x(ab)+ → v = x(ab)*.
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", Nfa::literal(b"ab"));
        let bound = sys.constant("bound", exact("x(ab)+"));
        sys.require(Expr::Var(v).concat(Expr::Const(c)), bound);
        let opts = SolveOptions {
            strip_constant_operands: true,
            ..Default::default()
        };
        let solution = solve(&sys, &opts);
        let asg = solution.first().expect("sat");
        assert!(equivalent(asg.get(v).expect("assigned"), &exact("x(ab)*")));
    }

    #[test]
    fn trace_records_events() {
        let mut sys = System::new();
        let v = sys.var("v");
        let a = sys.constant("a", exact("ab*"));
        sys.require(Expr::Var(v), a);
        let options = SolveOptions {
            trace: true,
            ..Default::default()
        };
        let (_, stats) = solve_with_stats(&sys, &options);
        assert!(!stats.events.is_empty());
        let text = stats.events.join("\n");
        assert!(text.contains("union-free"), "{text}");
        assert!(text.contains("reduced v"), "{text}");
        // Default runs carry no trace.
        let (_, quiet) = solve_with_stats(&sys, &SolveOptions::default());
        assert!(quiet.events.is_empty());
    }

    #[test]
    fn stats_reflect_the_run() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let cx = sys.constant("cx", exact("x(yy)+"));
        let cy = sys.constant("cy", exact("(yy)*z"));
        let ct = sys.constant("ct", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), cx);
        sys.require(Expr::Var(v2), cy);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), ct);
        let (solution, stats) = solve_with_stats(&sys, &SolveOptions::default());
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.group_disjuncts, 2);
        assert_eq!(stats.branches_completed, 2);
        assert_eq!(stats.branches_filtered, 0);
        assert!(stats.max_leaf_states > 0);
        assert_eq!(solution.assignments().len(), 2);

        // An unsat plain-intersection system: no groups, one filtered branch.
        let mut unsat = System::new();
        let v = unsat.var("v");
        let a = unsat.constant("a", exact("a"));
        let b = unsat.constant("b", exact("b"));
        unsat.require(Expr::Var(v), a);
        unsat.require(Expr::Var(v), b);
        let (solution, stats) = solve_with_stats(&unsat, &SolveOptions::default());
        assert!(!solution.is_sat());
        assert_eq!(stats.groups, 0);
        assert_eq!(stats.branches_filtered, 1);
    }

    #[test]
    fn eval_expr_folds_concats() {
        let mut sys = System::new();
        let a = sys.constant("a", exact("a"));
        let b = sys.constant("b", exact("b"));
        let m = eval_expr(
            &sys,
            &Expr::Const(a).concat(Expr::Const(b)),
            &Assignment::new(),
        );
        assert!(m.contains(b"ab"));
        assert!(!m.contains(b"a"));
    }

    /// Two independent CI-groups, each producing two disjuncts — the
    /// smallest system whose worklist genuinely branches (4 complete
    /// branches, queue trajectory 1 → 2 → 3 → 4).
    fn two_group_disjunctive_system() -> System {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let v4 = sys.var("v4");
        let cx = sys.constant("cx", exact("x(yy)+"));
        let cy = sys.constant("cy", exact("(yy)*z"));
        let ct = sys.constant("ct", exact("xyyz|xyyyyz"));
        sys.require(Expr::Var(v1), cx);
        sys.require(Expr::Var(v2), cy);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), ct);
        sys.require(Expr::Var(v3), cx);
        sys.require(Expr::Var(v4), cy);
        sys.require(Expr::Var(v3).concat(Expr::Var(v4)), ct);
        sys
    }

    #[test]
    fn peak_worklist_counts_every_enqueue() {
        let sys = two_group_disjunctive_system();
        // Trajectory: seed (1); pop + group 0 pushes two children (2);
        // pop + group 1 pushes two (3); pop + group 1 pushes two (4).
        let (solution, stats) = solve_with_stats(&sys, &SolveOptions::default());
        assert_eq!(solution.assignments().len(), 4);
        assert_eq!(stats.peak_worklist, 4);
        // An early `max_assignments` exit must not lose the high-water
        // mark: the peak is reached while branching, before the first
        // completed branch stops the run.
        let opts = SolveOptions {
            max_assignments: Some(1),
            ..SolveOptions::default()
        };
        let (solution, stats) = solve_with_stats(&sys, &opts);
        assert_eq!(solution.assignments().len(), 1);
        assert_eq!(stats.peak_worklist, 4);
    }

    #[test]
    fn counter_fields_enumerate_every_numeric_stat_field() {
        // Drift guard: adding a numeric field to `SolveStats` without
        // adding it to `counter_fields` silently drops it from the CLI
        // stats output and the bench JSON. Parse the Debug rendering of
        // the struct (rustc formats every field as `name: value`) and
        // require a 1:1 match with the kebab-cased counter names; `events`
        // is the only non-numeric field and is exempt.
        let debug = format!("{:?}", SolveStats::default());
        let body = debug
            .trim_start_matches("SolveStats {")
            .trim_end_matches('}');
        let mut fields: Vec<String> = body
            .split(", ")
            .filter_map(|pair| pair.split(':').next())
            .map(|name| name.trim().replace('_', "-"))
            .filter(|name| name != "events")
            .collect();
        let stats = SolveStats::default();
        let mut counters: Vec<String> = stats
            .counter_fields()
            .iter()
            .map(|(name, _)| name.to_string())
            .collect();
        fields.sort();
        counters.sort();
        assert_eq!(
            counters, fields,
            "counter_fields() must list exactly the numeric SolveStats fields"
        );
    }

    #[test]
    fn budget_product_cap_errs_instead_of_blowing_up() {
        let sys = two_group_disjunctive_system();
        let opts = SolveOptions {
            budget: crate::metrics::Budget {
                max_product_states: Some(1),
                ..Default::default()
            },
            ..SolveOptions::default()
        };
        let store = LangStore::new();
        let err = try_solve_traced(&sys, &opts, &store, &Tracer::disabled())
            .expect_err("a 1-product-state budget must trip");
        assert_eq!(err.kind, BudgetKind::ProductStates);
        assert_eq!(err.limit, 1);
        assert!(
            err.observed <= err.limit,
            "the per-op cap aborts before exceeding the limit: observed {} > limit {}",
            err.observed,
            err.limit
        );
        assert!(err.snapshot.is_none(), "metrics were disabled");
        assert!(err.to_string().contains("product-states"));
        // The same system solves cleanly with the budget lifted.
        let sys = two_group_disjunctive_system();
        let (solution, stats) = try_solve_traced(
            &sys,
            &SolveOptions::default(),
            &LangStore::new(),
            &Tracer::disabled(),
        )
        .expect("unlimited budget");
        assert_eq!(solution.assignments().len(), 4);
        assert!(stats.product_states > 0);
    }

    #[test]
    fn budget_live_states_and_deadline_trip() {
        let sys = two_group_disjunctive_system();
        let opts = SolveOptions {
            budget: crate::metrics::Budget {
                max_live_states: Some(1),
                ..Default::default()
            },
            ..SolveOptions::default()
        };
        let err = try_solve_traced(&sys, &opts, &LangStore::new(), &Tracer::disabled())
            .expect_err("reduce-phase leaves exceed one live state");
        assert_eq!(err.kind, BudgetKind::LiveStates);
        assert!(err.observed > err.limit);

        let sys = two_group_disjunctive_system();
        let opts = SolveOptions {
            budget: crate::metrics::Budget {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
            ..SolveOptions::default()
        };
        let err = try_solve_traced(&sys, &opts, &LangStore::new(), &Tracer::disabled())
            .expect_err("a zero deadline trips at the first worklist entry");
        assert_eq!(err.kind, BudgetKind::Deadline);
    }

    #[test]
    fn budget_breach_is_identical_across_thread_counts() {
        let breach = |jobs: usize| {
            let sys = two_group_disjunctive_system();
            let opts = SolveOptions {
                jobs,
                budget: crate::metrics::Budget {
                    max_product_states: Some(1),
                    ..Default::default()
                },
                ..SolveOptions::default()
            };
            let err = try_solve_traced(&sys, &opts, &LangStore::new(), &Tracer::disabled())
                .expect_err("budget trips at every jobs count");
            (err.kind, err.limit, err.observed)
        };
        let base = breach(1);
        for jobs in [2, 4, 8] {
            assert_eq!(breach(jobs), base, "jobs={jobs}");
        }
    }

    #[test]
    fn metrics_registry_reflects_the_run() {
        let sys = two_group_disjunctive_system();
        let metrics = Metrics::enabled();
        let opts = SolveOptions {
            metrics: metrics.clone(),
            ..SolveOptions::default()
        };
        let (solution, stats) = solve_with_stats(&sys, &opts);
        assert_eq!(solution.assignments().len(), 4);
        let snapshot = metrics.snapshot().expect("enabled registry");
        assert_eq!(
            snapshot
                .get("core.solve.product_states")
                .expect("recorded")
                .headline(),
            stats.product_states,
            "driver-accumulated stats and the registry agree"
        );
        let gauge = snapshot.get("core.worklist.depth").expect("recorded");
        match gauge.value {
            crate::metrics::MetricValue::Gauge { value, peak } => {
                assert_eq!(peak, stats.peak_worklist as u64);
                assert_eq!(value, 0, "the queue drains by the end");
            }
            ref other => panic!("worklist depth is a gauge, got {other:?}"),
        }
        assert!(
            snapshot
                .get("core.store.memo_bytes")
                .expect("recorded")
                .headline()
                > 0,
            "interning charged the memo byte account"
        );
        assert_eq!(
            stats.peak_bytes,
            snapshot.get("core.store.memo_bytes").unwrap().headline()
        );
    }

    #[test]
    fn metrics_snapshots_are_identical_across_thread_counts() {
        let run = |jobs: usize| {
            let sys = two_group_disjunctive_system();
            let metrics = Metrics::enabled();
            let opts = SolveOptions {
                jobs,
                metrics: metrics.clone(),
                ..SolveOptions::default()
            };
            let store = LangStore::new();
            let _ = solve_traced(&sys, &opts, &store, &Tracer::disabled());
            metrics.snapshot().expect("enabled").to_jsonl(0)
        };
        let baseline = run(1);
        assert!(baseline.contains("automata.intersect.products"));
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs), baseline, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_matches_sequential_solutions_and_stats() {
        // Each run gets a *fresh* system: fingerprint hit/miss counters
        // depend on the handles' interior caches, which a previous run over
        // the same `System` would have warmed.
        let sequential = SolveOptions {
            trace: true,
            ..SolveOptions::default()
        };
        let (seq, seq_stats) = solve_with_stats(&two_group_disjunctive_system(), &sequential);
        for jobs in [2, 4, 8] {
            let sys = two_group_disjunctive_system();
            let opts = SolveOptions {
                jobs,
                ..sequential.clone()
            };
            let (par, par_stats) = solve_with_stats(&sys, &opts);
            assert_eq!(par.assignments().len(), seq.assignments().len());
            for (a, b) in seq.assignments().iter().zip(par.assignments()) {
                for v in sys.var_ids() {
                    let (sa, sb) = (a.get(v).expect("assigned"), b.get(v).expect("assigned"));
                    assert_eq!(sa.fingerprint(), sb.fingerprint(), "jobs={jobs} var {v:?}");
                }
            }
            // Full equality: every counter *and* the human-readable event
            // strings (SolveStats derives PartialEq over all fields).
            assert_eq!(par_stats, seq_stats, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_respects_max_assignments() {
        let sys = two_group_disjunctive_system();
        for jobs in [1, 4] {
            let opts = SolveOptions {
                max_assignments: Some(2),
                jobs,
                ..SolveOptions::default()
            };
            let (solution, stats) = solve_with_stats(&sys, &opts);
            assert_eq!(solution.assignments().len(), 2, "jobs={jobs}");
            assert_eq!(stats.branches_completed, 2, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_solver_handle_matches_options_knob() {
        let opts = SolveOptions::default();
        let (via_handle, handle_stats) = crate::parallel::ParallelSolver::new(4)
            .solve_with_stats(&two_group_disjunctive_system(), &opts);
        let (via_knob, knob_stats) = solve_with_stats(
            &two_group_disjunctive_system(),
            &SolveOptions {
                jobs: 4,
                ..opts.clone()
            },
        );
        assert_eq!(via_handle.assignments().len(), via_knob.assignments().len());
        assert_eq!(handle_stats, knob_stats);
    }

    #[test]
    fn parallel_unsat_group_drains_cleanly() {
        // The branching groups are satisfiable but a later group is not →
        // every branch dies. Fresh systems per run (see above).
        fn build() -> System {
            let mut sys = two_group_disjunctive_system();
            let v5 = sys.var("v5");
            let v6 = sys.var("v6");
            let ca = sys.constant("ca", exact("a"));
            let cb = sys.constant("cb", exact("b"));
            let cc = sys.constant("cc", exact("c"));
            sys.require(Expr::Var(v5), ca);
            sys.require(Expr::Var(v6), cb);
            sys.require(Expr::Var(v5).concat(Expr::Var(v6)), cc);
            sys
        }
        let (seq, seq_stats) = solve_with_stats(&build(), &SolveOptions::default());
        let (par, par_stats) = solve_with_stats(
            &build(),
            &SolveOptions {
                jobs: 4,
                ..SolveOptions::default()
            },
        );
        assert!(!seq.is_sat());
        assert!(!par.is_sat());
        assert_eq!(par_stats, seq_stats);
    }
}
