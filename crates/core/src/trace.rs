//! Structured solver tracing: typed events, hierarchical spans, and sinks.
//!
//! The aggregate [`SolveStats`](crate::SolveStats) counters say *how much*
//! a run cost; this module says *where*. The solver (and the gci,
//! incremental, and unsat-core layers) is threaded with a [`Tracer`] handle
//! that, when enabled, emits a stream of typed [`TraceEvent`]s — reduce
//! steps, CI-group discovery, per-disjunct `gci` branching (the paper's
//! Figure 8 `all_combinations`), worklist branch/prune decisions, and
//! memo-cache hits from the [`LangStore`](dprle_automata::LangStore) — each
//! stamped with a monotonic timestamp and, where meaningful, the
//! dependency-graph vertex it concerns (Figure 5 node ids).
//!
//! **Zero cost when disabled.** [`Tracer::disabled`] carries no state; every
//! emission site goes through [`Tracer::emit`], which takes a closure and
//! never runs it (never allocates, never reads the clock) unless a sink is
//! attached. The bench suite guards this with a disabled-vs-enabled timing
//! comparison.
//!
//! **Spans.** Phases are delimited by `SpanStart`/`SpanEnd` event pairs
//! managed by RAII guards ([`Tracer::span`]), forming a properly nested
//! hierarchy (checked by [`check_well_nested`] and a property test). Span
//! durations are *cumulative*: a `minimize` span inside a `reduce` span
//! counts toward both phases.
//!
//! **Sinks.** Three consumers ship with the CLI:
//!
//! * [`JsonlSink`] — one JSON object per line (`--trace-out trace.jsonl`),
//!   schema-checked against `docs/trace.schema.json` ([`validate_jsonl`]);
//! * [`TraceReport`] — in-memory aggregation behind `--trace=summary` and
//!   the `dprle trace-report` subcommand (per-phase wall-time table, top-5
//!   hottest CI-groups);
//! * [`provenance_dot`] — the Figure 5 dependency graph annotated with
//!   per-vertex visit counts and cumulative time (`--trace-dot`).
//!
//! Event ↔ pseudocode mapping (see DESIGN.md §5 "Observability"):
//!
//! | Event | Paper location |
//! |---|---|
//! | `ReduceStep` | Fig. 7 lines 3–8 (`reduce`) |
//! | `CiGroupStart`/`End` | Fig. 7 line 10 (group selection) |
//! | `GciDisjunct` | Fig. 8 `all_combinations` output |
//! | `WorklistBranch`/`Prune` | Fig. 7 lines 13–14 / 16–23 |
//! | `MemoHit`/`MemoMiss` | implementation cache (PR 1) |

use crate::graph::{DependencyGraph, NodeKind};
use crate::spec::System;
use dprle_automata::{StoreObserver, StoreOp};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A typed trace event payload. Every variant maps to a step of the
/// paper's Figure 7/8 pseudocode or to an implementation-layer cache (see
/// the module docs for the table).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A solver run began (`solve`, Fig. 7 line 1).
    SolveStart {
        /// Union-free constraints in the (possibly rewritten) system.
        constraints: usize,
        /// Declared variables.
        vars: usize,
    },
    /// The run finished.
    SolveEnd {
        /// Whether any assignment survived.
        sat: bool,
        /// Number of disjunctive assignments returned.
        assignments: usize,
    },
    /// A phase span opened (closed by the matching [`SpanEnd`] with the
    /// same `span` id).
    ///
    /// [`SpanEnd`]: TraceEventKind::SpanEnd
    SpanStart {
        /// Unique span id (per tracer session).
        span: u64,
        /// Enclosing span id (`0` = top level).
        parent: u64,
        /// Phase name (`solve`, `reduce`, `gci`, `minimize`, `verify`, …).
        phase: String,
        /// Dependency-graph vertex this span is attributable to, if any.
        node: Option<u32>,
        /// CI-group index this span is attributable to, if any.
        group: Option<usize>,
    },
    /// A phase span closed.
    SpanEnd {
        /// Id of the span being closed.
        span: u64,
        /// Phase name (repeated for self-describing JSONL lines).
        phase: String,
    },
    /// One variable's reduce step completed (Fig. 7 lines 3–8): its leaf
    /// machine is the intersection of its inbound subset constants.
    ReduceStep {
        /// Dependency-graph vertex of the variable.
        node: u32,
        /// Variable name.
        var: String,
        /// States of the reduced leaf machine.
        states: usize,
    },
    /// The generalized concat-intersect procedure started on a CI-group
    /// (Fig. 7 line 10 / Fig. 8).
    CiGroupStart {
        /// Group index (order of discovery in the dependency graph).
        group: usize,
        /// Dependency-graph vertices belonging to the group.
        nodes: Vec<u32>,
        /// Number of ε-bridges in the group (one per ∘-edge pair).
        bridges: usize,
    },
    /// The group finished, producing `disjuncts` disjunctive solutions.
    CiGroupEnd {
        /// Group index.
        group: usize,
        /// Number of disjunctive group solutions.
        disjuncts: usize,
    },
    /// One disjunctive group solution (Fig. 8 `all_combinations` member)
    /// that survived constant filtering and dedup.
    GciDisjunct {
        /// Group index.
        group: usize,
        /// The group's bridge count (every disjunct fixes one ε-instance
        /// per bridge).
        bridge_eps: usize,
        /// Total NFA states across the solution's leaf machines.
        states: usize,
        /// Hash of the solution's canonical language fingerprints
        /// (identifies language-identical disjuncts across runs).
        fingerprint: u64,
    },
    /// A worklist entry was enqueued for the next group (Fig. 7 lines
    /// 13–14: branching on a disjunctive group solution).
    WorklistBranch {
        /// Index of the group whose disjunct caused the branch.
        group: usize,
        /// Worklist depth after the push.
        depth: usize,
    },
    /// A branch died (Fig. 7 lines 16–23, or an unsatisfiable group).
    WorklistPrune {
        /// Group index (the group count itself for completed branches
        /// pruned by the final filters).
        group: usize,
        /// Why: `empty-language`, `verify-failed`, or `group-unsat`.
        reason: String,
    },
    /// A memoized [`LangStore`](dprle_automata::LangStore) operation was
    /// answered from cache.
    MemoHit {
        /// Operation: `fingerprint`, `intersect`, `inclusion`, `minimize`.
        op: String,
    },
    /// A memoized operation was computed fresh.
    MemoMiss {
        /// Operation: `fingerprint`, `intersect`, `inclusion`, `minimize`.
        op: String,
    },
    /// An incremental-solver scope was opened.
    IncrementalPush {
        /// Scope depth after the push.
        depth: usize,
    },
    /// An incremental-solver scope was closed.
    IncrementalPop {
        /// Scope depth after the pop.
        depth: usize,
    },
    /// An incremental `check` started.
    IncrementalCheck {
        /// Constraints on the assertion stack.
        assertions: usize,
    },
    /// One deletion trial of the unsat-core minimizer.
    UnsatCoreTrial {
        /// Constraint index the trial dropped.
        dropped: usize,
        /// Whether the system stayed unsat without it (if so, the
        /// constraint is redundant and leaves the core).
        still_unsat: bool,
    },
    /// Headline totals of the solve's metrics registry, emitted just
    /// before [`SolveEnd`] when metrics are enabled, so journals correlate
    /// phase spans with operation costs. The full per-metric breakdown
    /// lives in the JSON/Prometheus snapshot (`--metrics-out`); this event
    /// carries the budget-relevant aggregates.
    ///
    /// [`SolveEnd`]: TraceEventKind::SolveEnd
    MetricsSnapshot {
        /// Cumulative product states charged by group solving.
        product_states: u64,
        /// Cumulative states built into group solutions.
        states_built: u64,
        /// Peak memo-table byte estimate over the run.
        peak_bytes: u64,
        /// Number of metric entries in the full registry snapshot.
        entries: u64,
    },
}

impl TraceEventKind {
    /// Every kind name, in a stable order (the JSON `kind` discriminators;
    /// `docs/trace.schema.json` must cover exactly this set — a drift test
    /// enforces it).
    pub const ALL_KINDS: &'static [&'static str] = &[
        "SolveStart",
        "SolveEnd",
        "SpanStart",
        "SpanEnd",
        "ReduceStep",
        "CiGroupStart",
        "CiGroupEnd",
        "GciDisjunct",
        "WorklistBranch",
        "WorklistPrune",
        "MemoHit",
        "MemoMiss",
        "IncrementalPush",
        "IncrementalPop",
        "IncrementalCheck",
        "UnsatCoreTrial",
        "MetricsSnapshot",
    ];

    /// The JSON `kind` discriminator for this event.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEventKind::SolveStart { .. } => "SolveStart",
            TraceEventKind::SolveEnd { .. } => "SolveEnd",
            TraceEventKind::SpanStart { .. } => "SpanStart",
            TraceEventKind::SpanEnd { .. } => "SpanEnd",
            TraceEventKind::ReduceStep { .. } => "ReduceStep",
            TraceEventKind::CiGroupStart { .. } => "CiGroupStart",
            TraceEventKind::CiGroupEnd { .. } => "CiGroupEnd",
            TraceEventKind::GciDisjunct { .. } => "GciDisjunct",
            TraceEventKind::WorklistBranch { .. } => "WorklistBranch",
            TraceEventKind::WorklistPrune { .. } => "WorklistPrune",
            TraceEventKind::MemoHit { .. } => "MemoHit",
            TraceEventKind::MemoMiss { .. } => "MemoMiss",
            TraceEventKind::IncrementalPush { .. } => "IncrementalPush",
            TraceEventKind::IncrementalPop { .. } => "IncrementalPop",
            TraceEventKind::IncrementalCheck { .. } => "IncrementalCheck",
            TraceEventKind::UnsatCoreTrial { .. } => "UnsatCoreTrial",
            TraceEventKind::MetricsSnapshot { .. } => "MetricsSnapshot",
        }
    }
}

/// One recorded trace event: a sequence number, a monotonic timestamp in
/// microseconds since the tracer session began, and the typed payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Session-monotonic sequence number (0-based).
    pub seq: u64,
    /// Microseconds since the tracer was created (monotonic clock).
    pub ts_us: u64,
    /// Serving request this event belongs to, stamped by a tagged tracer
    /// ([`Tracer::new_tagged`]) so a shared `dprle serve` journal joins
    /// against responses and ledger records. `None` — and *absent* from the
    /// JSONL line, keeping one-shot runs byte-identical — outside serve.
    pub request_id: Option<Arc<str>>,
    /// The event payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Serializes the event as one flat JSON object (a JSONL line, without
    /// the trailing newline). `fingerprint` is encoded as a 16-digit hex
    /// string so 64-bit values survive f64-based JSON consumers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\"",
            self.seq,
            self.ts_us,
            self.kind.kind_name()
        );
        match &self.kind {
            TraceEventKind::SolveStart { constraints, vars } => {
                let _ = write!(out, ",\"constraints\":{constraints},\"vars\":{vars}");
            }
            TraceEventKind::SolveEnd { sat, assignments } => {
                let _ = write!(out, ",\"sat\":{sat},\"assignments\":{assignments}");
            }
            TraceEventKind::SpanStart {
                span,
                parent,
                phase,
                node,
                group,
            } => {
                let _ = write!(
                    out,
                    ",\"span\":{span},\"parent\":{parent},\"phase\":{}",
                    json_string(phase)
                );
                match node {
                    Some(n) => {
                        let _ = write!(out, ",\"node\":{n}");
                    }
                    None => out.push_str(",\"node\":null"),
                }
                match group {
                    Some(g) => {
                        let _ = write!(out, ",\"group\":{g}");
                    }
                    None => out.push_str(",\"group\":null"),
                }
            }
            TraceEventKind::SpanEnd { span, phase } => {
                let _ = write!(out, ",\"span\":{span},\"phase\":{}", json_string(phase));
            }
            TraceEventKind::ReduceStep { node, var, states } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"var\":{},\"states\":{states}",
                    json_string(var)
                );
            }
            TraceEventKind::CiGroupStart {
                group,
                nodes,
                bridges,
            } => {
                let _ = write!(out, ",\"group\":{group},\"nodes\":[");
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}");
                }
                let _ = write!(out, "],\"bridges\":{bridges}");
            }
            TraceEventKind::CiGroupEnd { group, disjuncts } => {
                let _ = write!(out, ",\"group\":{group},\"disjuncts\":{disjuncts}");
            }
            TraceEventKind::GciDisjunct {
                group,
                bridge_eps,
                states,
                fingerprint,
            } => {
                let _ = write!(
                    out,
                    ",\"group\":{group},\"bridge_eps\":{bridge_eps},\"states\":{states},\"fingerprint\":\"{fingerprint:016x}\""
                );
            }
            TraceEventKind::WorklistBranch { group, depth } => {
                let _ = write!(out, ",\"group\":{group},\"depth\":{depth}");
            }
            TraceEventKind::WorklistPrune { group, reason } => {
                let _ = write!(out, ",\"group\":{group},\"reason\":{}", json_string(reason));
            }
            TraceEventKind::MemoHit { op } | TraceEventKind::MemoMiss { op } => {
                let _ = write!(out, ",\"op\":{}", json_string(op));
            }
            TraceEventKind::IncrementalPush { depth }
            | TraceEventKind::IncrementalPop { depth } => {
                let _ = write!(out, ",\"depth\":{depth}");
            }
            TraceEventKind::IncrementalCheck { assertions } => {
                let _ = write!(out, ",\"assertions\":{assertions}");
            }
            TraceEventKind::UnsatCoreTrial {
                dropped,
                still_unsat,
            } => {
                let _ = write!(out, ",\"dropped\":{dropped},\"still_unsat\":{still_unsat}");
            }
            TraceEventKind::MetricsSnapshot {
                product_states,
                states_built,
                peak_bytes,
                entries,
            } => {
                let _ = write!(
                    out,
                    ",\"product_states\":{product_states},\"states_built\":{states_built},\"peak_bytes\":{peak_bytes},\"entries\":{entries}"
                );
            }
        }
        if let Some(request_id) = &self.request_id {
            let _ = write!(out, ",\"request_id\":{}", json_string(request_id));
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line back into an event (inverse of
    /// [`TraceEvent::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad JSON,
    /// unknown kind, missing or mistyped field).
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let value = Json::parse(line)?;
        let obj = value.as_object().ok_or("event line is not a JSON object")?;
        let seq = get_u64(obj, "seq")?;
        let ts_us = get_u64(obj, "ts_us")?;
        let kind_name = get_str(obj, "kind")?;
        let kind = match kind_name {
            "SolveStart" => TraceEventKind::SolveStart {
                constraints: get_usize(obj, "constraints")?,
                vars: get_usize(obj, "vars")?,
            },
            "SolveEnd" => TraceEventKind::SolveEnd {
                sat: get_bool(obj, "sat")?,
                assignments: get_usize(obj, "assignments")?,
            },
            "SpanStart" => TraceEventKind::SpanStart {
                span: get_u64(obj, "span")?,
                parent: get_u64(obj, "parent")?,
                phase: get_str(obj, "phase")?.to_owned(),
                node: get_opt_u32(obj, "node")?,
                group: get_opt_u32(obj, "group")?.map(|g| g as usize),
            },
            "SpanEnd" => TraceEventKind::SpanEnd {
                span: get_u64(obj, "span")?,
                phase: get_str(obj, "phase")?.to_owned(),
            },
            "ReduceStep" => TraceEventKind::ReduceStep {
                node: get_u64(obj, "node")? as u32,
                var: get_str(obj, "var")?.to_owned(),
                states: get_usize(obj, "states")?,
            },
            "CiGroupStart" => TraceEventKind::CiGroupStart {
                group: get_usize(obj, "group")?,
                nodes: get_u32_array(obj, "nodes")?,
                bridges: get_usize(obj, "bridges")?,
            },
            "CiGroupEnd" => TraceEventKind::CiGroupEnd {
                group: get_usize(obj, "group")?,
                disjuncts: get_usize(obj, "disjuncts")?,
            },
            "GciDisjunct" => TraceEventKind::GciDisjunct {
                group: get_usize(obj, "group")?,
                bridge_eps: get_usize(obj, "bridge_eps")?,
                states: get_usize(obj, "states")?,
                fingerprint: {
                    let hex = get_str(obj, "fingerprint")?;
                    u64::from_str_radix(hex, 16)
                        .map_err(|e| format!("bad fingerprint {hex:?}: {e}"))?
                },
            },
            "WorklistBranch" => TraceEventKind::WorklistBranch {
                group: get_usize(obj, "group")?,
                depth: get_usize(obj, "depth")?,
            },
            "WorklistPrune" => TraceEventKind::WorklistPrune {
                group: get_usize(obj, "group")?,
                reason: get_str(obj, "reason")?.to_owned(),
            },
            "MemoHit" => TraceEventKind::MemoHit {
                op: get_str(obj, "op")?.to_owned(),
            },
            "MemoMiss" => TraceEventKind::MemoMiss {
                op: get_str(obj, "op")?.to_owned(),
            },
            "IncrementalPush" => TraceEventKind::IncrementalPush {
                depth: get_usize(obj, "depth")?,
            },
            "IncrementalPop" => TraceEventKind::IncrementalPop {
                depth: get_usize(obj, "depth")?,
            },
            "IncrementalCheck" => TraceEventKind::IncrementalCheck {
                assertions: get_usize(obj, "assertions")?,
            },
            "UnsatCoreTrial" => TraceEventKind::UnsatCoreTrial {
                dropped: get_usize(obj, "dropped")?,
                still_unsat: get_bool(obj, "still_unsat")?,
            },
            "MetricsSnapshot" => TraceEventKind::MetricsSnapshot {
                product_states: get_u64(obj, "product_states")?,
                states_built: get_u64(obj, "states_built")?,
                peak_bytes: get_u64(obj, "peak_bytes")?,
                entries: get_u64(obj, "entries")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        let request_id = get_opt_str(obj, "request_id")?.map(Arc::from);
        Ok(TraceEvent {
            seq,
            ts_us,
            request_id,
            kind,
        })
    }
}

/// Parses a whole JSONL document (blank lines skipped) into events.
///
/// # Errors
///
/// Returns `line N: <problem>` for the first offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(TraceEvent::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Tracer + sinks
// ---------------------------------------------------------------------

/// Consumes trace events as they are produced. Implementations must be
/// cheap and non-blocking — they run inline on the solver's thread.
pub trait TraceSink: Send + Sync {
    /// Called once per event, in emission order.
    fn record(&self, event: &TraceEvent);
}

/// The handle threaded through the solver. Cloning shares the session
/// (sequence numbers, clock, and span stack). [`Tracer::disabled`] (also
/// the `Default`) carries nothing: every emission site short-circuits on a
/// null check and never constructs the event.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
    next_span: AtomicU64,
    /// Stack of open span ids, for parent attribution. The solver is
    /// single-threaded per run; the mutex is uncontended.
    stack: Mutex<Vec<u64>>,
    /// Request id stamped on every event ([`Tracer::new_tagged`]); `None`
    /// for one-shot tracers, whose events omit the field entirely.
    tag: Option<Arc<str>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default for every untraced
    /// solver entry point).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording to `sink`, with timestamps measured from now.
    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer::build(sink, None)
    }

    /// A tracer recording to `sink` that stamps `request_id` on every
    /// event. `dprle serve` gives each request its own tagged tracer over
    /// one shared journal sink, so concurrently interleaved events join
    /// against their response and ledger records.
    pub fn new_tagged(sink: Arc<dyn TraceSink>, request_id: &str) -> Tracer {
        Tracer::build(sink, Some(Arc::from(request_id)))
    }

    fn build(sink: Arc<dyn TraceSink>, tag: Option<Arc<str>>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
                tag,
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `build`. When the tracer is disabled
    /// the closure never runs — emission sites pay one branch.
    pub fn emit(&self, build: impl FnOnce() -> TraceEventKind) {
        if let Some(inner) = &self.inner {
            inner.record(build());
        }
    }

    /// Opens a phase span; the returned guard closes it on drop. `node`
    /// and `group` attribute the span's wall time to a dependency-graph
    /// vertex / CI-group in reports and the DOT provenance export.
    pub fn span(&self, phase: &'static str, node: Option<u32>, group: Option<usize>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { open: None };
        };
        let span = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut stack = inner.stack.lock().expect("span stack");
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(span);
            parent
        };
        inner.record(TraceEventKind::SpanStart {
            span,
            parent,
            phase: phase.to_owned(),
            node,
            group,
        });
        SpanGuard {
            open: Some(OpenSpan {
                tracer: self.clone(),
                span,
                phase,
            }),
        }
    }

    /// Forks a tracer that records into a private in-memory buffer while
    /// sharing this tracer's clock. Worker threads trace into their own
    /// fork and the coordinator replays the buffers in a deterministic
    /// order via [`Tracer::absorb_events`], so the merged journal is
    /// independent of thread scheduling. The fork starts with a fresh
    /// sequence/span-id space and an empty span stack; both are remapped
    /// on absorption. A disabled tracer forks another disabled tracer
    /// (and no buffer), keeping the zero-cost property.
    pub fn fork_buffered(&self) -> (Tracer, Option<Arc<CollectSink>>) {
        let Some(inner) = &self.inner else {
            return (Tracer::disabled(), None);
        };
        let sink = Arc::new(CollectSink::new());
        let child = Tracer {
            inner: Some(Arc::new(TracerInner {
                sink: sink.clone() as Arc<dyn TraceSink>,
                epoch: inner.epoch,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
                tag: inner.tag.clone(),
            })),
        };
        (child, Some(sink))
    }

    /// Replays events captured by a [`Tracer::fork_buffered`] fork into
    /// this tracer, in order: sequence numbers are re-assigned from this
    /// tracer's counter, span ids are remapped to fresh ids here (the
    /// parent of a fork-top-level span becomes this tracer's innermost
    /// open span), and the recorded timestamps — measured against the
    /// shared epoch — are preserved. Replayed spans were already closed
    /// inside the fork, so this tracer's span stack is untouched.
    pub fn absorb_events(&self, events: Vec<TraceEvent>) {
        let Some(inner) = &self.inner else { return };
        let outer_parent = inner
            .stack
            .lock()
            .expect("span stack")
            .last()
            .copied()
            .unwrap_or(0);
        let mut remap: BTreeMap<u64, u64> = BTreeMap::new();
        for mut event in events {
            match &mut event.kind {
                TraceEventKind::SpanStart { span, parent, .. } => {
                    let fresh = inner.next_span.fetch_add(1, Ordering::Relaxed);
                    remap.insert(*span, fresh);
                    *parent = remap.get(parent).copied().unwrap_or(outer_parent);
                    *span = fresh;
                }
                TraceEventKind::SpanEnd { span, .. } => {
                    if let Some(fresh) = remap.get(span) {
                        *span = *fresh;
                    }
                }
                _ => {}
            }
            event.seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.sink.record(&event);
        }
    }
}

impl TracerInner {
    fn record(&self, kind: TraceEventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.sink.record(&TraceEvent {
            seq,
            ts_us,
            request_id: self.tag.clone(),
            kind,
        });
    }
}

/// RAII guard for an open span (see [`Tracer::span`]).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    tracer: Tracer,
    span: u64,
    phase: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let Some(inner) = &open.tracer.inner else {
            return;
        };
        {
            let mut stack = inner.stack.lock().expect("span stack");
            // Guards drop LIFO within the solver, so the top is ours;
            // tolerate (and repair) a stray entry rather than panicking in
            // a tracing layer.
            if let Some(pos) = stack.iter().rposition(|&s| s == open.span) {
                stack.truncate(pos);
            }
        }
        inner.record(TraceEventKind::SpanEnd {
            span: open.span,
            phase: open.phase.to_owned(),
        });
    }
}

/// Collects events in memory (summary mode, tests, report generation).
#[derive(Default)]
pub struct CollectSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().expect("collect sink"))
    }

    /// Clones the events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("collect sink").clone()
    }
}

impl TraceSink for CollectSink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("collect sink")
            .push(event.clone());
    }
}

/// Discards every event. An *enabled* tracer over a `NullSink` still pays
/// event construction; the bench overhead guard compares it against the
/// disabled tracer to bound the cost of the instrumentation itself.
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Fans every event out to several sinks in order (e.g. a JSONL journal
/// and an in-memory collector for the post-run summary).
pub struct TeeSink(pub Vec<Arc<dyn TraceSink>>);

impl TraceSink for TeeSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.0 {
            sink.record(event);
        }
    }
}

/// Streams events as JSON Lines to a writer (`--trace-out`).
pub struct JsonlSink<W: std::io::Write + Send> {
    out: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wraps `out`; each event becomes one line.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("jsonl sink");
        let _ = w.flush();
        w
    }

    /// Flushes buffered output, surfacing any deferred write error (the
    /// per-event writes swallow errors to keep the solver running).
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's flush error.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("jsonl sink").flush()
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut out = self.out.lock().expect("jsonl sink");
        // I/O errors are not allowed to abort a solve; the CLI flushes and
        // surfaces failures when closing the sink.
        let _ = writeln!(out, "{}", event.to_json());
    }
}

/// Adapter installing a [`Tracer`] as a
/// [`LangStore`](dprle_automata::LangStore) observer: memo-cache outcomes
/// become `MemoHit`/`MemoMiss` events.
pub struct TracerStoreObserver(pub Tracer);

impl StoreObserver for TracerStoreObserver {
    fn memo_event(&self, op: StoreOp, hit: bool) {
        self.0.emit(|| {
            if hit {
                TraceEventKind::MemoHit {
                    op: op.name().to_owned(),
                }
            } else {
                TraceEventKind::MemoMiss {
                    op: op.name().to_owned(),
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// Aggregation: TraceReport
// ---------------------------------------------------------------------

/// Aggregated per-phase wall time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase name.
    pub phase: String,
    /// Number of spans.
    pub count: u64,
    /// Cumulative wall time (child spans count toward their ancestors).
    pub total_us: u64,
}

/// Aggregation of one trace: per-phase timings, per-group and per-vertex
/// attributions, and memo-cache totals. Built either from in-memory events
/// (`--trace=summary`) or from a parsed JSONL file (`dprle trace-report`).
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Total events aggregated.
    pub events: usize,
    /// Wall-clock span of the trace (first to last timestamp).
    pub total_us: u64,
    /// Per-phase rows, hottest first.
    pub phases: Vec<PhaseRow>,
    /// Cumulative `gci` span time per CI-group.
    pub group_us: BTreeMap<usize, u64>,
    /// Disjunctive solutions recorded per CI-group.
    pub group_disjuncts: BTreeMap<usize, usize>,
    /// Event count per kind name.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Memo-cache hits (all operations).
    pub memo_hits: u64,
    /// Memo-cache misses.
    pub memo_misses: u64,
    /// Per-vertex visit counts (reduce steps + group membership).
    pub node_visits: BTreeMap<u32, u64>,
    /// Per-vertex cumulative span time.
    pub node_us: BTreeMap<u32, u64>,
}

impl TraceReport {
    /// Aggregates `events`, validating span nesting on the way.
    ///
    /// # Errors
    ///
    /// Returns a description of the first nesting violation (a `SpanEnd`
    /// that does not close the innermost open span, or a span left open at
    /// the end of the trace).
    pub fn from_events(events: &[TraceEvent]) -> Result<TraceReport, String> {
        let mut report = TraceReport {
            events: events.len(),
            ..TraceReport::default()
        };
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            report.total_us = last.ts_us.saturating_sub(first.ts_us);
        }
        // Open spans: (id, phase, start ts, node, group).
        type OpenSpan = (u64, String, u64, Option<u32>, Option<usize>);
        let mut open: Vec<OpenSpan> = Vec::new();
        let mut phase_totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for event in events {
            *report
                .kind_counts
                .entry(event.kind.kind_name())
                .or_insert(0) += 1;
            match &event.kind {
                TraceEventKind::SpanStart {
                    span,
                    phase,
                    node,
                    group,
                    ..
                } => {
                    open.push((*span, phase.clone(), event.ts_us, *node, *group));
                }
                TraceEventKind::SpanEnd { span, phase } => {
                    let Some((id, open_phase, start, node, group)) = open.pop() else {
                        return Err(format!(
                            "seq {}: SpanEnd {span} ({phase}) with no open span",
                            event.seq
                        ));
                    };
                    if id != *span {
                        return Err(format!(
                            "seq {}: SpanEnd {span} ({phase}) but innermost open span is {id} ({open_phase})",
                            event.seq
                        ));
                    }
                    let us = event.ts_us.saturating_sub(start);
                    let slot = phase_totals.entry(open_phase).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += us;
                    if let Some(node) = node {
                        *report.node_us.entry(node).or_insert(0) += us;
                        *report.node_visits.entry(node).or_insert(0) += 1;
                    }
                    if let Some(group) = group {
                        *report.group_us.entry(group).or_insert(0) += us;
                    }
                }
                TraceEventKind::ReduceStep { node, .. } => {
                    *report.node_visits.entry(*node).or_insert(0) += 1;
                }
                TraceEventKind::CiGroupStart { nodes, .. } => {
                    for n in nodes {
                        *report.node_visits.entry(*n).or_insert(0) += 1;
                    }
                }
                TraceEventKind::GciDisjunct { group, .. } => {
                    *report.group_disjuncts.entry(*group).or_insert(0) += 1;
                }
                TraceEventKind::MemoHit { .. } => report.memo_hits += 1,
                TraceEventKind::MemoMiss { .. } => report.memo_misses += 1,
                _ => {}
            }
        }
        if let Some((id, phase, ..)) = open.last() {
            return Err(format!("span {id} ({phase}) never closed"));
        }
        report.phases = phase_totals
            .into_iter()
            .map(|(phase, (count, total_us))| PhaseRow {
                phase,
                count,
                total_us,
            })
            .collect();
        report.phases.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.phase.cmp(&b.phase))
        });
        Ok(report)
    }

    /// Cumulative wall time of one phase, if it occurred.
    pub fn phase_us(&self, phase: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.total_us)
    }

    /// The `n` hottest CI-groups as `(group, cumulative µs, disjuncts)`,
    /// hottest first.
    pub fn top_groups(&self, n: usize) -> Vec<(usize, u64, usize)> {
        let mut rows: Vec<(usize, u64, usize)> = self
            .group_us
            .iter()
            .map(|(&g, &us)| (g, us, self.group_disjuncts.get(&g).copied().unwrap_or(0)))
            .collect();
        // Groups that produced disjuncts but never got a timed span still
        // deserve a row.
        for (&g, &d) in &self.group_disjuncts {
            if !self.group_us.contains_key(&g) {
                rows.push((g, 0, d));
            }
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Renders the human-readable summary: the per-phase time table, the
    /// top-5 hottest CI-groups, and memo-cache totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over {:.3} ms",
            self.events,
            self.total_us as f64 / 1000.0
        );
        if !self.phases.is_empty() {
            let _ = writeln!(out, "trace: per-phase wall time (cumulative):");
            let _ = writeln!(out, "trace:   {:<16} {:>8} {:>12}", "phase", "spans", "ms");
            for row in &self.phases {
                let _ = writeln!(
                    out,
                    "trace:   {:<16} {:>8} {:>12.3}",
                    row.phase,
                    row.count,
                    row.total_us as f64 / 1000.0
                );
            }
        }
        let top = self.top_groups(5);
        if !top.is_empty() {
            let _ = writeln!(out, "trace: hottest CI-groups (top {}):", top.len());
            let _ = writeln!(
                out,
                "trace:   {:<8} {:>12} {:>10}",
                "group", "ms", "disjuncts"
            );
            for (group, us, disjuncts) in top {
                let _ = writeln!(
                    out,
                    "trace:   {:<8} {:>12.3} {:>10}",
                    group,
                    us as f64 / 1000.0,
                    disjuncts
                );
            }
        }
        if self.memo_hits + self.memo_misses > 0 {
            let _ = writeln!(
                out,
                "trace: memo cache: {} hits / {} misses ({:.1}% hit rate)",
                self.memo_hits,
                self.memo_misses,
                100.0 * self.memo_hits as f64 / (self.memo_hits + self.memo_misses) as f64
            );
        }
        let disjuncts: usize = self.group_disjuncts.values().sum();
        let _ = writeln!(
            out,
            "trace: {} CI-group(s) traced, {} disjunct(s) recorded",
            self.group_disjuncts.len().max(self.group_us.len()),
            disjuncts
        );
        out
    }
}

/// Checks that every `SpanEnd` closes the innermost open span and no span
/// stays open — the well-nestedness invariant the RAII guards maintain.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_well_nested(events: &[TraceEvent]) -> Result<(), String> {
    TraceReport::from_events(events).map(|_| ())
}

// ---------------------------------------------------------------------
// Provenance DOT export
// ---------------------------------------------------------------------

/// Renders the dependency graph (paper Fig. 5) annotated with per-vertex
/// visit counts and cumulative attributable time from a trace — the
/// "where did the run go" picture. Vertices never visited are drawn
/// dashed.
pub fn provenance_dot(graph: &DependencyGraph, system: &System, events: &[TraceEvent]) -> String {
    let report = TraceReport::from_events(events).unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "digraph solver_provenance {{");
    let _ = writeln!(
        out,
        "  label=\"solver provenance (visits, cumulative time)\";"
    );
    for i in 0..graph.num_nodes() {
        let node = crate::graph::NodeId(i as u32);
        let (name, shape) = match graph.kind(node) {
            NodeKind::Var(v) => (system.var_name(v).to_owned(), "circle"),
            NodeKind::Const(c) => (system.const_name(c).to_owned(), "box"),
            NodeKind::Temp(t) => (format!("t{t}"), "diamond"),
        };
        let visits = report.node_visits.get(&(i as u32)).copied().unwrap_or(0);
        let us = report.node_us.get(&(i as u32)).copied().unwrap_or(0);
        let label = if us > 0 {
            format!("{name}\\n{visits} visit(s), {:.3} ms", us as f64 / 1000.0)
        } else {
            format!("{name}\\n{visits} visit(s)")
        };
        let style = if visits == 0 { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\", shape={shape}{style}];",
            label.replace('"', "\\\"")
        );
    }
    for e in graph.subset_edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"⊆\"];",
            e.source.index(),
            e.target.index()
        );
    }
    for e in graph.concat_edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"∘l\", style=dashed];",
            e.left.index(),
            e.target.index()
        );
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"∘r\", style=dashed];",
            e.right.index(),
            e.target.index()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------
// Schema validation (shared serde-free machinery in `crate::schema`)
// ---------------------------------------------------------------------

/// The JSON Schema for trace events, embedded from
/// `docs/trace.schema.json` so the binary validates against exactly the
/// checked-in contract.
pub const TRACE_SCHEMA: &str = include_str!("../../../docs/trace.schema.json");

pub use crate::schema::{schema_kinds, validate_jsonl};

pub(crate) use crate::schema::Json;
use crate::schema::{
    get_bool, get_opt_str, get_opt_u32, get_str, get_u32_array, get_u64, get_usize, json_string,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        tracer.emit(|| TraceEventKind::SolveStart {
            constraints: 3,
            vars: 2,
        });
        {
            let _solve = tracer.span("solve", None, None);
            {
                let _reduce = tracer.span("reduce", Some(0), None);
                tracer.emit(|| TraceEventKind::ReduceStep {
                    node: 0,
                    var: "v1".to_owned(),
                    states: 4,
                });
            }
            {
                let _gci = tracer.span("gci", None, Some(0));
                tracer.emit(|| TraceEventKind::CiGroupStart {
                    group: 0,
                    nodes: vec![0, 1, 5],
                    bridges: 1,
                });
                tracer.emit(|| TraceEventKind::GciDisjunct {
                    group: 0,
                    bridge_eps: 1,
                    states: 7,
                    fingerprint: 0xdead_beef_0102_0304,
                });
                tracer.emit(|| TraceEventKind::CiGroupEnd {
                    group: 0,
                    disjuncts: 1,
                });
            }
            tracer.emit(|| TraceEventKind::MemoHit {
                op: "intersect".to_owned(),
            });
            tracer.emit(|| TraceEventKind::WorklistPrune {
                group: 1,
                reason: "empty-language".to_owned(),
            });
        }
        tracer.emit(|| TraceEventKind::SolveEnd {
            sat: true,
            assignments: 1,
        });
        sink.take()
    }

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let tracer = Tracer::disabled();
        tracer.emit(|| unreachable!("closure must not run when disabled"));
        let _span = tracer.span("solve", None, None);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn events_are_sequenced_and_monotone() {
        let events = sample_events();
        assert!(!events.is_empty());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        for pair in events.windows(2) {
            assert!(pair[1].ts_us >= pair[0].ts_us);
        }
    }

    #[test]
    fn spans_are_well_nested_with_parents() {
        let events = sample_events();
        check_well_nested(&events).expect("RAII guards nest");
        // The reduce span's parent is the solve span.
        let solve_id = events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::SpanStart { span, phase, .. } if phase == "solve" => Some(*span),
                _ => None,
            })
            .expect("solve span");
        let reduce_parent = events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::SpanStart { parent, phase, .. } if phase == "reduce" => {
                    Some(*parent)
                }
                _ => None,
            })
            .expect("reduce span");
        assert_eq!(reduce_parent, solve_id);
    }

    #[test]
    fn json_roundtrip_preserves_every_event() {
        let events = sample_events();
        for event in &events {
            let line = event.to_json();
            let back = TraceEvent::from_json(&line).expect("parses");
            assert_eq!(&back, event, "{line}");
        }
    }

    #[test]
    fn jsonl_sink_round_trips_through_parse_jsonl() {
        let events = sample_events();
        let sink = JsonlSink::new(Vec::<u8>::new());
        for e in &events {
            sink.record(e);
        }
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn report_aggregates_phases_groups_and_memo() {
        let events = sample_events();
        let report = TraceReport::from_events(&events).expect("well nested");
        assert_eq!(report.events, events.len());
        let phases: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert!(phases.contains(&"solve"));
        assert!(phases.contains(&"reduce"));
        assert!(phases.contains(&"gci"));
        assert_eq!(report.group_disjuncts.get(&0), Some(&1));
        assert_eq!(report.memo_hits, 1);
        assert_eq!(report.memo_misses, 0);
        // Node 0 was visited by the reduce span, the reduce step, and group
        // membership.
        assert_eq!(report.node_visits.get(&0), Some(&3));
        let rendered = report.render();
        assert!(rendered.contains("per-phase wall time"), "{rendered}");
        assert!(rendered.contains("hottest CI-groups"), "{rendered}");
        assert!(rendered.contains("memo cache"), "{rendered}");
    }

    #[test]
    fn ill_nested_traces_are_rejected() {
        let mut events = sample_events();
        // Drop a SpanEnd: the trace now has an unclosed span.
        let pos = events
            .iter()
            .position(|e| matches!(e.kind, TraceEventKind::SpanEnd { .. }))
            .expect("has span ends");
        events.remove(pos);
        assert!(check_well_nested(&events).is_err());
    }

    #[test]
    fn schema_validates_generated_events() {
        let events = sample_events();
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let n = validate_jsonl(TRACE_SCHEMA, &jsonl).expect("schema-valid");
        assert_eq!(n, events.len());
    }

    #[test]
    fn tagged_events_validate_roundtrip_and_untagged_events_omit_the_field() {
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new_tagged(sink.clone(), "r42");
        tracer.emit(|| TraceEventKind::SolveStart {
            constraints: 1,
            vars: 1,
        });
        {
            let _solve = tracer.span("solve", None, None);
        }
        let jsonl: String = sink.take().iter().map(|e| e.to_json() + "\n").collect();
        let n = validate_jsonl(TRACE_SCHEMA, &jsonl).expect("tagged events are schema-valid");
        assert_eq!(n, 3);
        for event in parse_jsonl(&jsonl).expect("tagged events parse back") {
            assert_eq!(event.request_id.as_deref(), Some("r42"));
        }

        // Untagged tracers must omit the field entirely — not serialize
        // `"request_id":null` — so one-shot journals stay byte-identical
        // to pre-tagging output.
        let untagged: String = sample_events().iter().map(|e| e.to_json() + "\n").collect();
        assert!(!untagged.contains("request_id"), "{untagged}");
    }

    #[test]
    fn schema_rejects_unknown_kinds_and_missing_fields() {
        let bogus = "{\"seq\":0,\"ts_us\":0,\"kind\":\"NotAnEvent\"}";
        assert!(validate_jsonl(TRACE_SCHEMA, bogus).is_err());
        let missing = "{\"seq\":0,\"ts_us\":0,\"kind\":\"GciDisjunct\",\"group\":0}";
        assert!(validate_jsonl(TRACE_SCHEMA, missing).is_err());
        let extra =
            "{\"seq\":0,\"ts_us\":0,\"kind\":\"MemoHit\",\"op\":\"intersect\",\"smuggled\":1}";
        assert!(validate_jsonl(TRACE_SCHEMA, extra).is_err());
    }

    #[test]
    fn schema_covers_exactly_the_event_taxonomy() {
        let mut covered = schema_kinds(TRACE_SCHEMA).expect("schema parses");
        covered.sort();
        let mut expected: Vec<String> = TraceEventKind::ALL_KINDS
            .iter()
            .map(|s| s.to_string())
            .collect();
        expected.sort();
        assert_eq!(covered, expected, "docs/trace.schema.json drifted");
    }

    #[test]
    fn fork_buffered_of_disabled_tracer_is_disabled() {
        let (fork, sink) = Tracer::disabled().fork_buffered();
        assert!(!fork.is_enabled());
        assert!(sink.is_none());
    }

    #[test]
    fn absorbed_fork_events_match_direct_emission() {
        // The same span/event structure once emitted directly and once
        // through a fork + absorb must serialize identically (timestamps
        // aside): same seq numbering, same span ids, same parents.
        let emit_body = |tracer: &Tracer| {
            let _outer = tracer.span("gci", None, Some(0));
            tracer.emit(|| TraceEventKind::MemoHit {
                op: "intersect".to_owned(),
            });
            let _inner = tracer.span("verify", Some(3), None);
            tracer.emit(|| TraceEventKind::MemoMiss {
                op: "minimize".to_owned(),
            });
        };

        let direct_sink = Arc::new(CollectSink::new());
        let direct = Tracer::new(direct_sink.clone());
        {
            let _solve = direct.span("solve", None, None);
            emit_body(&direct);
            emit_body(&direct);
        }

        let merged_sink = Arc::new(CollectSink::new());
        let merged = Tracer::new(merged_sink.clone());
        {
            let _solve = merged.span("solve", None, None);
            // Two forks recorded "concurrently", absorbed in order.
            let (fork_a, buf_a) = merged.fork_buffered();
            let (fork_b, buf_b) = merged.fork_buffered();
            emit_body(&fork_b);
            emit_body(&fork_a);
            merged.absorb_events(buf_a.expect("enabled").take());
            merged.absorb_events(buf_b.expect("enabled").take());
        }

        let strip_ts = |events: Vec<TraceEvent>| -> Vec<String> {
            events
                .into_iter()
                .map(|mut e| {
                    e.ts_us = 0;
                    e.to_json()
                })
                .collect()
        };
        assert_eq!(strip_ts(direct_sink.take()), strip_ts(merged_sink.take()));
    }

    #[test]
    fn absorbed_span_parents_rebind_to_the_open_span() {
        let sink = Arc::new(CollectSink::new());
        let tracer = Tracer::new(sink.clone());
        let outer = tracer.span("solve", None, None);
        let (fork, buf) = tracer.fork_buffered();
        {
            let _s = fork.span("gci", None, Some(1));
        }
        tracer.absorb_events(buf.expect("enabled").take());
        drop(outer);
        let events = sink.take();
        let outer_id = match &events[0].kind {
            TraceEventKind::SpanStart { span, .. } => *span,
            other => panic!("expected outer SpanStart, got {other:?}"),
        };
        match &events[1].kind {
            TraceEventKind::SpanStart { span, parent, .. } => {
                assert_eq!(*parent, outer_id, "fork root rebinds to open span");
                assert_ne!(*span, outer_id, "fresh id, no collision");
            }
            other => panic!("expected absorbed SpanStart, got {other:?}"),
        }
        // Seqs are contiguous across direct and absorbed events.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
    }
}
