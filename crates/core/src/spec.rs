//! The constraint language: subset constraints over regular languages.
//!
//! This module implements the grammar of the paper's Figure 2,
//!
//! ```text
//! S ::= E ⊆ C        subset constraint
//! E ::= E · E        language concatenation
//!     | C | V
//! C ::= c₁ | … | cₙ   constants
//! V ::= v₁ | … | vₘ   variables
//! ```
//!
//! plus the §3.1.2 extension of union on the left-hand side (which desugars
//! exactly: `(e₁ ∪ e₂) ⊆ c ⟺ e₁ ⊆ c ∧ e₂ ⊆ c`, distributing over
//! concatenation).
//!
//! A [`System`] interns variables by name and constants by name+machine and
//! owns the list of constraints. It is the input to the dependency-graph
//! construction and the solver.

use dprle_automata::{Lang, Nfa};
use dprle_regex::Regex;
use std::fmt;

/// Identifier of an interned language variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// Identifier of an interned constant language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConstId(pub u32);

/// The left-hand side of a subset constraint: concatenations and unions of
/// variables and constants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A language variable.
    Var(VarId),
    /// A constant language.
    Const(ConstId),
    /// Concatenation `e₁ · e₂`.
    Concat(Box<Expr>, Box<Expr>),
    /// Union `e₁ ∪ e₂` (§3.1.2 extension; desugared before solving).
    Union(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Concatenates two expressions.
    pub fn concat(self, rhs: Expr) -> Expr {
        Expr::Concat(Box::new(self), Box::new(rhs))
    }

    /// Unions two expressions.
    pub fn union(self, rhs: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(rhs))
    }

    /// All variables occurring in the expression, in occurrence order
    /// (duplicates preserved).
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Const(_) => {}
            Expr::Concat(a, b) | Expr::Union(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Whether the expression contains any union node.
    pub fn has_union(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::Union(_, _) => true,
            Expr::Concat(a, b) => a.has_union() || b.has_union(),
        }
    }

    /// Rewrites the expression into a union of union-free expressions
    /// (distributing `·` over `∪`).
    pub fn into_union_free(self) -> Vec<Expr> {
        match self {
            Expr::Var(_) | Expr::Const(_) => vec![self],
            Expr::Union(a, b) => {
                let mut out = a.into_union_free();
                out.extend(b.into_union_free());
                out
            }
            Expr::Concat(a, b) => {
                let lefts = a.into_union_free();
                let rights = b.into_union_free();
                let mut out = Vec::with_capacity(lefts.len() * rights.len());
                for l in &lefts {
                    for r in &rights {
                        out.push(l.clone().concat(r.clone()));
                    }
                }
                out
            }
        }
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

impl From<ConstId> for Expr {
    fn from(c: ConstId) -> Expr {
        Expr::Const(c)
    }
}

/// A single subset constraint `lhs ⊆ rhs` where `rhs` is a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// The left-hand expression.
    pub lhs: Expr,
    /// The constant the expression must be contained in.
    pub rhs: ConstId,
}

/// A system of subset constraints over a shared set of variables — an
/// instance `I = {s₁, …, sₚ}` of the Regular Matching Assignments problem
/// (paper §3.1).
///
/// # Examples
///
/// Build the paper's motivating system `v₁ ⊆ c₁, c₂·v₁ ⊆ c₃`:
///
/// ```
/// use dprle_core::{Expr, System};
/// use dprle_automata::Nfa;
///
/// let mut sys = System::new();
/// let v1 = sys.var("v1");
/// let c1 = sys.constant_regex("c1", "[\\d]+$")?; // faulty filter, search mode
/// let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
/// let c3 = sys.constant_regex("c3", "'")?;       // contains a quote
/// sys.require(Expr::Var(v1), c1);
/// sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
/// assert_eq!(sys.num_constraints(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct System {
    vars: Vec<String>,
    consts: Vec<(String, Lang)>,
    constraints: Vec<Constraint>,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> System {
        System::default()
    }

    /// Interns a variable by name, returning its id. Repeated calls with
    /// the same name return the same id.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(i) = self.vars.iter().position(|n| n == name) {
            return VarId(i as u32);
        }
        self.vars.push(name.to_owned());
        VarId((self.vars.len() - 1) as u32)
    }

    /// Interns a constant language under `name`.
    ///
    /// Unlike variables, constants are interned by *name only*: registering
    /// a different machine under an existing name replaces nothing and
    /// returns the existing id — use distinct names for distinct languages.
    ///
    /// Accepts an owned [`Nfa`] or an already-shared [`Lang`] handle; the
    /// table stores handles, so cloning a `System` shares the machines.
    pub fn constant(&mut self, name: &str, machine: impl Into<Lang>) -> ConstId {
        if let Some(i) = self.consts.iter().position(|(n, _)| n == name) {
            return ConstId(i as u32);
        }
        self.consts.push((name.to_owned(), machine.into()));
        ConstId((self.consts.len() - 1) as u32)
    }

    /// Interns a constant from a regex pattern with *search* (`preg_match`)
    /// semantics: the language of subjects in which the pattern matches.
    ///
    /// # Errors
    ///
    /// Propagates regex parse/compile errors.
    pub fn constant_regex(
        &mut self,
        name: &str,
        pattern: &str,
    ) -> Result<ConstId, dprle_regex::ParseRegexError> {
        let re = Regex::new(pattern)?;
        Ok(self.constant(name, re.search_language().clone()))
    }

    /// Interns a constant from a regex pattern with *exact* (full-match)
    /// semantics.
    ///
    /// # Errors
    ///
    /// Propagates regex parse/compile errors.
    pub fn constant_regex_exact(
        &mut self,
        name: &str,
        pattern: &str,
    ) -> Result<ConstId, dprle_regex::ParseRegexError> {
        let re = Regex::new(pattern)?;
        Ok(self.constant(name, re.exact_language().clone()))
    }

    /// Adds the constraint `lhs ⊆ rhs`.
    pub fn require(&mut self, lhs: impl Into<Expr>, rhs: ConstId) {
        self.constraints.push(Constraint {
            lhs: lhs.into(),
            rhs,
        });
    }

    /// Restricts `var` to strings of length `min..=max` (§3.1.2 extension:
    /// substring/length modeling). Implemented as an ordinary subset
    /// constraint against a fresh length-window constant.
    pub fn require_length(&mut self, var: VarId, min: usize, max: usize) {
        let name = format!("__len_{min}_{max}");
        let c = self.constant(&name, Nfa::length_between(min, max));
        self.require(Expr::Var(var), c);
    }

    /// The number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The number of interned constants.
    pub fn num_consts(&self) -> usize {
        self.consts.len()
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize]
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// The name of a constant.
    pub fn const_name(&self, c: ConstId) -> &str {
        &self.consts[c.0 as usize].0
    }

    /// The machine of a constant.
    pub fn const_machine(&self, c: ConstId) -> &Nfa {
        self.consts[c.0 as usize].1.nfa()
    }

    /// The shared language handle of a constant (clone is O(1); the handle
    /// carries the constant's cached fingerprint across solver phases).
    pub fn const_lang(&self, c: ConstId) -> &Lang {
        &self.consts[c.0 as usize].1
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// The constraints of the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Keeps only the first `len` constraints (used by the incremental
    /// solver's scope retraction).
    pub(crate) fn retain_constraints(&mut self, len: usize) {
        self.constraints.truncate(len);
    }

    /// Returns the constraints with every union desugared away
    /// (`(e₁ ∪ e₂) ⊆ c` becomes `e₁ ⊆ c, e₂ ⊆ c`).
    pub fn union_free_constraints(&self) -> Vec<Constraint> {
        let mut out = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            if c.lhs.has_union() {
                for e in c.lhs.clone().into_union_free() {
                    out.push(Constraint { lhs: e, rhs: c.rhs });
                }
            } else {
                out.push(c.clone());
            }
        }
        out
    }

    /// Renders an expression using interned names.
    pub fn expr_to_string(&self, e: &Expr) -> String {
        match e {
            Expr::Var(v) => self.var_name(*v).to_owned(),
            Expr::Const(c) => self.const_name(*c).to_owned(),
            Expr::Concat(a, b) => {
                format!("{} . {}", self.expr_to_string(a), self.expr_to_string(b))
            }
            Expr::Union(a, b) => {
                format!("({} | {})", self.expr_to_string(a), self.expr_to_string(b))
            }
        }
    }
}

impl fmt::Display for System {
    /// Renders the system one constraint per line, e.g. `c2 . v1 <= c3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.constraints {
            writeln!(
                f,
                "{} <= {}",
                self.expr_to_string(&c.lhs),
                self.const_name(c.rhs)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut sys = System::new();
        let a = sys.var("a");
        let b = sys.var("b");
        assert_ne!(a, b);
        assert_eq!(sys.var("a"), a);
        assert_eq!(sys.num_vars(), 2);
        assert_eq!(sys.var_name(b), "b");
        assert_eq!(sys.var_id("b"), Some(b));
        assert_eq!(sys.var_id("zz"), None);
    }

    #[test]
    fn constant_interning_by_name() {
        let mut sys = System::new();
        let c1 = sys.constant("k", Nfa::literal(b"x"));
        let c2 = sys.constant("k", Nfa::literal(b"y"));
        assert_eq!(c1, c2);
        assert!(sys.const_machine(c1).contains(b"x"));
        assert_eq!(sys.num_consts(), 1);
    }

    #[test]
    fn regex_constants() {
        let mut sys = System::new();
        let c = sys.constant_regex("digits", "^[0-9]+$").expect("compiles");
        assert!(sys.const_machine(c).contains(b"123"));
        assert!(!sys.const_machine(c).contains(b"12a"));
        let search = sys.constant_regex("has_quote", "'").expect("compiles");
        assert!(sys.const_machine(search).contains(b"a'b"));
        assert!(sys.constant_regex("bad", "(").is_err());
    }

    #[test]
    fn expr_variables_in_order() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let e = Expr::Var(v2).concat(Expr::Var(v1)).concat(Expr::Var(v2));
        assert_eq!(e.variables(), vec![v2, v1, v2]);
    }

    #[test]
    fn union_desugars_distributively() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let c = sys.constant("c", Nfa::sigma_star());
        // (v1 ∪ v2) · v3 ⊆ c  desugars to  v1·v3 ⊆ c, v2·v3 ⊆ c.
        let e = Expr::Var(v1).union(Expr::Var(v2)).concat(Expr::Var(v3));
        assert!(e.has_union());
        sys.require(e, c);
        let flat = sys.union_free_constraints();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0].lhs, Expr::Var(v1).concat(Expr::Var(v3)));
        assert_eq!(flat[1].lhs, Expr::Var(v2).concat(Expr::Var(v3)));
        assert!(!flat[0].lhs.has_union());
    }

    #[test]
    fn length_constraint_is_a_subset_constraint() {
        let mut sys = System::new();
        let v = sys.var("v");
        sys.require_length(v, 1, 3);
        assert_eq!(sys.num_constraints(), 1);
        let c = sys.constraints()[0].rhs;
        assert!(sys.const_machine(c).contains(b"ab"));
        assert!(!sys.const_machine(c).contains(b""));
        assert!(!sys.const_machine(c).contains(b"abcd"));
    }

    #[test]
    fn display_renders_constraints() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let c2 = sys.constant("c2", Nfa::literal(b"nid_"));
        let c3 = sys.constant("c3", Nfa::sigma_star());
        sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
        assert_eq!(sys.to_string(), "c2 . v1 <= c3\n");
    }
}
