//! Dependency-graph generation (paper §3.4.1, Figure 5).
//!
//! Each unique variable and constant gets a vertex; every concatenation in
//! a constraint's left-hand side gets a *fresh* temporary vertex `t` plus a
//! pair of ∘-edges (`ConcatEdgePair`), and the top-level rule adds one
//! ⊆-edge from the right-hand constant to the left-hand side's vertex.
//! For systems of multiple constraints the graphs are unioned (shared
//! variables and constants reuse their vertices).
//!
//! *CI-groups* (paper §3.4.3) — the connected components induced by
//! ∘-edges — are what the generalized concat-intersect procedure solves one
//! at a time.

use crate::spec::{ConstId, Expr, System, VarId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Identifier of a dependency-graph vertex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the graph's node vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a dependency-graph vertex represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A language variable.
    Var(VarId),
    /// A constant language.
    Const(ConstId),
    /// A fresh temporary for one concatenation occurrence (Figure 5, the
    /// `E → E · E` rule).
    Temp(u32),
}

/// A ∘-edge pair: constrains `[target]` to strings in `[left] · [right]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConcatEdgePair {
    /// Left operand vertex (`n_a —∘l→ n₀`).
    pub left: NodeId,
    /// Right operand vertex (`n_b —∘r→ n₀`).
    pub right: NodeId,
    /// The concatenation-result vertex `n₀`.
    pub target: NodeId,
}

/// A ⊆-edge `source —⊆→ target`, requiring `[target] ⊆ [source]`.
/// In the Figure 2 grammar the source is always a constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SubsetEdge {
    /// The constraining (constant) vertex.
    pub source: NodeId,
    /// The constrained vertex.
    pub target: NodeId,
}

/// The dependency graph of a constraint system.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    nodes: Vec<NodeKind>,
    subset_edges: Vec<SubsetEdge>,
    concat_edges: Vec<ConcatEdgePair>,
    temp_count: u32,
}

impl DependencyGraph {
    /// Builds the dependency graph for `system` by recursive descent of
    /// each (union-desugared) constraint, per the Figure 5 rules.
    pub fn from_system(system: &System) -> DependencyGraph {
        Self::from_constraints(system, &system.union_free_constraints())
    }

    /// Builds the dependency graph for an explicit (union-free) constraint
    /// list over `system`'s interned variables and constants. The solver
    /// uses this to route only variable-carrying constraints through the
    /// graph — variable-free ones are decided directly.
    pub fn from_constraints(
        system: &System,
        constraints: &[crate::spec::Constraint],
    ) -> DependencyGraph {
        let mut g = DependencyGraph::default();
        // Pre-intern variable and constant vertices in id order so NodeIds
        // are stable and predictable.
        for v in system.var_ids() {
            g.nodes.push(NodeKind::Var(v));
        }
        for c in 0..system.num_consts() as u32 {
            g.nodes.push(NodeKind::Const(ConstId(c)));
        }
        for constraint in constraints {
            let lhs_node = g.node_for_expr(&constraint.lhs);
            let rhs_node = g.const_node(constraint.rhs);
            g.subset_edges.push(SubsetEdge {
                source: rhs_node,
                target: lhs_node,
            });
        }
        g
    }

    /// The vertex for variable `v`.
    pub fn var_node(&self, v: VarId) -> NodeId {
        let i = self
            .nodes
            .iter()
            .position(|k| *k == NodeKind::Var(v))
            .expect("variable vertex was interned");
        NodeId(i as u32)
    }

    /// The vertex for constant `c`.
    pub fn const_node(&self, c: ConstId) -> NodeId {
        let i = self
            .nodes
            .iter()
            .position(|k| *k == NodeKind::Const(c))
            .expect("constant vertex was interned");
        NodeId(i as u32)
    }

    fn node_for_expr(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Var(v) => self.var_node(*v),
            Expr::Const(c) => self.const_node(*c),
            Expr::Concat(a, b) => {
                let left = self.node_for_expr(a);
                let right = self.node_for_expr(b);
                let target = self.fresh_temp();
                self.concat_edges.push(ConcatEdgePair {
                    left,
                    right,
                    target,
                });
                target
            }
            Expr::Union(_, _) => {
                unreachable!("unions are desugared before graph construction")
            }
        }
    }

    fn fresh_temp(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeKind::Temp(self.temp_count));
        self.temp_count += 1;
        id
    }

    /// The number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of a vertex.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    /// All ⊆-edges.
    pub fn subset_edges(&self) -> &[SubsetEdge] {
        &self.subset_edges
    }

    /// All ∘-edge pairs.
    pub fn concat_edges(&self) -> &[ConcatEdgePair] {
        &self.concat_edges
    }

    /// The constant vertices constraining `n` via inbound ⊆-edges.
    pub fn inbound_subset_sources(&self, n: NodeId) -> Vec<NodeId> {
        self.subset_edges
            .iter()
            .filter(|e| e.target == n)
            .map(|e| e.source)
            .collect()
    }

    /// Whether `n` participates in any concatenation (as operand or
    /// target).
    pub fn in_ci_group(&self, n: NodeId) -> bool {
        self.concat_edges
            .iter()
            .any(|e| e.left == n || e.right == n || e.target == n)
    }

    /// The CI-groups: connected components of the relation "joined by a
    /// ∘-edge" (paper §3.4.3 — edge direction does not matter). Each group
    /// is returned as the set of indices into [`Self::concat_edges`] whose
    /// edges belong to it, plus its node set.
    pub fn ci_groups(&self) -> Vec<CiGroup> {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for e in &self.concat_edges {
            let a = find(&mut parent, e.left.index());
            let b = find(&mut parent, e.right.index());
            parent[a] = b;
            let b2 = find(&mut parent, e.right.index());
            let t = find(&mut parent, e.target.index());
            parent[b2] = t;
        }
        let mut groups: Vec<CiGroup> = Vec::new();
        let mut root_of_group: Vec<usize> = Vec::new();
        for (i, e) in self.concat_edges.iter().enumerate() {
            let root = find(&mut parent, e.target.index());
            let gi = match root_of_group.iter().position(|&r| r == root) {
                Some(gi) => gi,
                None => {
                    root_of_group.push(root);
                    groups.push(CiGroup {
                        index: groups.len(),
                        ..CiGroup::default()
                    });
                    groups.len() - 1
                }
            };
            groups[gi].edge_indices.push(i);
            groups[gi].nodes.insert(e.left);
            groups[gi].nodes.insert(e.right);
            groups[gi].nodes.insert(e.target);
        }
        groups
    }

    /// Renders the graph in DOT, labelling vertices with interned names
    /// (mirrors the paper's Figure 6 pictures).
    pub fn to_dot(&self, system: &System) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph dependency_graph {{");
        for (i, k) in self.nodes.iter().enumerate() {
            let (label, shape) = match k {
                NodeKind::Var(v) => (system.var_name(*v).to_owned(), "circle"),
                NodeKind::Const(c) => (system.const_name(*c).to_owned(), "box"),
                NodeKind::Temp(t) => (format!("t{t}"), "diamond"),
            };
            let _ = writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];");
        }
        for e in &self.subset_edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"⊆\"];",
                e.source.index(),
                e.target.index()
            );
        }
        for e in &self.concat_edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"∘l\", style=dashed];",
                e.left.index(),
                e.target.index()
            );
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"∘r\", style=dashed];",
                e.right.index(),
                e.target.index()
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// One CI-group: a connected component of ∘-edges.
#[derive(Clone, Debug, Default)]
pub struct CiGroup {
    /// Position of this group in [`DependencyGraph::ci_groups`]'s return
    /// value (the group id trace events report).
    pub index: usize,
    /// Indices into [`DependencyGraph::concat_edges`].
    pub edge_indices: Vec<usize>,
    /// All vertices touched by the group's edges.
    pub nodes: BTreeSet<NodeId>,
}

impl CiGroup {
    /// The number of ε-bridges the group's machines contain: one per
    /// ∘-edge (each concatenation welds its operands with exactly one
    /// bridge — see `gci::concat_builds`).
    pub fn num_bridges(&self) -> usize {
        self.edge_indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_automata::Nfa;

    /// The paper's Figure 6 graph: v1 ⊆ c1, c2·v1 ⊆ c3 — wait, Figure 6 is
    /// v1 ⊆ c1, v2 ⊆ c2, v1·v2 ⊆ c3 with a temp t0 for the concatenation.
    fn figure6_system() -> System {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", Nfa::literal(b"nid_"));
        let c2 = sys.constant("c2", Nfa::sigma_star());
        let c3 = sys.constant("c3", Nfa::sigma_star());
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
        sys
    }

    #[test]
    fn figure6_graph_shape() {
        let sys = figure6_system();
        let g = DependencyGraph::from_system(&sys);
        // Vertices: v1, v2, c1, c2, c3, t0.
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.subset_edges().len(), 3);
        assert_eq!(g.concat_edges().len(), 1);
        let v1 = g.var_node(sys.var_id("v1").expect("v1"));
        let t0 = g.concat_edges()[0].target;
        assert!(matches!(g.kind(t0), NodeKind::Temp(0)));
        assert_eq!(g.concat_edges()[0].left, v1);
        // c3's subset edge targets the temp, not a variable.
        let c3_edges: Vec<_> = g.subset_edges().iter().filter(|e| e.target == t0).collect();
        assert_eq!(c3_edges.len(), 1);
    }

    #[test]
    fn shared_variables_share_vertices() {
        let mut sys = System::new();
        let v = sys.var("v");
        let c = sys.constant("c", Nfa::sigma_star());
        sys.require(Expr::Var(v), c);
        sys.require(Expr::Var(v).concat(Expr::Var(v)), c);
        let g = DependencyGraph::from_system(&sys);
        // v, c, t0 — the two v occurrences share one vertex.
        assert_eq!(g.num_nodes(), 3);
        let e = g.concat_edges()[0];
        assert_eq!(e.left, e.right);
    }

    #[test]
    fn each_concat_gets_a_fresh_temp() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c = sys.constant("c", Nfa::sigma_star());
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c);
        let g = DependencyGraph::from_system(&sys);
        assert_eq!(g.concat_edges().len(), 2);
        assert_ne!(g.concat_edges()[0].target, g.concat_edges()[1].target);
    }

    #[test]
    fn nested_concat_builds_a_tower() {
        // (v1·v2)·v3 ⊆ c4 — two temps, the outer one fed by the inner.
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let c4 = sys.constant("c4", Nfa::sigma_star());
        sys.require(
            Expr::Var(v1).concat(Expr::Var(v2)).concat(Expr::Var(v3)),
            c4,
        );
        let g = DependencyGraph::from_system(&sys);
        assert_eq!(g.concat_edges().len(), 2);
        let inner = g.concat_edges()[0];
        let outer = g.concat_edges()[1];
        assert_eq!(outer.left, inner.target);
    }

    #[test]
    fn ci_groups_connect_via_shared_variables() {
        // Figure 9 shape: va·vb ⊆ c1 and vb·vc ⊆ c2 — one group, because vb
        // joins both concatenations.
        let mut sys = System::new();
        let va = sys.var("va");
        let vb = sys.var("vb");
        let vc = sys.var("vc");
        let c1 = sys.constant("c1", Nfa::sigma_star());
        let c2 = sys.constant("c2", Nfa::literal(b"x"));
        sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
        sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);
        let g = DependencyGraph::from_system(&sys);
        let groups = g.ci_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].edge_indices.len(), 2);
        assert_eq!(groups[0].nodes.len(), 5); // va vb vc t0 t1
    }

    #[test]
    fn disjoint_concats_are_separate_groups() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let v3 = sys.var("v3");
        let v4 = sys.var("v4");
        let c = sys.constant("c", Nfa::sigma_star());
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c);
        sys.require(Expr::Var(v3).concat(Expr::Var(v4)), c);
        let g = DependencyGraph::from_system(&sys);
        assert_eq!(g.ci_groups().len(), 2);
    }

    #[test]
    fn plain_variables_are_not_in_groups() {
        let sys = figure6_system();
        let g = DependencyGraph::from_system(&sys);
        let v1 = g.var_node(VarId(0));
        assert!(g.in_ci_group(v1)); // v1 is a concat operand
        let c1 = g.const_node(ConstId(0));
        assert!(!g.in_ci_group(c1));
    }

    #[test]
    fn inbound_subset_sources_found() {
        let sys = figure6_system();
        let g = DependencyGraph::from_system(&sys);
        let v1 = g.var_node(VarId(0));
        let sources = g.inbound_subset_sources(v1);
        assert_eq!(sources.len(), 1);
        assert!(matches!(g.kind(sources[0]), NodeKind::Const(_)));
    }

    #[test]
    fn dot_output_names_vertices() {
        let sys = figure6_system();
        let g = DependencyGraph::from_system(&sys);
        let dot = g.to_dot(&sys);
        assert!(dot.contains("label=\"v1\""));
        assert!(dot.contains("label=\"t0\""));
        assert!(dot.contains("⊆"));
        assert!(dot.contains("∘l"));
    }

    #[test]
    fn union_constraints_desugar_into_graph() {
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c = sys.constant("c", Nfa::sigma_star());
        sys.require(Expr::Var(v1).union(Expr::Var(v2)), c);
        let g = DependencyGraph::from_system(&sys);
        // Two subset edges (one per desugared constraint), no temps.
        assert_eq!(g.subset_edges().len(), 2);
        assert_eq!(g.concat_edges().len(), 0);
    }
}
