//! The per-query cost ledger: attribute solver time to individual
//! inclusion and product queries.
//!
//! PR 2's trace journal and PR 4's metrics registry made the solver
//! observable in aggregate; the ledger records *which* query cost what.
//! Every [`LangStore`](dprle_automata::LangStore) inclusion query (plus
//! the engine-bypassing const-check and verify sites in `solve`) and
//! every `gci::intersect_build` product emits one [`LedgerRecord`]: query
//! kind, engine, input features (state/transition counts, byte-class
//! width, language fingerprints), outcome, and cost (wall µs plus the
//! engine's own work counters). Records serialize as schema-pinned JSONL
//! (`docs/ledger.schema.json`, embedded as [`LEDGER_SCHEMA`]).
//!
//! Like [`Tracer`](crate::trace::Tracer), a [`Ledger`] is
//! zero-cost-when-disabled: the handle is an `Option<Arc>`, every
//! recording site builds its record inside a closure that never runs when
//! the handle is disabled, and the store only reads the clock when an
//! observer opts in via `StoreObserver::wants_queries`.
//!
//! **Determinism.** `ts_us` (wall time) is the only nondeterministic
//! field. Everything else — including `seq` and the memo hit/miss split —
//! is byte-identical across `--jobs 1/4/8`: workers buffer drafts in a
//! thread-local slot ([`LedgerSlotGuard`]), and `core::parallel` replays
//! them in sequential order, rewriting each memo outcome exactly like the
//! trace replay does (first touch of a level-computed slot in replay
//! order is the miss, carrying the slot's engine cost; later touches are
//! free hits). This leans on the same value-determinism contract as the
//! winner-only metrics recording: equal memo slots imply equal engine
//! cost.
//!
//! The module also carries the aggregation behind `dprle profile`:
//! [`render_top`] (hottest queries, plus a flame-style span rollup from a
//! trace journal), [`render_model`] (features→cost table, the training
//! set for cost-predicted engine selection), and [`render_diff`]
//! (per-query deltas between two ledgers, matched by fingerprint pair,
//! with an optional regression gate).

// `HashMap<MemoIdentity, _>` trips clippy's `mutable_key_type`: a
// `MemoIdentity` holds a `Lang`, whose interior fingerprint cache is a
// `OnceLock`. The lint is a false positive here — `MemoIdentity`'s
// `Hash`/`Eq` go through the handle *address* and immutable
// `Arc<CanonicalKey>`s only, never through the mutable cell (same
// reasoning as `core::parallel`).
#![allow(clippy::mutable_key_type)]

use crate::schema::{self, get_opt_str, get_str, get_u64, json_string, Json};
use crate::trace::{parse_jsonl, TraceEventKind};
use dprle_automata::{EngineKind, InclusionCost, InclusionQuery, MemoIdentity, Nfa};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The JSON Schema for ledger records, embedded from
/// `docs/ledger.schema.json` so the binary validates against exactly the
/// checked-in contract.
pub const LEDGER_SCHEMA: &str = include_str!("../../../docs/ledger.schema.json");

/// Ledger site label: queries answered through the memoizing store.
pub const SITE_STORE: &str = "store";
/// Ledger site label: the solver's constant-constraint pre-check.
pub const SITE_CONST_CHECK: &str = "const-check";
/// Ledger site label: the post-solve verification pass.
pub const SITE_VERIFY: &str = "verify";
/// Ledger site label: `gci::intersect_build` products.
pub const SITE_GCI: &str = "gci";

fn parse_site(s: &str) -> Option<&'static str> {
    [SITE_STORE, SITE_CONST_CHECK, SITE_VERIFY, SITE_GCI]
        .into_iter()
        .find(|site| *site == s)
}

/// Which query family a [`LedgerRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryKind {
    /// A language-inclusion query (`L(a) ⊆ L(b)`).
    Inclusion,
    /// An eager product build in `gci::intersect_build`.
    Product,
}

impl QueryKind {
    /// The schema-facing name (the record's `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Inclusion => "Inclusion",
            QueryKind::Product => "Product",
        }
    }

    fn parse(s: &str) -> Option<QueryKind> {
        match s {
            "Inclusion" => Some(QueryKind::Inclusion),
            "Product" => Some(QueryKind::Product),
            _ => None,
        }
    }
}

/// How the memo layer participated in an inclusion query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoStatus {
    /// The memo (or a lost insert race) answered.
    Hit,
    /// The engine ran and the result was memoized.
    Miss,
    /// The query never consulted a memo table (pass-through store, or an
    /// engine-bypassing site).
    Bypass,
}

impl MemoStatus {
    fn name(self) -> &'static str {
        match self {
            MemoStatus::Hit => "hit",
            MemoStatus::Miss => "miss",
            MemoStatus::Bypass => "none",
        }
    }

    fn parse(s: &str) -> Option<MemoStatus> {
        match s {
            "hit" => Some(MemoStatus::Hit),
            "miss" => Some(MemoStatus::Miss),
            "none" => Some(MemoStatus::Bypass),
            _ => None,
        }
    }
}

/// The verdict of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryOutcome {
    /// Inclusion holds.
    Subset,
    /// Inclusion fails (a counterexample exists).
    NotSubset,
    /// A nonempty product was built.
    Built,
    /// The product was empty after trimming.
    Empty,
    /// A resource budget was breached mid-query.
    Exhausted,
}

impl QueryOutcome {
    fn name(self) -> &'static str {
        match self {
            QueryOutcome::Subset => "subset",
            QueryOutcome::NotSubset => "not-subset",
            QueryOutcome::Built => "built",
            QueryOutcome::Empty => "empty",
            QueryOutcome::Exhausted => "exhausted",
        }
    }

    fn parse(s: &str) -> Option<QueryOutcome> {
        match s {
            "subset" => Some(QueryOutcome::Subset),
            "not-subset" => Some(QueryOutcome::NotSubset),
            "built" => Some(QueryOutcome::Built),
            "empty" => Some(QueryOutcome::Empty),
            "exhausted" => Some(QueryOutcome::Exhausted),
            _ => None,
        }
    }
}

/// One ledger line: a fully-attributed query.
///
/// The cost fields are kind-overloaded to keep one record type:
/// `cost_main` is `macrostates` (Inclusion) or `explored` product pairs
/// (Product); `cost_aux` is the final `antichain` size or the trimmed
/// product's `states`; `cost_prunes` is antichain subsumption `prunes`
/// (always zero for products). [`LedgerRecord::to_json`] maps them onto
/// the per-kind field names pinned by `docs/ledger.schema.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerRecord {
    /// Deterministic global sequence number (emission order).
    pub seq: u64,
    /// Wall-clock µs answering the query — the only nondeterministic
    /// field; comparisons zero it first.
    pub ts_us: u64,
    /// Query family.
    pub kind: QueryKind,
    /// Engine configured for the query (`None` for products, which are
    /// always eager builds today).
    pub engine: Option<EngineKind>,
    /// Which call site issued the query (one of the `SITE_*` constants).
    pub site: &'static str,
    /// Memo participation (`None` for products — they are not memoized).
    pub memo: Option<MemoStatus>,
    /// The verdict.
    pub outcome: QueryOutcome,
    /// LHS operand: state count.
    pub lhs_states: u64,
    /// LHS operand: transition count (byte-class plus ε).
    pub lhs_transitions: u64,
    /// RHS operand: state count.
    pub rhs_states: u64,
    /// RHS operand: transition count.
    pub rhs_transitions: u64,
    /// Distinct byte-class edge labels across both operands (alphabet
    /// width as the engines see it).
    pub classes: u64,
    /// Stable 64-bit fingerprint of the LHS language (canonical-key
    /// digest when available, structural digest otherwise).
    pub lhs_fp: u64,
    /// Stable 64-bit fingerprint of the RHS language.
    pub rhs_fp: u64,
    /// Macrostates explored / product pairs explored.
    pub cost_main: u64,
    /// Final antichain size / trimmed product states.
    pub cost_aux: u64,
    /// Antichain subsumption prunes (zero for products).
    pub cost_prunes: u64,
    /// Serving request this query belongs to, stamped by a tagged ledger
    /// ([`Ledger::new_tagged`]) so a multi-tenant `dprle serve` ledger
    /// attributes cost per request. `None` — and absent from the JSONL
    /// line, keeping one-shot runs byte-identical — outside serve.
    pub request_id: Option<Arc<str>>,
}

impl LedgerRecord {
    /// Serializes the record as one schema-conforming JSONL line (no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"kind\":{},\"seq\":{},\"ts_us\":{}",
            json_string(self.kind.name()),
            self.seq,
            self.ts_us
        );
        if let Some(engine) = self.engine {
            let _ = write!(out, ",\"engine\":{}", json_string(engine.name()));
        }
        let _ = write!(out, ",\"site\":{}", json_string(self.site));
        if let Some(memo) = self.memo {
            let _ = write!(out, ",\"memo\":{}", json_string(memo.name()));
        }
        let _ = write!(
            out,
            ",\"outcome\":{},\"lhs_states\":{},\"lhs_transitions\":{},\"rhs_states\":{},\"rhs_transitions\":{},\"classes\":{},\"lhs_fp\":\"{:016x}\",\"rhs_fp\":\"{:016x}\"",
            json_string(self.outcome.name()),
            self.lhs_states,
            self.lhs_transitions,
            self.rhs_states,
            self.rhs_transitions,
            self.classes,
            self.lhs_fp,
            self.rhs_fp
        );
        match self.kind {
            QueryKind::Inclusion => {
                let _ = write!(
                    out,
                    ",\"macrostates\":{},\"antichain\":{},\"prunes\":{}",
                    self.cost_main, self.cost_aux, self.cost_prunes
                );
            }
            QueryKind::Product => {
                let _ = write!(
                    out,
                    ",\"explored\":{},\"states\":{}",
                    self.cost_main, self.cost_aux
                );
            }
        }
        if let Some(request_id) = &self.request_id {
            let _ = write!(out, ",\"request_id\":{}", json_string(request_id));
        }
        out.push('}');
        out
    }

    fn from_obj(obj: &[(String, Json)]) -> Result<LedgerRecord, String> {
        let kind_name = get_str(obj, "kind")?;
        let kind = QueryKind::parse(kind_name)
            .ok_or_else(|| format!("unknown ledger record kind {kind_name:?}"))?;
        let site_name = get_str(obj, "site")?;
        let site =
            parse_site(site_name).ok_or_else(|| format!("unknown ledger site {site_name:?}"))?;
        let fp = |key: &str| -> Result<u64, String> {
            let hex = get_str(obj, key)?;
            u64::from_str_radix(hex, 16).map_err(|_| format!("field `{key}` is not a hex digest"))
        };
        let (engine, memo, cost_main, cost_aux, cost_prunes, outcome) = match kind {
            QueryKind::Inclusion => {
                let engine_name = get_str(obj, "engine")?;
                let engine = EngineKind::parse(engine_name)
                    .ok_or_else(|| format!("unknown engine {engine_name:?}"))?;
                let memo_name = get_str(obj, "memo")?;
                let memo = MemoStatus::parse(memo_name)
                    .ok_or_else(|| format!("unknown memo status {memo_name:?}"))?;
                let outcome_name = get_str(obj, "outcome")?;
                let outcome = match QueryOutcome::parse(outcome_name) {
                    Some(
                        o @ (QueryOutcome::Subset
                        | QueryOutcome::NotSubset
                        | QueryOutcome::Exhausted),
                    ) => o,
                    _ => return Err(format!("bad inclusion outcome {outcome_name:?}")),
                };
                (
                    Some(engine),
                    Some(memo),
                    get_u64(obj, "macrostates")?,
                    get_u64(obj, "antichain")?,
                    get_u64(obj, "prunes")?,
                    outcome,
                )
            }
            QueryKind::Product => {
                let outcome_name = get_str(obj, "outcome")?;
                let outcome = match QueryOutcome::parse(outcome_name) {
                    Some(
                        o @ (QueryOutcome::Built | QueryOutcome::Empty | QueryOutcome::Exhausted),
                    ) => o,
                    _ => return Err(format!("bad product outcome {outcome_name:?}")),
                };
                (
                    None,
                    None,
                    get_u64(obj, "explored")?,
                    get_u64(obj, "states")?,
                    0,
                    outcome,
                )
            }
        };
        Ok(LedgerRecord {
            seq: get_u64(obj, "seq")?,
            ts_us: get_u64(obj, "ts_us")?,
            kind,
            engine,
            site,
            memo,
            outcome,
            lhs_states: get_u64(obj, "lhs_states")?,
            lhs_transitions: get_u64(obj, "lhs_transitions")?,
            rhs_states: get_u64(obj, "rhs_states")?,
            rhs_transitions: get_u64(obj, "rhs_transitions")?,
            classes: get_u64(obj, "classes")?,
            lhs_fp: fp("lhs_fp")?,
            rhs_fp: fp("rhs_fp")?,
            cost_main,
            cost_aux,
            cost_prunes,
            request_id: get_opt_str(obj, "request_id")?.map(Arc::from),
        })
    }
}

/// Parses a ledger JSONL document back into records.
///
/// # Errors
///
/// Returns `line N: <problem>` for the first malformed line.
pub fn parse_ledger(jsonl: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = Json::parse(line)
            .and_then(|v| {
                v.as_object()
                    .ok_or("not a JSON object".to_owned())
                    .and_then(LedgerRecord::from_obj)
            })
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(record);
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------

/// A sink receiving finalized [`LedgerRecord`]s in emission order.
pub trait LedgerSink: Send + Sync {
    /// Called once per finalized record, `seq` already assigned.
    fn record(&self, record: &LedgerRecord);
}

/// A [`LedgerSink`] that collects records in memory.
#[derive(Default)]
pub struct CollectLedger {
    records: Mutex<Vec<LedgerRecord>>,
}

impl CollectLedger {
    /// An empty collector.
    pub fn new() -> CollectLedger {
        CollectLedger::default()
    }

    /// Drains the collected records.
    pub fn take(&self) -> Vec<LedgerRecord> {
        std::mem::take(&mut self.records.lock().expect("ledger collect lock"))
    }

    /// Renders the collected records as JSONL (without draining).
    pub fn to_jsonl(&self) -> String {
        let records = self.records.lock().expect("ledger collect lock");
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

impl LedgerSink for CollectLedger {
    fn record(&self, record: &LedgerRecord) {
        self.records
            .lock()
            .expect("ledger collect lock")
            .push(record.clone());
    }
}

/// A draft record buffered on a worker thread: the serialized fields plus
/// the replay metadata (`identity` names the memo slot, `engine_cost` is
/// `Some` exactly when the engine ran for this query).
pub(crate) struct LedgerDraft {
    pub(crate) record: LedgerRecord,
    pub(crate) identity: Option<MemoIdentity>,
    pub(crate) engine_cost: Option<InclusionCost>,
}

struct LedgerInner {
    seq: AtomicU64,
    sink: Arc<dyn LedgerSink>,
    /// Request id stamped on every emitted record
    /// ([`Ledger::new_tagged`]); `None` for one-shot ledgers, whose
    /// records omit the field entirely.
    tag: Option<Arc<str>>,
}

/// The zero-cost-when-disabled query recorder. Cheap to clone (an
/// `Option<Arc>`); a disabled handle makes every recording site a no-op
/// without constructing the record.
#[derive(Clone, Default)]
pub struct Ledger {
    inner: Option<Arc<LedgerInner>>,
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Ledger {
    /// A no-op ledger (the default).
    pub fn disabled() -> Ledger {
        Ledger { inner: None }
    }

    /// A ledger emitting finalized records to `sink`.
    pub fn new(sink: Arc<dyn LedgerSink>) -> Ledger {
        Ledger::build(sink, None)
    }

    /// A ledger that stamps `request_id` on every emitted record. `dprle
    /// serve` gives each request its own tagged ledger, so a shared
    /// multi-tenant ledger attributes every query to its request.
    pub fn new_tagged(sink: Arc<dyn LedgerSink>, request_id: &str) -> Ledger {
        Ledger::build(sink, Some(Arc::from(request_id)))
    }

    fn build(sink: Arc<dyn LedgerSink>, tag: Option<Arc<str>>) -> Ledger {
        Ledger {
            inner: Some(Arc::new(LedgerInner {
                seq: AtomicU64::new(0),
                sink,
                tag,
            })),
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one query. The draft is built only when the ledger is
    /// enabled; it is routed to the thread's worker buffer when one is
    /// installed (parallel levels) and emitted directly otherwise.
    pub(crate) fn record(&self, make: impl FnOnce() -> LedgerDraft) {
        if self.inner.is_none() {
            return;
        }
        let draft = make();
        let unrouted = LEDGER_SLOT.with(|slot| match &mut *slot.borrow_mut() {
            Some(buffer) => {
                buffer.push(draft);
                None
            }
            None => Some(draft),
        });
        if let Some(draft) = unrouted {
            self.emit(draft.record);
        }
    }

    /// Assigns the next sequence number, stamps the ledger's request tag
    /// (if any), and hands the record to the sink.
    pub(crate) fn emit(&self, mut record: LedgerRecord) {
        let Some(inner) = &self.inner else { return };
        record.seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        if inner.tag.is_some() {
            record.request_id = inner.tag.clone();
        }
        inner.sink.record(&record);
    }
}

// ---------------------------------------------------------------------
// Worker-slot routing and deterministic replay (used by core::parallel)
// ---------------------------------------------------------------------

thread_local! {
    /// While a worker thread processes one worklist entry, its ledger
    /// drafts are buffered here instead of reaching the sink, so the main
    /// thread can replay them in sequential order.
    static LEDGER_SLOT: RefCell<Option<Vec<LedgerDraft>>> = const { RefCell::new(None) };
}

/// Installs the thread's ledger buffer for the duration of one worklist
/// entry; clears it on drop (also on unwind).
pub(crate) struct LedgerSlotGuard;

impl LedgerSlotGuard {
    pub(crate) fn install() -> LedgerSlotGuard {
        LEDGER_SLOT.with(|slot| {
            *slot.borrow_mut() = Some(Vec::new());
        });
        LedgerSlotGuard
    }

    /// Takes the buffered drafts.
    pub(crate) fn finish(self) -> Vec<LedgerDraft> {
        LEDGER_SLOT
            .with(|slot| slot.borrow_mut().take())
            .unwrap_or_default()
    }
}

impl Drop for LedgerSlotGuard {
    fn drop(&mut self) {
        LEDGER_SLOT.with(|slot| {
            *slot.borrow_mut() = None;
        });
    }
}

/// Collects, from one level's buffered drafts, the engine cost of every
/// memo slot computed during the level. Mirrors the trace replay's
/// `collect_computed`: a slot absent from this map was answered by an
/// earlier level's memo entry in the sequential run too.
pub(crate) fn collect_computed_costs<'a>(
    entries: impl Iterator<Item = &'a [LedgerDraft]>,
    costs: &mut HashMap<MemoIdentity, InclusionCost>,
) {
    for drafts in entries {
        for draft in drafts {
            if let (Some(id), Some(cost)) = (&draft.identity, draft.engine_cost) {
                costs.entry(id.clone()).or_insert(cost);
            }
        }
    }
}

/// Replays one entry's buffered drafts in sequential order, rewriting
/// each slot-keyed record's memo outcome and engine cost to what the
/// sequential run would have recorded: the first touch (in replay order)
/// of a slot computed this level is the miss and carries the slot's
/// engine cost; every later touch is a free hit. Slot-less records
/// (products, bypass sites, pass-through stores) replay unchanged —
/// their contents are deterministic per entry.
pub(crate) fn replay_drafts(
    ledger: &Ledger,
    drafts: Vec<LedgerDraft>,
    costs: &HashMap<MemoIdentity, InclusionCost>,
    seen: &mut HashSet<MemoIdentity>,
) {
    for mut draft in drafts {
        if let Some(id) = &draft.identity {
            let hit = seen.contains(id) || !costs.contains_key(id);
            seen.insert(id.clone());
            if hit {
                draft.record.memo = Some(MemoStatus::Hit);
                draft.record.cost_main = 0;
                draft.record.cost_aux = 0;
                draft.record.cost_prunes = 0;
            } else {
                let cost = costs[id];
                draft.record.memo = Some(MemoStatus::Miss);
                draft.record.cost_main = cost.macrostates;
                draft.record.cost_aux = cost.antichain_size;
                draft.record.cost_prunes = cost.prunes;
            }
        }
        ledger.emit(draft.record);
    }
}

// ---------------------------------------------------------------------
// Record construction
// ---------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A stable structural digest of a machine, used to fingerprint operands
/// the store never canonicalized (product builds, pass-through paths).
/// Structurally identical machines digest identically on every platform;
/// unlike [`dprle_automata::CanonicalKey::hash64`] this is *not* a
/// language fingerprint — equal languages with different state graphs
/// digest differently.
pub(crate) fn nfa_hash64(nfa: &Nfa) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(nfa.num_states() as u64);
    h.write_u64(nfa.start().index() as u64);
    for state in nfa.finals() {
        h.write_u64(state.index() as u64);
    }
    for (from, class, to) in nfa.edges() {
        h.write_u64(from.index() as u64);
        for word in class.words() {
            h.write_u64(word);
        }
        h.write_u64(to.index() as u64);
    }
    for (from, to) in nfa.eps_edges() {
        h.write_u64(from.index() as u64);
        h.write_u64(to.index() as u64);
    }
    h.0
}

fn features(record: &mut LedgerRecord, lhs: &Nfa, rhs: &Nfa) {
    // Delegate to the cost model's extractor: the serialized features and
    // the `auto` engine's selection features must never drift apart (the
    // differential harness replays the model against ledger rows).
    let f = dprle_automata::costmodel::features(lhs, rhs);
    record.lhs_states = f.lhs_states;
    record.lhs_transitions = f.lhs_transitions;
    record.rhs_states = f.rhs_states;
    record.rhs_transitions = f.rhs_transitions;
    record.classes = f.classes;
}

/// Builds a draft from a store-reported inclusion query.
pub(crate) fn draft_from_inclusion(query: &InclusionQuery<'_>) -> LedgerDraft {
    let memo = if query.identity.is_some() {
        if query.memo_hit {
            MemoStatus::Hit
        } else {
            MemoStatus::Miss
        }
    } else {
        MemoStatus::Bypass
    };
    // A memo hit serializes zero engine cost even when this thread lost
    // an insert race and ran the engine anyway — the sequential run's hit
    // does no engine work. The raw cost still rides along in the draft so
    // the parallel replay can charge it to the replay-order first touch.
    let serialized_cost = if query.memo_hit {
        InclusionCost::default()
    } else {
        query.cost
    };
    let mut record = LedgerRecord {
        seq: 0,
        ts_us: query.wall_us,
        kind: QueryKind::Inclusion,
        engine: Some(query.engine),
        site: SITE_STORE,
        memo: Some(memo),
        outcome: match query.outcome {
            Some(true) => QueryOutcome::Subset,
            Some(false) => QueryOutcome::NotSubset,
            None => QueryOutcome::Exhausted,
        },
        lhs_states: 0,
        lhs_transitions: 0,
        rhs_states: 0,
        rhs_transitions: 0,
        classes: 0,
        lhs_fp: query
            .lhs_key
            .map_or_else(|| nfa_hash64(query.lhs), |k| k.hash64()),
        rhs_fp: query
            .rhs_key
            .map_or_else(|| nfa_hash64(query.rhs), |k| k.hash64()),
        cost_main: serialized_cost.macrostates,
        cost_aux: serialized_cost.antichain_size,
        cost_prunes: serialized_cost.prunes,
        request_id: None,
    };
    features(&mut record, query.lhs, query.rhs);
    LedgerDraft {
        record,
        identity: query.identity.clone(),
        engine_cost: query.engine_ran.then_some(query.cost),
    }
}

/// Builds a draft for an engine-bypassing inclusion site (`const-check`,
/// `verify`): no memo, no slot identity, deterministic per entry.
pub(crate) fn bypass_inclusion_draft(
    engine: EngineKind,
    site: &'static str,
    lhs: &Nfa,
    rhs: &Nfa,
    outcome: Option<bool>,
    cost: InclusionCost,
    wall_us: u64,
) -> LedgerDraft {
    let mut record = LedgerRecord {
        seq: 0,
        ts_us: wall_us,
        kind: QueryKind::Inclusion,
        engine: Some(engine),
        site,
        memo: Some(MemoStatus::Bypass),
        outcome: match outcome {
            Some(true) => QueryOutcome::Subset,
            Some(false) => QueryOutcome::NotSubset,
            None => QueryOutcome::Exhausted,
        },
        lhs_states: 0,
        lhs_transitions: 0,
        rhs_states: 0,
        rhs_transitions: 0,
        classes: 0,
        lhs_fp: nfa_hash64(lhs),
        rhs_fp: nfa_hash64(rhs),
        cost_main: cost.macrostates,
        cost_aux: cost.antichain_size,
        cost_prunes: cost.prunes,
        request_id: None,
    };
    features(&mut record, lhs, rhs);
    LedgerDraft {
        record,
        identity: None,
        engine_cost: None,
    }
}

/// Builds a draft for one `gci::intersect_build` product.
pub(crate) fn product_draft(
    lhs: &Nfa,
    rhs: &Nfa,
    outcome: QueryOutcome,
    explored: u64,
    states: u64,
    wall_us: u64,
) -> LedgerDraft {
    let mut record = LedgerRecord {
        seq: 0,
        ts_us: wall_us,
        kind: QueryKind::Product,
        engine: None,
        site: SITE_GCI,
        memo: None,
        outcome,
        lhs_states: 0,
        lhs_transitions: 0,
        rhs_states: 0,
        rhs_transitions: 0,
        classes: 0,
        lhs_fp: nfa_hash64(lhs),
        rhs_fp: nfa_hash64(rhs),
        cost_main: explored,
        cost_aux: states,
        cost_prunes: 0,
        request_id: None,
    };
    features(&mut record, lhs, rhs);
    LedgerDraft {
        record,
        identity: None,
        engine_cost: None,
    }
}

// ---------------------------------------------------------------------
// Aggregation: the three `dprle profile` views
// ---------------------------------------------------------------------

/// A query aggregation key: same-language queries from the same site
/// collapse into one row, across engines (so two ledgers recorded under
/// different engines still match in `diff`).
type QueryKey = (QueryKind, &'static str, u64, u64);

#[derive(Default, Clone, Copy)]
struct QueryAgg {
    count: u64,
    memo_hits: u64,
    wall_us: u64,
    work: u64,
}

fn aggregate(records: &[LedgerRecord]) -> BTreeMap<QueryKey, QueryAgg> {
    let mut map: BTreeMap<QueryKey, QueryAgg> = BTreeMap::new();
    for r in records {
        let agg = map.entry((r.kind, r.site, r.lhs_fp, r.rhs_fp)).or_default();
        agg.count += 1;
        if r.memo == Some(MemoStatus::Hit) {
            agg.memo_hits += 1;
        }
        agg.wall_us += r.ts_us;
        agg.work += r.cost_main;
    }
    map
}

fn key_label(key: &QueryKey) -> String {
    format!(
        "{:<9} {:<11} {:016x}⊆{:016x}",
        key.0.name(),
        key.1,
        key.2,
        key.3
    )
}

/// Renders the `top` view: the hottest query keys by total wall time,
/// plus (when a trace journal is supplied) a flame-style per-span-path
/// wall-time rollup for phase attribution.
///
/// # Errors
///
/// Returns a description of an unreadable trace journal.
pub fn render_top(
    records: &[LedgerRecord],
    trace_jsonl: Option<&str>,
    limit: usize,
) -> Result<String, String> {
    let mut out = String::new();
    let inclusions = records
        .iter()
        .filter(|r| r.kind == QueryKind::Inclusion)
        .count();
    let hits = records
        .iter()
        .filter(|r| r.memo == Some(MemoStatus::Hit))
        .count();
    let products = records.len() - inclusions;
    let total_wall: u64 = records.iter().map(|r| r.ts_us).sum();
    let _ = writeln!(
        out,
        "ledger: {} records ({inclusions} inclusion, {hits} memo hits; {products} product), total query wall {total_wall} µs",
        records.len()
    );
    let mut rows: Vec<(QueryKey, QueryAgg)> = aggregate(records).into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.wall_us
            .cmp(&a.1.wall_us)
            .then(b.1.work.cmp(&a.1.work))
            .then(a.0.cmp(&b.0))
    });
    let _ = writeln!(
        out,
        "hottest queries (top {} of {}):",
        limit.min(rows.len()),
        rows.len()
    );
    let _ = writeln!(
        out,
        "  {:>8}  {:>6}  {:>6}  {:>10}  query",
        "wall_us", "n", "hits", "work"
    );
    for (key, agg) in rows.iter().take(limit) {
        let _ = writeln!(
            out,
            "  {:>8}  {:>6}  {:>6}  {:>10}  {}",
            agg.wall_us,
            agg.count,
            agg.memo_hits,
            agg.work,
            key_label(key)
        );
    }
    if let Some(jsonl) = trace_jsonl {
        out.push_str(&span_rollup(jsonl)?);
    }
    Ok(out)
}

/// Renders the `top --by-request` view: ledger records grouped by the
/// `request_id` that `dprle serve` stamps on them, ranked by total query
/// wall time — which requests a multi-tenant server spent its solver
/// budget on. Records without a request id (one-shot `--ledger-out`
/// runs, or pre-tagging ledgers) group under `(untagged)`.
pub fn render_top_by_request(records: &[LedgerRecord], limit: usize) -> String {
    #[derive(Default)]
    struct RequestAgg {
        wall_us: u64,
        queries: u64,
        memo_hits: u64,
        work: u64,
    }
    let mut map: BTreeMap<String, RequestAgg> = BTreeMap::new();
    for r in records {
        let key = r.request_id.as_deref().unwrap_or("(untagged)").to_owned();
        let agg = map.entry(key).or_default();
        agg.wall_us += r.ts_us;
        agg.queries += 1;
        if r.memo == Some(MemoStatus::Hit) {
            agg.memo_hits += 1;
        }
        agg.work += r.cost_main;
    }
    let mut rows: Vec<(String, RequestAgg)> = map.into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.wall_us
            .cmp(&a.1.wall_us)
            .then(b.1.work.cmp(&a.1.work))
            .then(a.0.cmp(&b.0))
    });
    let mut out = String::new();
    let total_wall: u64 = records.iter().map(|r| r.ts_us).sum();
    let _ = writeln!(
        out,
        "ledger: {} records across {} request(s), total query wall {total_wall} µs",
        records.len(),
        rows.len()
    );
    let _ = writeln!(
        out,
        "hottest requests (top {} of {}):",
        limit.min(rows.len()),
        rows.len()
    );
    let _ = writeln!(
        out,
        "  {:>8}  {:>7}  {:>6}  {:>10}  request",
        "wall_us", "queries", "hits", "work"
    );
    for (request, agg) in rows.iter().take(limit) {
        let _ = writeln!(
            out,
            "  {:>8}  {:>7}  {:>6}  {:>10}  {request}",
            agg.wall_us, agg.queries, agg.memo_hits, agg.work
        );
    }
    out
}

/// Builds the flame-style span-path rollup from a trace journal: one row
/// per distinct `parent;child;…` phase path with total and self wall
/// time, sorted by total descending.
fn span_rollup(jsonl: &str) -> Result<String, String> {
    let events = parse_jsonl(jsonl)?;
    let mut paths: HashMap<u64, String> = HashMap::new();
    let mut starts: HashMap<u64, u64> = HashMap::new();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut child_time: HashMap<String, u64> = HashMap::new();
    for event in &events {
        match &event.kind {
            TraceEventKind::SpanStart {
                span,
                parent,
                phase,
                ..
            } => {
                let path = match paths.get(parent) {
                    Some(parent_path) => format!("{parent_path};{phase}"),
                    None => phase.clone(),
                };
                paths.insert(*span, path);
                starts.insert(*span, event.ts_us);
            }
            TraceEventKind::SpanEnd { span, .. } => {
                let (Some(path), Some(start)) = (paths.get(span), starts.remove(span)) else {
                    continue;
                };
                let wall = event.ts_us.saturating_sub(start);
                *totals.entry(path.clone()).or_default() += wall;
                if let Some((parent_path, _)) = path.rsplit_once(';') {
                    *child_time.entry(parent_path.to_owned()).or_default() += wall;
                }
            }
            _ => {}
        }
    }
    let mut rows: Vec<(String, u64)> = totals.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out = String::from("per-span wall time (flame paths):\n");
    for (path, total) in rows {
        let own = total.saturating_sub(child_time.get(&path).copied().unwrap_or(0));
        let _ = writeln!(out, "  {total:>8} µs  (self {own:>8} µs)  {path}");
    }
    Ok(out)
}

/// Renders the `model` view: a features→cost table as a JSON array, one
/// row per distinct feature vector. This is the training set for
/// cost-predicted engine selection (ROADMAP item 4): `work` is the
/// engine's own deterministic work measure, `wall_us` its wall time.
pub fn render_model(records: &[LedgerRecord]) -> String {
    type FeatureKey = (
        QueryKind,
        Option<EngineKind>,
        Option<MemoStatus>,
        u64,
        u64,
        u64,
        u64,
        u64,
    );
    let mut map: BTreeMap<FeatureKey, QueryAgg> = BTreeMap::new();
    for r in records {
        let agg = map
            .entry((
                r.kind,
                r.engine,
                r.memo,
                r.lhs_states,
                r.lhs_transitions,
                r.rhs_states,
                r.rhs_transitions,
                r.classes,
            ))
            .or_default();
        agg.count += 1;
        agg.wall_us += r.ts_us;
        agg.work += r.cost_main;
    }
    let mut out = String::from("[\n");
    let mut first = true;
    for (key, agg) in &map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let (kind, engine, memo, ls, lt, rs, rt, classes) = key;
        let _ = write!(
            out,
            "  {{\"kind\":{},\"engine\":{},\"memo\":{},\"lhs_states\":{ls},\"lhs_transitions\":{lt},\"rhs_states\":{rs},\"rhs_transitions\":{rt},\"classes\":{classes},\"count\":{},\"work\":{},\"wall_us\":{}}}",
            json_string(kind.name()),
            engine.map_or("null".to_owned(), |e| json_string(e.name())),
            memo.map_or("null".to_owned(), |m| json_string(m.name())),
            agg.count,
            agg.work,
            agg.wall_us
        );
    }
    out.push_str("\n]\n");
    out
}

/// Options for [`render_diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// How many ranked rows to print.
    pub limit: usize,
    /// Fail (report `gate_breached`) when any matched query key's wall
    /// time regressed by more than this percentage.
    pub fail_above_pct: Option<f64>,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            limit: 20,
            fail_above_pct: None,
        }
    }
}

/// The outcome of a ledger diff.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The rendered ranked report.
    pub text: String,
    /// The worst wall-time regression among matched keys, in percent
    /// (`None` when nothing matched with nonzero old cost).
    pub worst_pct: Option<f64>,
    /// Whether [`DiffOptions::fail_above_pct`] was exceeded.
    pub gate_breached: bool,
}

/// Diffs two ledgers: aggregates each by query key (kind, site,
/// fingerprint pair — engine-agnostic, so eager and antichain ledgers
/// match), ranks by absolute wall-time delta (regressions first), and
/// applies the optional gate.
pub fn render_diff(
    old: &[LedgerRecord],
    new: &[LedgerRecord],
    options: &DiffOptions,
) -> DiffReport {
    let old_agg = aggregate(old);
    let new_agg = aggregate(new);
    struct Row {
        key: QueryKey,
        old_us: u64,
        new_us: u64,
        old_work: u64,
        new_work: u64,
        pct: Option<f64>,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut only_old = 0usize;
    let mut only_new = 0usize;
    for (key, o) in &old_agg {
        match new_agg.get(key) {
            Some(n) => rows.push(Row {
                key: *key,
                old_us: o.wall_us,
                new_us: n.wall_us,
                old_work: o.work,
                new_work: n.work,
                pct: (o.wall_us > 0)
                    .then(|| (n.wall_us as f64 - o.wall_us as f64) * 100.0 / o.wall_us as f64),
            }),
            None => only_old += 1,
        }
    }
    for key in new_agg.keys() {
        if !old_agg.contains_key(key) {
            only_new += 1;
        }
    }
    rows.sort_by(|a, b| {
        let da = a.new_us as i128 - a.old_us as i128;
        let db = b.new_us as i128 - b.old_us as i128;
        db.cmp(&da).then(a.key.cmp(&b.key))
    });
    let worst_pct = rows.iter().filter_map(|r| r.pct).fold(None, |acc, p| {
        Some(match acc {
            None => p,
            Some(a) if p > a => p,
            Some(a) => a,
        })
    });
    let mut text = String::new();
    let _ = writeln!(
        text,
        "ledger diff: {} matched query keys ({only_old} only in old, {only_new} only in new)",
        rows.len()
    );
    let _ = writeln!(
        text,
        "  {:>9} {:>9} {:>8}  {:>9} {:>9}  query",
        "old_us", "new_us", "Δ%", "old_work", "new_work"
    );
    for row in rows.iter().take(options.limit) {
        let pct = row.pct.map_or("n/a".to_owned(), |p| format!("{p:+.1}%"));
        let _ = writeln!(
            text,
            "  {:>9} {:>9} {:>8}  {:>9} {:>9}  {}",
            row.old_us,
            row.new_us,
            pct,
            row.old_work,
            row.new_work,
            key_label(&row.key)
        );
    }
    let gate_breached = match (options.fail_above_pct, worst_pct) {
        (Some(gate), Some(worst)) => worst > gate,
        _ => false,
    };
    if let Some(gate) = options.fail_above_pct {
        let _ = writeln!(
            text,
            "gate: fail above {gate:+.1}% — worst regression {} → {}",
            worst_pct.map_or("n/a".to_owned(), |p| format!("{p:+.1}%")),
            if gate_breached { "BREACHED" } else { "ok" }
        );
    }
    DiffReport {
        text,
        worst_pct,
        gate_breached,
    }
}

/// Validates a ledger JSONL document against a schema source (defaults to
/// the embedded [`LEDGER_SCHEMA`] in the CLI). Thin alias over
/// [`schema::validate_jsonl`] so callers need not know which module owns
/// the validator.
///
/// # Errors
///
/// Returns `line N: <problem>` for the first invalid line.
pub fn validate_ledger_jsonl(schema_src: &str, jsonl: &str) -> Result<usize, String> {
    schema::validate_jsonl(schema_src, jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(kind: QueryKind) -> LedgerRecord {
        LedgerRecord {
            seq: 7,
            ts_us: 123,
            kind,
            engine: (kind == QueryKind::Inclusion).then_some(EngineKind::Antichain),
            site: if kind == QueryKind::Inclusion {
                SITE_STORE
            } else {
                SITE_GCI
            },
            memo: (kind == QueryKind::Inclusion).then_some(MemoStatus::Miss),
            outcome: if kind == QueryKind::Inclusion {
                QueryOutcome::Subset
            } else {
                QueryOutcome::Built
            },
            lhs_states: 4,
            lhs_transitions: 5,
            rhs_states: 3,
            rhs_transitions: 4,
            classes: 2,
            lhs_fp: 0x1234,
            rhs_fp: 0xabcd,
            cost_main: 17,
            cost_aux: 3,
            cost_prunes: if kind == QueryKind::Inclusion { 1 } else { 0 },
            request_id: None,
        }
    }

    #[test]
    fn records_roundtrip_through_json() {
        for kind in [QueryKind::Inclusion, QueryKind::Product] {
            let record = sample_record(kind);
            let line = record.to_json();
            let parsed = parse_ledger(&line).expect("parses");
            assert_eq!(parsed, vec![record.clone()], "{line}");
            assert_eq!(
                schema::validate_jsonl(LEDGER_SCHEMA, &line),
                Ok(1),
                "{line}"
            );
        }
    }

    #[test]
    fn schema_covers_exactly_the_record_kinds() {
        let kinds = schema::schema_kinds(LEDGER_SCHEMA).expect("schema parses");
        assert_eq!(kinds, vec!["Inclusion".to_owned(), "Product".to_owned()]);
    }

    #[test]
    fn parse_ledger_reports_line_numbers() {
        let good = sample_record(QueryKind::Inclusion).to_json();
        let err = parse_ledger(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_ledger("{\"kind\":\"Bogus\"}\n").unwrap_err();
        assert!(err.contains("unknown ledger record kind"), "{err}");
    }

    #[test]
    fn disabled_ledger_never_builds_records() {
        let ledger = Ledger::disabled();
        ledger.record(|| panic!("record closure must not run when disabled"));
        assert!(!ledger.is_enabled());
    }

    #[test]
    fn enabled_ledger_assigns_dense_sequence_numbers() {
        let sink = Arc::new(CollectLedger::new());
        let ledger = Ledger::new(sink.clone());
        for _ in 0..3 {
            let record = sample_record(QueryKind::Product);
            ledger.emit(record);
        }
        let records = sink.take();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn tagged_ledger_stamps_request_ids_on_every_record() {
        let sink = Arc::new(CollectLedger::new());
        let ledger = Ledger::new_tagged(sink.clone(), "r7");
        ledger.emit(sample_record(QueryKind::Inclusion));
        ledger.emit(sample_record(QueryKind::Product));
        let records = sink.take();
        assert!(records
            .iter()
            .all(|r| r.request_id.as_deref() == Some("r7")));
        // Stamped records still round-trip and validate.
        for record in &records {
            let line = record.to_json();
            assert!(line.contains("\"request_id\":\"r7\""), "{line}");
            assert_eq!(parse_ledger(&line).expect("parses"), vec![record.clone()]);
            assert_eq!(schema::validate_jsonl(LEDGER_SCHEMA, &line), Ok(1));
        }
    }

    #[test]
    fn by_request_rollup_groups_and_ranks_by_wall_time() {
        let tag = |id: Option<&str>, ts_us: u64| {
            let mut record = sample_record(QueryKind::Inclusion);
            record.request_id = id.map(Arc::from);
            record.ts_us = ts_us;
            record
        };
        let records = vec![
            tag(Some("r0"), 10),
            tag(Some("r1"), 500),
            tag(Some("r1"), 500),
            tag(None, 1),
        ];
        let out = render_top_by_request(&records, 10);
        assert!(
            out.contains("4 records across 3 request(s)"),
            "header: {out}"
        );
        let rows: Vec<&str> = out.lines().skip(3).collect();
        assert!(rows[0].ends_with("r1") && rows[0].contains("1000"), "{out}");
        assert!(rows[1].ends_with("r0"), "{out}");
        assert!(rows[2].ends_with("(untagged)"), "{out}");
    }

    #[test]
    fn structural_hash_distinguishes_machines_and_is_stable() {
        let a = Nfa::literal(b"ab");
        let b = Nfa::literal(b"ba");
        assert_ne!(nfa_hash64(&a), nfa_hash64(&b));
        assert_eq!(nfa_hash64(&a), nfa_hash64(&Nfa::literal(b"ab")));
    }

    #[test]
    fn diff_ranks_the_slowed_query_first_and_gates() {
        let mut old = vec![sample_record(QueryKind::Inclusion)];
        old[0].lhs_fp = 0xaaaa;
        let mut second = sample_record(QueryKind::Inclusion);
        second.lhs_fp = 0xbbbb;
        old.push(second);
        let mut new = old.clone();
        new[1].ts_us += 100_000; // the artificially slowed query
        let report = render_diff(
            &old,
            &new,
            &DiffOptions {
                limit: 10,
                fail_above_pct: Some(50.0),
            },
        );
        let first_row = report.text.lines().nth(2).expect("at least one ranked row");
        assert!(first_row.contains("000000000000bbbb"), "{}", report.text);
        assert!(report.gate_breached, "{}", report.text);
        let calm = render_diff(
            &old,
            &old.clone(),
            &DiffOptions {
                limit: 10,
                fail_above_pct: Some(50.0),
            },
        );
        assert!(!calm.gate_breached, "{}", calm.text);
    }

    #[test]
    fn model_view_emits_one_row_per_feature_vector() {
        let records = vec![
            sample_record(QueryKind::Inclusion),
            sample_record(QueryKind::Inclusion),
            sample_record(QueryKind::Product),
        ];
        let json = render_model(&records);
        let parsed = Json::parse(&json).expect("model output is JSON");
        let rows = parsed.as_array().expect("array");
        assert_eq!(rows.len(), 2, "{json}");
        let first = rows[0].as_object().expect("object");
        assert_eq!(get_u64(first, "count"), Ok(2));
    }

    #[test]
    fn top_view_names_the_hottest_key() {
        let mut records = vec![
            sample_record(QueryKind::Inclusion),
            sample_record(QueryKind::Product),
        ];
        records[1].ts_us = 99_999;
        let out = render_top(&records, None, 5).expect("renders");
        let first_row = out
            .lines()
            .find(|l| l.trim_start().starts_with(char::is_numeric))
            .expect("ranked row");
        assert!(first_row.contains("Product"), "{out}");
    }
}
