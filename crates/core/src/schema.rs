//! Shared serde-free JSON plumbing for every schema-pinned JSONL stream
//! the solver emits: the trace journal (`docs/trace.schema.json`), the
//! metrics snapshot (`docs/metrics.schema.json`), and the query cost
//! ledger (`docs/ledger.schema.json`).
//!
//! The workspace is serde-free by construction, so this module carries
//! its own minimal JSON reader, a string escaper for the writers, and a
//! validator for the `oneOf` subset of JSON Schema the checked-in
//! documents use (per-`kind` `required` lists plus `properties` type
//! checks, unknown fields failing closed). Before PR 6 the trace and
//! metrics subsystems each embedded a private copy of this machinery;
//! they now share this one.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------

/// Validates a JSONL document against an event schema (the `oneOf`
/// subset of JSON Schema the checked-in files use: per-kind `required`
/// lists and `properties` type checks). Returns the number of validated
/// events.
///
/// # Errors
///
/// Returns `line N: <problem>` for the first invalid line, or a
/// description of a malformed schema.
pub fn validate_jsonl(schema_src: &str, jsonl: &str) -> Result<usize, String> {
    let schema = Schema::parse(schema_src)?;
    let mut count = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        schema
            .validate_line(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        count += 1;
    }
    Ok(count)
}

/// The event kinds a schema document covers (the `kind` consts of its
/// `oneOf` branches) — used by the drift tests to compare against the
/// emitters' own kind lists.
///
/// # Errors
///
/// Returns a description of a malformed schema.
pub fn schema_kinds(schema_src: &str) -> Result<Vec<String>, String> {
    Ok(Schema::parse(schema_src)?
        .branches
        .iter()
        .map(|b| b.kind.clone())
        .collect())
}

struct Schema {
    branches: Vec<SchemaBranch>,
}

struct SchemaBranch {
    kind: String,
    required: Vec<String>,
    /// property name → allowed JSON type names.
    properties: Vec<(String, Vec<String>)>,
}

impl Schema {
    fn parse(src: &str) -> Result<Schema, String> {
        let value = Json::parse(src).map_err(|e| format!("schema: {e}"))?;
        let obj = value.as_object().ok_or("schema: not a JSON object")?;
        let one_of = lookup(obj, "oneOf")
            .and_then(Json::as_array)
            .ok_or("schema: missing oneOf array")?;
        let mut branches = Vec::new();
        for branch in one_of {
            let bobj = branch
                .as_object()
                .ok_or("schema: oneOf entry not an object")?;
            let props = lookup(bobj, "properties")
                .and_then(Json::as_object)
                .ok_or("schema: branch without properties")?;
            let kind = props
                .iter()
                .find(|(k, _)| k == "kind")
                .and_then(|(_, v)| v.as_object())
                .and_then(|k| lookup(k, "const"))
                .and_then(Json::as_str)
                .ok_or("schema: branch kind without const")?
                .to_owned();
            let required = lookup(bobj, "required")
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect()
                })
                .unwrap_or_default();
            let mut properties = Vec::new();
            for (name, spec) in props {
                if name == "kind" {
                    continue;
                }
                let types = spec
                    .as_object()
                    .and_then(|s| lookup(s, "type"))
                    .map(|t| match t {
                        Json::Str(s) => vec![s.clone()],
                        Json::Arr(items) => items
                            .iter()
                            .filter_map(|v| v.as_str().map(str::to_owned))
                            .collect(),
                        _ => Vec::new(),
                    })
                    .unwrap_or_default();
                properties.push((name.clone(), types));
            }
            branches.push(SchemaBranch {
                kind,
                required,
                properties,
            });
        }
        if branches.is_empty() {
            return Err("schema: oneOf has no branches".to_owned());
        }
        Ok(Schema { branches })
    }

    fn validate_line(&self, line: &str) -> Result<(), String> {
        let value = Json::parse(line)?;
        let obj = value.as_object().ok_or("not a JSON object")?;
        let kind = lookup(obj, "kind")
            .and_then(Json::as_str)
            .ok_or("missing string field `kind`")?;
        let branch = self
            .branches
            .iter()
            .find(|b| b.kind == kind)
            .ok_or_else(|| format!("event kind {kind:?} is not covered by the schema"))?;
        for req in &branch.required {
            if lookup(obj, req).is_none() {
                return Err(format!("{kind}: missing required field `{req}`"));
            }
        }
        for (name, types) in &branch.properties {
            let Some(actual) = lookup(obj, name) else {
                continue;
            };
            if !types.is_empty() && !types.iter().any(|t| actual.type_matches(t)) {
                return Err(format!(
                    "{kind}: field `{name}` has type {}, expected one of {types:?}",
                    actual.type_name()
                ));
            }
        }
        // Unknown fields fail closed: the schema is the contract.
        for (name, _) in obj {
            if name != "kind" && !branch.properties.iter().any(|(p, _)| p == name) {
                return Err(format!("{kind}: unexpected field `{name}`"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// A minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON value. Only what the JSONL tooling needs: enough to
/// read back events, requests, and the checked-in schema documents.
/// Objects preserve field order (a `Vec` of pairs, not a map), which is
/// what keeps round-tripped output deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are `f64`s with zero fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// First value under `key` in an object's field list, if present.
pub fn lookup<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Json {
    /// Parses one complete JSON document (trailing content is an error).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset description of the first syntax problem.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = Json::parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_owned()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    let value = Json::parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(Json::parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = *pos;
                while let Some(&c) = bytes.get(*pos) {
                    if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                        *pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| format!("bad number at byte {start}"))?;
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number {text:?} at byte {start}"))
            }
        }
    }

    /// The object's field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(n) if n.fract() == 0.0 => "integer",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn type_matches(&self, schema_type: &str) -> bool {
        match schema_type {
            "integer" => matches!(self, Json::Num(n) if n.fract() == 0.0),
            "number" => matches!(self, Json::Num(_)),
            "string" => matches!(self, Json::Str(_)),
            "boolean" => matches!(self, Json::Bool(_)),
            "null" => matches!(self, Json::Null),
            "array" => matches!(self, Json::Arr(_)),
            "object" => matches!(self, Json::Obj(_)),
            _ => false,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_whitespace() {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_owned()),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (including quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Typed field accessors shared by the JSONL readers
// ---------------------------------------------------------------------

pub(crate) fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    lookup(obj, key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

pub(crate) fn get_usize(obj: &[(String, Json)], key: &str) -> Result<usize, String> {
    get_u64(obj, key).map(|v| v as usize)
}

pub(crate) fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match lookup(obj, key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean field `{key}`")),
    }
}

pub(crate) fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    lookup(obj, key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

pub(crate) fn get_opt_str(obj: &[(String, Json)], key: &str) -> Result<Option<String>, String> {
    match lookup(obj, key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| format!("field `{key}` is not a string")),
    }
}

pub(crate) fn get_opt_u32(obj: &[(String, Json)], key: &str) -> Result<Option<u32>, String> {
    match lookup(obj, key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as u32))
            .ok_or_else(|| format!("field `{key}` is neither integer nor null")),
    }
}

pub(crate) fn get_u32_array(obj: &[(String, Json)], key: &str) -> Result<Vec<u32>, String> {
    lookup(obj, key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array field `{key}`"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|n| n as u32)
                .ok_or_else(|| format!("non-integer element in `{key}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY_SCHEMA: &str = r#"{
        "oneOf": [
            {
                "properties": {
                    "kind": { "const": "Ping" },
                    "seq": { "type": "integer" },
                    "tag": { "type": ["string", "null"] }
                },
                "required": ["kind", "seq"]
            }
        ]
    }"#;

    #[test]
    fn validates_conforming_lines_and_counts_them() {
        let jsonl = "{\"kind\":\"Ping\",\"seq\":1}\n\n{\"kind\":\"Ping\",\"seq\":2,\"tag\":null}\n";
        assert_eq!(validate_jsonl(TOY_SCHEMA, jsonl), Ok(2));
    }

    #[test]
    fn rejects_unknown_kind_and_unknown_field_with_line_numbers() {
        let err = validate_jsonl(TOY_SCHEMA, "{\"kind\":\"Pong\",\"seq\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err =
            validate_jsonl(TOY_SCHEMA, "{\"kind\":\"Ping\",\"seq\":1,\"x\":2}\n").unwrap_err();
        assert!(err.contains("unexpected field `x`"), "{err}");
    }

    #[test]
    fn rejects_type_mismatches_and_truncated_lines() {
        let err = validate_jsonl(TOY_SCHEMA, "{\"kind\":\"Ping\",\"seq\":\"one\"}\n").unwrap_err();
        assert!(err.contains("expected one of"), "{err}");
        let err = validate_jsonl(TOY_SCHEMA, "{\"kind\":\"Ping\",\"seq").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn schema_kinds_lists_branches() {
        assert_eq!(schema_kinds(TOY_SCHEMA), Ok(vec!["Ping".to_owned()]));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\n\u{1}"), "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn json_roundtrip_accessors() {
        let v = Json::parse("{\"a\":1,\"b\":[true,null],\"c\":\"x\"}").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(get_u64(obj, "a"), Ok(1));
        assert_eq!(get_str(obj, "c"), Ok("x"));
        assert!(get_bool(obj, "a").is_err());
        assert_eq!(lookup(obj, "b").and_then(Json::as_array).unwrap().len(), 2);
    }
}
