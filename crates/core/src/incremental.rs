//! An incremental, SMT-style solver interface.
//!
//! Concolic-testing loops (the paper's §1 "directed randomized testing"
//! application) repeatedly solve variations of one path condition: assert
//! the common prefix once, then push/pop per-branch constraints. This
//! module provides that interface — `push`/`pop` scopes over a growing
//! [`System`], with `check` solving the current constraint stack.
//!
//! The backend re-solves from scratch on each `check` (the paper's
//! procedure has no incremental core); the value is the *interface* plus
//! reuse across checks: interned constants persist across scopes (the
//! expensive regex→NFA compilations happen once per pattern), and all
//! checks share one [`LangStore`], so canonical fingerprints, leaf
//! intersections, and inclusion results computed for the common constraint
//! prefix are cache hits in every later `check`.

use crate::solution::Solution;
use crate::solve::{solve_traced, SolveOptions, SolveStats};
use crate::spec::{ConstId, Expr, System, VarId};
use crate::trace::{TraceEventKind, Tracer};
use dprle_automata::LangStore;
use std::sync::Arc;

/// An incremental solver: a constraint stack over a shared [`System`].
///
/// # Examples
///
/// ```
/// use dprle_core::incremental::Solver;
/// use dprle_core::Expr;
///
/// let mut solver = Solver::new();
/// let v = solver.declare("v");
/// let lower = solver.constant_regex("lower", "^[a-z]+$")?;
/// solver.assert(Expr::Var(v), lower);
/// assert!(solver.check().is_sat());
///
/// solver.push();
/// let digit = solver.constant_regex("digit", "[0-9]")?;
/// solver.assert(Expr::Var(v), digit);     // lowercase AND contains a digit
/// assert!(!solver.check().is_sat());      // contradiction
/// solver.pop();
///
/// assert!(solver.check().is_sat());        // back to satisfiable
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    system: System,
    /// Constraint-count marks for each open scope.
    scopes: Vec<usize>,
    options: SolveOptions,
    /// Shared across every `check` (and across clones of the solver):
    /// fingerprints and memoized operations persist over push/pop.
    store: Arc<LangStore>,
    /// Disabled by default; [`Solver::set_tracer`] turns the solver's
    /// push/pop/check lifecycle and every check's solve into trace events.
    tracer: Tracer,
}

impl Solver {
    /// Creates an empty solver with default options.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: SolveOptions) -> Solver {
        let store = Arc::new(LangStore::interning(options.interning));
        Solver {
            system: System::default(),
            scopes: Vec::new(),
            options,
            store,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer: `push`/`pop` emit `IncrementalPush`/`Pop`
    /// events, and each `check` emits `IncrementalCheck` followed by the
    /// full solver trace of that check (all sharing the tracer's clock and
    /// sequence numbers, so a multi-check session journals as one stream).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The currently installed tracer (disabled unless
    /// [`Solver::set_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Declares (or re-fetches) a string variable.
    pub fn declare(&mut self, name: &str) -> VarId {
        self.system.var(name)
    }

    /// Interns a constant language from a machine.
    pub fn constant(&mut self, name: &str, machine: dprle_automata::Nfa) -> ConstId {
        self.system.constant(name, machine)
    }

    /// Interns a constant from a regex with search (`preg_match`)
    /// semantics.
    ///
    /// # Errors
    ///
    /// Propagates regex parse/compile errors.
    pub fn constant_regex(
        &mut self,
        name: &str,
        pattern: &str,
    ) -> Result<ConstId, dprle_regex::ParseRegexError> {
        self.system.constant_regex(name, pattern)
    }

    /// Interns a constant from a regex with exact (full-match) semantics.
    ///
    /// # Errors
    ///
    /// Propagates regex parse/compile errors.
    pub fn constant_regex_exact(
        &mut self,
        name: &str,
        pattern: &str,
    ) -> Result<ConstId, dprle_regex::ParseRegexError> {
        self.system.constant_regex_exact(name, pattern)
    }

    /// Asserts `lhs ⊆ rhs` in the current scope.
    pub fn assert(&mut self, lhs: impl Into<Expr>, rhs: ConstId) {
        self.system.require(lhs, rhs);
    }

    /// Opens a scope: constraints asserted after this call are retracted by
    /// the matching [`Solver::pop`].
    pub fn push(&mut self) {
        self.scopes.push(self.system.num_constraints());
        self.tracer.emit(|| TraceEventKind::IncrementalPush {
            depth: self.scopes.len(),
        });
    }

    /// Closes the innermost scope, retracting its constraints.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open (`pop` without `push`).
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.system.truncate_constraints(mark);
        self.tracer.emit(|| TraceEventKind::IncrementalPop {
            depth: self.scopes.len(),
        });
    }

    /// The number of currently open scopes.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// The number of currently asserted constraints.
    pub fn num_assertions(&self) -> usize {
        self.system.num_constraints()
    }

    /// Solves the current constraint stack.
    pub fn check(&self) -> Solution {
        self.check_with_stats().0
    }

    /// Like [`Solver::check`], also returning this check's solver counters
    /// (cache hits accumulate across checks through the shared store, but
    /// the returned stats are per-call deltas).
    pub fn check_with_stats(&self) -> (Solution, SolveStats) {
        self.tracer.emit(|| TraceEventKind::IncrementalCheck {
            assertions: self.system.num_constraints(),
        });
        solve_traced(&self.system, &self.options, &self.store, &self.tracer)
    }

    /// Borrows the underlying system (e.g. for witness name lookups).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The language store shared by this solver's checks.
    pub fn store(&self) -> &LangStore {
        &self.store
    }
}

/// Support for scope retraction: removes constraints beyond `len`.
impl System {
    /// Truncates the constraint list to its first `len` entries (interned
    /// variables and constants are kept — they are harmless and their
    /// compiled machines stay reusable).
    pub fn truncate_constraints(&mut self, len: usize) {
        self.retain_constraints(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_automata::Nfa;

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut solver = Solver::new();
        let v = solver.declare("v");
        let a = solver.constant("a", Nfa::literal(b"a"));
        solver.assert(Expr::Var(v), a);
        assert!(solver.check().is_sat());
        assert_eq!(solver.num_assertions(), 1);

        solver.push();
        let b = solver.constant("b", Nfa::literal(b"b"));
        solver.assert(Expr::Var(v), b);
        assert!(!solver.check().is_sat());
        assert_eq!(solver.depth(), 1);
        solver.pop();

        assert_eq!(solver.depth(), 0);
        assert_eq!(solver.num_assertions(), 1);
        assert!(solver.check().is_sat());
    }

    #[test]
    fn nested_scopes() {
        let mut solver = Solver::new();
        let v = solver.declare("v");
        let any = solver
            .constant_regex_exact("any", "[ab]*")
            .expect("compiles");
        solver.assert(Expr::Var(v), any);

        solver.push();
        let has_a = solver.constant_regex("has_a", "a").expect("compiles");
        solver.assert(Expr::Var(v), has_a);
        solver.push();
        let no_a = solver.constant_regex_exact("no_a", "b*").expect("compiles");
        solver.assert(Expr::Var(v), no_a);
        assert!(!solver.check().is_sat());
        solver.pop();
        assert!(solver.check().is_sat());
        solver.pop();
        assert_eq!(solver.num_assertions(), 1);
    }

    #[test]
    fn concolic_style_branch_exploration() {
        // One shared prefix constraint; flip a branch condition per scope —
        // the intro's directed-testing loop in miniature.
        let mut solver = Solver::new();
        let input = solver.declare("input");
        let printable = solver
            .constant_regex_exact("printable", "[ -~]*")
            .expect("re");
        solver.assert(Expr::Var(input), printable);

        let cond = solver.constant_regex("admin", "^admin").expect("re");
        let not_cond = {
            let re = dprle_regex::Regex::new("^admin").expect("re");
            let machine = dprle_automata::complement(re.search_language());
            solver.constant("not_admin", machine)
        };

        // Branch taken:
        solver.push();
        solver.assert(Expr::Var(input), cond);
        let taken = solver.check();
        let w1 = taken
            .first()
            .expect("sat")
            .witness(input)
            .expect("nonempty");
        assert!(w1.starts_with(b"admin"));
        solver.pop();

        // Branch not taken:
        solver.push();
        solver.assert(Expr::Var(input), not_cond);
        let skipped = solver.check();
        let w2 = skipped
            .first()
            .expect("sat")
            .witness(input)
            .expect("witness");
        assert!(!w2.starts_with(b"admin"));
        solver.pop();
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        Solver::new().pop();
    }

    #[test]
    fn tracer_journals_the_push_pop_check_lifecycle() {
        use crate::trace::{check_well_nested, CollectSink, TraceEventKind, Tracer};

        let sink = std::sync::Arc::new(CollectSink::new());
        let mut solver = Solver::new();
        solver.set_tracer(Tracer::new(sink.clone()));
        let v = solver.declare("v");
        let a = solver.constant("a", Nfa::literal(b"a"));
        solver.assert(Expr::Var(v), a);
        assert!(solver.check().is_sat());
        solver.push();
        let b = solver.constant("b", Nfa::literal(b"b"));
        solver.assert(Expr::Var(v), b);
        assert!(!solver.check().is_sat());
        solver.pop();

        let events = sink.take();
        check_well_nested(&events).expect("nested spans");
        let count = |name: &str| events.iter().filter(|e| e.kind.kind_name() == name).count();
        assert_eq!(count("IncrementalPush"), 1);
        assert_eq!(count("IncrementalPop"), 1);
        assert_eq!(count("IncrementalCheck"), 2);
        assert_eq!(count("SolveStart"), 2);
        assert!(count("MemoMiss") > 0, "store observer wired through checks");
        // The check inside the scope sees two assertions.
        let depths: Vec<usize> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::IncrementalCheck { assertions } => Some(assertions),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2]);
    }

    #[test]
    fn store_caches_persist_across_checks() {
        let mut solver = Solver::new();
        let v = solver.declare("v");
        let a = solver.constant_regex_exact("a", "[ab]+").expect("compiles");
        solver.assert(Expr::Var(v), a);
        let (_, first) = solver.check_with_stats();
        assert_eq!(
            first.fingerprint_hits, 0,
            "nothing cached before the first check"
        );
        let (_, second) = solver.check_with_stats();
        assert!(second.fingerprint_hits > 0, "constant fingerprint reused");
        assert!(second.memo_op_hits > 0, "leaf minimization reused");
        assert!(second.fingerprint_misses <= first.fingerprint_misses);
    }
}
