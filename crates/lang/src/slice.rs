//! Program slicing with respect to a query sink.
//!
//! The paper (§2) proposes that, beyond an exploit input, an analysis
//! "could reasonably be extended to produce a slice of the program with
//! respect to the values that end up in the subverted query … helping the
//! developer locate potential causes of the error". This module implements
//! that extension: a backward, syntax-directed slice that keeps
//!
//! * the sink itself,
//! * every assignment that (transitively) flows into the sink value, and
//! * every branch whose condition tests a value flowing into the sink
//!   (these are the input-validation checks whose weakness caused the bug —
//!   the paper's Figure 1 slice keeps exactly the input read and the faulty
//!   `preg_match`).
//!
//! The slice is conservative across branches (both arms are scanned), so
//! it over-approximates rather than misses a cause.

use crate::ast::{Cond, Program, Stmt, StringExpr};
use crate::php;
use std::collections::BTreeSet;

/// One kept statement: where it sits and how it reads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SliceLine {
    /// Nesting-aware position, e.g. `"3"` or `"1.then.0"`.
    pub position: String,
    /// The statement, rendered in PHP-like syntax (one line; branch bodies
    /// elided).
    pub rendered: String,
}

/// The slice: kept lines in source order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Slice {
    /// Kept statements, in program order.
    pub lines: Vec<SliceLine>,
}

impl Slice {
    /// Renders the slice one statement per line.
    pub fn to_text(&self) -> String {
        self.lines
            .iter()
            .map(|l| format!("[{}] {}", l.position, l.rendered))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Computes the backward slice of `program` with respect to its
/// `sink_index`-th `query()` statement (in preorder). Returns `None` when
/// the program has no such sink.
pub fn slice_for_sink(program: &Program, sink_index: usize) -> Option<Slice> {
    // Phase 1: find the sink and seed the relevant-variable set.
    let mut counter = 0usize;
    let seed = find_sink(&program.stmts, sink_index, &mut counter)?;
    let mut relevant: BTreeSet<String> = seed;

    // Phase 2: fixpoint over the whole program (assignments can appear
    // before or after branches that test them; iterating to a fixpoint
    // keeps the traversal simple and conservative).
    loop {
        let before = relevant.len();
        grow(&program.stmts, &mut relevant);
        if relevant.len() == before {
            break;
        }
    }

    // Phase 3: collect the kept statements in order.
    let mut slice = Slice::default();
    let mut sink_counter = 0usize;
    collect(
        &program.stmts,
        "",
        &relevant,
        sink_index,
        &mut sink_counter,
        &mut slice,
    );
    Some(slice)
}

/// Names used by an expression: variables as-is, inputs prefixed with `@`
/// so they can't collide with variables.
fn expr_names(e: &StringExpr, out: &mut BTreeSet<String>) {
    match e {
        StringExpr::Literal(_) => {}
        StringExpr::Var(name) => {
            out.insert(name.clone());
        }
        StringExpr::Input(name) => {
            out.insert(format!("@{name}"));
        }
        StringExpr::Concat(parts) => {
            for p in parts {
                expr_names(p, out);
            }
        }
        StringExpr::Lower(inner) | StringExpr::Upper(inner) => expr_names(inner, out),
    }
}

fn cond_names(c: &Cond, out: &mut BTreeSet<String>) {
    match c {
        Cond::PregMatch { subject, .. } | Cond::EqualsLiteral { subject, .. } => {
            expr_names(subject, out)
        }
        Cond::Not(inner) => cond_names(inner, out),
        Cond::Opaque(_) => {}
    }
}

fn find_sink(stmts: &[Stmt], target: usize, counter: &mut usize) -> Option<BTreeSet<String>> {
    for stmt in stmts {
        match stmt {
            Stmt::Query { expr } => {
                if *counter == target {
                    let mut seed = BTreeSet::new();
                    expr_names(expr, &mut seed);
                    return Some(seed);
                }
                *counter += 1;
            }
            Stmt::If { then, els, .. } => {
                if let Some(seed) = find_sink(then, target, counter) {
                    return Some(seed);
                }
                if let Some(seed) = find_sink(els, target, counter) {
                    return Some(seed);
                }
            }
            Stmt::While { body, .. } => {
                if let Some(seed) = find_sink(body, target, counter) {
                    return Some(seed);
                }
            }
            _ => {}
        }
    }
    None
}

/// Adds the dependencies of relevant assignments to the relevant set.
fn grow(stmts: &[Stmt], relevant: &mut BTreeSet<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } if relevant.contains(var) => {
                expr_names(value, relevant);
            }
            Stmt::If { then, els, .. } => {
                grow(then, relevant);
                grow(els, relevant);
            }
            Stmt::While { body, .. } => grow(body, relevant),
            _ => {}
        }
    }
}

fn collect(
    stmts: &[Stmt],
    prefix: &str,
    relevant: &BTreeSet<String>,
    sink_index: usize,
    sink_counter: &mut usize,
    out: &mut Slice,
) {
    for (i, stmt) in stmts.iter().enumerate() {
        let position = if prefix.is_empty() {
            i.to_string()
        } else {
            format!("{prefix}.{i}")
        };
        match stmt {
            Stmt::Assign { var, value } => {
                if relevant.contains(var) {
                    out.lines.push(SliceLine {
                        position,
                        rendered: render_one(stmt),
                    });
                    let _ = value;
                }
            }
            Stmt::Query { .. } => {
                if *sink_counter == sink_index {
                    out.lines.push(SliceLine {
                        position,
                        rendered: render_one(stmt),
                    });
                }
                *sink_counter += 1;
            }
            Stmt::If { cond, then, els } => {
                let mut tested = BTreeSet::new();
                cond_names(cond, &mut tested);
                if tested.iter().any(|n| relevant.contains(n)) {
                    out.lines.push(SliceLine {
                        position: position.clone(),
                        rendered: format!("if ({}) {{ … }}", render_cond(cond)),
                    });
                }
                collect(
                    then,
                    &format!("{position}.then"),
                    relevant,
                    sink_index,
                    sink_counter,
                    out,
                );
                collect(
                    els,
                    &format!("{position}.else"),
                    relevant,
                    sink_index,
                    sink_counter,
                    out,
                );
            }
            Stmt::While { cond, body } => {
                let mut tested = BTreeSet::new();
                cond_names(cond, &mut tested);
                if tested.iter().any(|n| relevant.contains(n)) {
                    out.lines.push(SliceLine {
                        position: position.clone(),
                        rendered: format!("while ({}) {{ … }}", render_cond(cond)),
                    });
                }
                collect(
                    body,
                    &format!("{position}.loop"),
                    relevant,
                    sink_index,
                    sink_counter,
                    out,
                );
            }
            Stmt::Echo { .. } | Stmt::Exit => {}
        }
    }
}

fn render_one(stmt: &Stmt) -> String {
    let mut program = Program::new("line");
    program.stmts = vec![stmt.clone()];
    let text = php::print_php(&program);
    text.lines().nth(1).unwrap_or("").trim().to_owned()
}

fn render_cond(cond: &Cond) -> String {
    // Reuse the printer through a throwaway if-statement.
    let mut program = Program::new("cond");
    program.stmts = vec![Stmt::If {
        cond: cond.clone(),
        then: vec![],
        els: vec![],
    }];
    let text = php::print_php(&program);
    let line = text.lines().nth(1).unwrap_or("");
    line.trim()
        .trim_start_matches("if (")
        .trim_end_matches(") {")
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_slice_keeps_input_check_prefix_and_sink() {
        let slice = slice_for_sink(&Program::figure1(), 0).expect("has a sink");
        let text = slice.to_text();
        // The input read (line 1) and the faulty check (line 2), as the
        // paper describes, plus the value-building assignment and the sink.
        assert!(
            text.contains("$newsid = $_POST['posted_newsid'];"),
            "{text}"
        );
        assert!(text.contains("preg_match"), "{text}");
        assert!(text.contains("nid_"), "{text}");
        assert!(text.contains("query("), "{text}");
        // The irrelevant echo inside the guard is elided.
        assert!(!text.contains("Invalid article news ID"), "{text}");
        assert_eq!(slice.lines.len(), 4, "{text}");
    }

    #[test]
    fn unrelated_statements_are_elided() {
        use crate::ast::{Cond, Stmt, StringExpr};
        let mut p = Program::new("mix");
        p.stmts.push(Stmt::Assign {
            var: "x".into(),
            value: StringExpr::input("used"),
        });
        p.stmts.push(Stmt::Assign {
            var: "y".into(),
            value: StringExpr::input("unused"),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "a".into(),
                subject: StringExpr::var("y"),
            },
            then: vec![Stmt::Echo {
                expr: StringExpr::lit("hi"),
            }],
            els: vec![],
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::var("x"),
        });
        let slice = slice_for_sink(&p, 0).expect("has a sink");
        let text = slice.to_text();
        assert!(text.contains("$x ="), "{text}");
        assert!(!text.contains("$y ="), "{text}");
        assert!(!text.contains("preg_match"), "{text}");
        assert_eq!(slice.lines.len(), 2);
    }

    #[test]
    fn transitive_flow_is_followed() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("chain");
        p.stmts.push(Stmt::Assign {
            var: "a".into(),
            value: StringExpr::input("src"),
        });
        p.stmts.push(Stmt::Assign {
            var: "b".into(),
            value: StringExpr::lit("pre_").concat(StringExpr::var("a")),
        });
        p.stmts.push(Stmt::Assign {
            var: "c".into(),
            value: StringExpr::var("b"),
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::var("c"),
        });
        let slice = slice_for_sink(&p, 0).expect("has a sink");
        assert_eq!(slice.lines.len(), 4, "{}", slice.to_text());
    }

    #[test]
    fn second_sink_selected_by_index() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("two");
        p.stmts.push(Stmt::Assign {
            var: "x".into(),
            value: StringExpr::input("a"),
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("static"),
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::var("x"),
        });
        let first = slice_for_sink(&p, 0).expect("sink 0");
        assert_eq!(first.lines.len(), 1, "{}", first.to_text());
        let second = slice_for_sink(&p, 1).expect("sink 1");
        assert_eq!(second.lines.len(), 2, "{}", second.to_text());
        assert!(slice_for_sink(&p, 2).is_none());
    }

    #[test]
    fn sink_inside_branch_is_found() {
        use crate::ast::{Cond, Stmt, StringExpr};
        let mut p = Program::new("nested");
        p.stmts.push(Stmt::Assign {
            var: "q".into(),
            value: StringExpr::input("k"),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("flip".into()),
            then: vec![Stmt::Query {
                expr: StringExpr::var("q"),
            }],
            els: vec![],
        });
        let slice = slice_for_sink(&p, 0).expect("nested sink");
        let text = slice.to_text();
        assert!(text.contains("[1.then.0] query"), "{text}");
        assert!(text.contains("$q ="), "{text}");
    }
}
