//! Control-flow graphs over the string IR.
//!
//! The paper's Figure 12 reports `|FG|`, "the number of basic blocks in the
//! code", for every analyzed file; this module computes that metric (and a
//! usable CFG) for IR programs.

use crate::ast::{Program, Stmt};

/// Identifier of a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

/// A basic block: a maximal straight-line statement run.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Indices of the statements in the block (paths into nested
    /// statement lists, rendered as strings for debuggability).
    pub statements: Vec<String>,
    /// Successor blocks.
    pub successors: Vec<BlockId>,
    /// Whether the block ends in `exit` (no successors) or falls off the
    /// end of the program.
    pub terminates: bool,
}

/// A control-flow graph.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    blocks: Vec<Block>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let mut cfg = Cfg::default();
        let entry = cfg.fresh();
        let exit_block = cfg.fresh();
        cfg.blocks[exit_block.index()].terminates = true;
        let last = cfg.lower(&program.stmts, entry, "");
        if let Some(last) = last {
            cfg.blocks[last.index()].successors.push(exit_block);
        }
        cfg
    }

    /// The number of basic blocks — the paper's `|FG|` column.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.blocks.iter().map(|b| b.successors.len()).sum()
    }

    fn fresh(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Lowers a statement list starting in `current`; returns the block
    /// control falls out of, or `None` if all paths exit.
    fn lower(&mut self, stmts: &[Stmt], mut current: BlockId, prefix: &str) -> Option<BlockId> {
        for (i, stmt) in stmts.iter().enumerate() {
            let label = format!("{prefix}{i}");
            match stmt {
                Stmt::Assign { .. } | Stmt::Query { .. } | Stmt::Echo { .. } => {
                    self.blocks[current.index()].statements.push(label);
                }
                Stmt::Exit => {
                    self.blocks[current.index()].statements.push(label);
                    self.blocks[current.index()].terminates = true;
                    return None;
                }
                Stmt::While { body, .. } => {
                    // head (condition) → body → back to head; head → exit.
                    let head = self.fresh();
                    self.blocks[current.index()].successors.push(head);
                    self.blocks[head.index()].statements.push(label.clone());
                    let body_entry = self.fresh();
                    self.blocks[head.index()].successors.push(body_entry);
                    if let Some(body_out) = self.lower(body, body_entry, &format!("{label}.w")) {
                        self.blocks[body_out.index()].successors.push(head);
                    }
                    let exit = self.fresh();
                    self.blocks[head.index()].successors.push(exit);
                    current = exit;
                }
                Stmt::If { then, els, .. } => {
                    self.blocks[current.index()].statements.push(label.clone());
                    let then_entry = self.fresh();
                    let else_entry = self.fresh();
                    self.blocks[current.index()].successors.push(then_entry);
                    self.blocks[current.index()].successors.push(else_entry);
                    let then_out = self.lower(then, then_entry, &format!("{label}.t"));
                    let else_out = self.lower(els, else_entry, &format!("{label}.e"));
                    match (then_out, else_out) {
                        (None, None) => return None,
                        (Some(b), None) | (None, Some(b)) => current = b,
                        (Some(a), Some(b)) => {
                            let join = self.fresh();
                            self.blocks[a.index()].successors.push(join);
                            self.blocks[b.index()].successors.push(join);
                            current = join;
                        }
                    }
                }
            }
        }
        Some(current)
    }
}

impl BlockId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Cond, Program, Stmt, StringExpr};

    #[test]
    fn straight_line_is_two_blocks() {
        let mut p = Program::new("straight");
        p.stmts.push(Stmt::Assign {
            var: "a".into(),
            value: StringExpr::lit("x"),
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::var("a"),
        });
        let cfg = Cfg::build(&p);
        // Entry block + synthetic exit block.
        assert_eq!(cfg.num_blocks(), 2);
        assert_eq!(cfg.num_edges(), 1);
    }

    #[test]
    fn branch_creates_diamond() {
        let mut p = Program::new("diamond");
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("c".into()),
            then: vec![Stmt::Echo {
                expr: StringExpr::lit("t"),
            }],
            els: vec![Stmt::Echo {
                expr: StringExpr::lit("e"),
            }],
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("q"),
        });
        let cfg = Cfg::build(&p);
        // entry, then, else, join, exit.
        assert_eq!(cfg.num_blocks(), 5);
    }

    #[test]
    fn exit_terminates_path() {
        let p = Program::figure1();
        let cfg = Cfg::build(&p);
        // entry, exit-block(synthetic), then (echo+exit), else(empty).
        assert!(cfg.num_blocks() >= 4);
        assert!(cfg.blocks().iter().any(|b| b.terminates));
    }

    #[test]
    fn all_paths_exiting_yields_no_fallthrough_edge() {
        let mut p = Program::new("allexit");
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("c".into()),
            then: vec![Stmt::Exit],
            els: vec![Stmt::Exit],
        });
        // Unreachable query after the if.
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("q"),
        });
        let cfg = Cfg::build(&p);
        // No join block is created when both arms exit.
        let terminating = cfg.blocks().iter().filter(|b| b.terminates).count();
        assert!(terminating >= 2);
    }

    #[test]
    fn nested_branches_grow_block_count() {
        fn nested(depth: usize) -> Vec<Stmt> {
            if depth == 0 {
                return vec![Stmt::Echo {
                    expr: StringExpr::lit("leaf"),
                }];
            }
            vec![Stmt::If {
                cond: Cond::Opaque(format!("c{depth}")),
                then: nested(depth - 1),
                els: vec![Stmt::Echo {
                    expr: StringExpr::lit("e"),
                }],
            }]
        }
        let mut small = Program::new("d1");
        small.stmts = nested(1);
        let mut big = Program::new("d4");
        big.stmts = nested(4);
        assert!(Cfg::build(&big).num_blocks() > Cfg::build(&small).num_blocks());
    }
}
