//! Path-sensitive symbolic execution for the string IR.
//!
//! This is the analog of the paper's "simple prototype program analysis
//! that uses symbolic execution to set up a system of string variable
//! constraints based on paths that lead to the defect" (§4). Each program
//! path is explored; `preg_match` and equality branches contribute
//! language constraints on the symbolic values they test, and every
//! `query()` sink reached yields a [`SinkReach`] recording the symbolic
//! query string plus the path's constraints.

use crate::ast::{Cond, Program, Stmt, StringExpr};
use dprle_automata::{complement, ByteMap, Nfa};
use dprle_regex::Regex;
use std::collections::HashMap;
use std::fmt;

/// One atom of a symbolic string value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Atom {
    /// A known literal chunk.
    Literal(Vec<u8>),
    /// An untrusted input parameter, by name.
    Input(String),
    /// An input parameter viewed through a byte-to-byte homomorphism
    /// (e.g. `strtolower($_GET['x'])`). Case folding distributes over
    /// concatenation, so symbolic evaluation pushes it down to atoms.
    MappedInput {
        /// The per-byte map applied (boxed: 256 bytes of table).
        map: Box<ByteMap>,
        /// A short display name for the map (`strtolower`, …).
        map_name: String,
        /// The underlying input parameter.
        input: String,
    },
}

/// A symbolic string: a concatenation of literal chunks and inputs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymValue {
    /// The atoms in order. Adjacent literals are kept merged.
    pub atoms: Vec<Atom>,
}

impl SymValue {
    /// The empty string.
    pub fn empty() -> SymValue {
        SymValue::default()
    }

    /// A single literal.
    pub fn literal(bytes: &[u8]) -> SymValue {
        if bytes.is_empty() {
            return SymValue::empty();
        }
        SymValue {
            atoms: vec![Atom::Literal(bytes.to_vec())],
        }
    }

    /// A single input parameter.
    pub fn input(name: &str) -> SymValue {
        SymValue {
            atoms: vec![Atom::Input(name.to_owned())],
        }
    }

    /// Appends another symbolic value, merging adjacent literals.
    pub fn append(&mut self, other: &SymValue) {
        for atom in &other.atoms {
            match (self.atoms.last_mut(), atom) {
                (Some(Atom::Literal(tail)), Atom::Literal(chunk)) => {
                    tail.extend_from_slice(chunk);
                }
                _ => self.atoms.push(atom.clone()),
            }
        }
    }

    /// Whether the value is fully concrete (no inputs).
    pub fn is_concrete(&self) -> bool {
        self.atoms.iter().all(|a| matches!(a, Atom::Literal(_)))
    }

    /// Applies a byte map to the whole value: literals concretely, inputs
    /// symbolically (composing with any map already applied).
    pub fn map_bytes(&self, map: &ByteMap, map_name: &str) -> SymValue {
        let atoms = self
            .atoms
            .iter()
            .map(|a| match a {
                Atom::Literal(bytes) => Atom::Literal(map.map_bytes(bytes)),
                Atom::Input(name) => Atom::MappedInput {
                    map: Box::new(map.clone()),
                    map_name: map_name.to_owned(),
                    input: name.clone(),
                },
                Atom::MappedInput {
                    map: inner,
                    map_name: inner_name,
                    input,
                } => {
                    // Compose: outer ∘ inner.
                    let mut table = [0u8; 256];
                    for (i, slot) in table.iter_mut().enumerate() {
                        *slot = map.map(inner.map(i as u8));
                    }
                    Atom::MappedInput {
                        map: Box::new(ByteMap::from_table(table)),
                        map_name: format!("{map_name}∘{inner_name}"),
                        input: input.clone(),
                    }
                }
            })
            .collect();
        SymValue { atoms }
    }

    /// The concrete bytes, if fully concrete.
    pub fn concrete_bytes(&self) -> Option<Vec<u8>> {
        if !self.is_concrete() {
            return None;
        }
        let mut out = Vec::new();
        for a in &self.atoms {
            if let Atom::Literal(bytes) = a {
                out.extend_from_slice(bytes);
            }
        }
        Some(out)
    }

    /// The input parameters mentioned, in order of first occurrence.
    pub fn inputs(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.atoms {
            match a {
                Atom::Input(name) | Atom::MappedInput { input: name, .. } => {
                    if !out.contains(&name.as_str()) {
                        out.push(name);
                    }
                }
                Atom::Literal(_) => {}
            }
        }
        out
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "\"\"");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " . ")?;
            }
            match a {
                Atom::Literal(bytes) => write!(f, "{:?}", String::from_utf8_lossy(bytes))?,
                Atom::Input(name) => write!(f, "{name}")?,
                Atom::MappedInput {
                    map_name, input, ..
                } => write!(f, "{map_name}({input})")?,
            }
        }
        Ok(())
    }
}

/// A language constraint collected along a path: `subject ⊆ language`.
#[derive(Clone, Debug)]
pub struct PathCondition {
    /// The constrained symbolic value.
    pub subject: SymValue,
    /// The language it must lie in.
    pub language: Nfa,
    /// Human-readable origin, e.g. `preg_match(/[\d]+$/) held`.
    pub description: String,
}

/// What kind of security-sensitive sink a path reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SinkKind {
    /// A database query — SQL-injection surface.
    Query,
    /// An HTML-emitting `echo` — cross-site-scripting surface (the paper
    /// names XSS alongside SQL injection as a target class; tracked only
    /// when [`SymexOptions::track_echo`] is set).
    Echo,
}

/// A path that reaches a security-sensitive sink.
#[derive(Clone, Debug)]
pub struct SinkReach {
    /// Program name.
    pub program: String,
    /// Index of the sink among the program's recorded reaches, in path
    /// order.
    pub sink_index: usize,
    /// Which kind of sink was reached.
    pub kind: SinkKind,
    /// The symbolic sink value (query string or echoed HTML).
    pub query: SymValue,
    /// The constraints accumulated along the path.
    pub conditions: Vec<PathCondition>,
    /// The branch decisions taken (true = then), for reporting/slicing.
    pub decisions: Vec<bool>,
}

/// Errors from symbolic execution.
#[derive(Clone, Debug)]
pub enum SymexError {
    /// A `preg_match` pattern failed to parse/compile.
    BadPattern {
        /// The offending pattern.
        pattern: String,
        /// The underlying regex error.
        error: dprle_regex::ParseRegexError,
    },
    /// The path bound was exceeded; results would be incomplete.
    PathLimit(usize),
}

impl fmt::Display for SymexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymexError::BadPattern { pattern, error } => {
                write!(f, "pattern /{pattern}/ failed to compile: {error}")
            }
            SymexError::PathLimit(n) => write!(f, "exceeded path limit of {n}"),
        }
    }
}

impl std::error::Error for SymexError {}

/// Options for path exploration.
#[derive(Clone, Debug)]
pub struct SymexOptions {
    /// Maximum number of explored paths before giving up.
    pub max_paths: usize,
    /// Also record `echo` statements as sinks (for XSS policies).
    pub track_echo: bool,
    /// Loop-unrolling bound for `while` statements: each loop is explored
    /// for 0, 1, …, `max_loop_unroll` iterations; deeper behaviors are cut
    /// off (standard bounded symbolic execution — findings stay sound,
    /// absence of findings beyond the bound is not guaranteed).
    pub max_loop_unroll: usize,
}

impl Default for SymexOptions {
    fn default() -> Self {
        SymexOptions {
            max_paths: 4096,
            track_echo: false,
            max_loop_unroll: 3,
        }
    }
}

/// Explores all feasible paths of `program`, returning every sink reach.
///
/// Infeasibility is pruned *concretely*: a branch whose condition tests a
/// fully concrete value takes only the matching arm. Symbolic conditions
/// fork the path and record the corresponding language constraint.
///
/// # Errors
///
/// Fails on malformed regex patterns or when the path bound is exceeded.
pub fn explore(program: &Program, options: &SymexOptions) -> Result<Vec<SinkReach>, SymexError> {
    let mut explorer = Explorer {
        program: &program.name,
        options,
        reaches: Vec::new(),
        paths: 0,
        regex_cache: HashMap::new(),
    };
    let state = State {
        env: HashMap::new(),
        conditions: Vec::new(),
        decisions: Vec::new(),
    };
    explorer.run(&program.stmts, state)?;
    Ok(explorer.reaches)
}

#[derive(Clone, Default)]
struct State {
    env: HashMap<String, SymValue>,
    conditions: Vec<PathCondition>,
    decisions: Vec<bool>,
}

struct Explorer<'a> {
    program: &'a str,
    options: &'a SymexOptions,
    reaches: Vec<SinkReach>,
    paths: usize,
    regex_cache: HashMap<String, Regex>,
}

impl Explorer<'_> {
    fn record(&mut self, kind: SinkKind, query: SymValue, state: &State) {
        let sink_index = self.reaches.len();
        self.reaches.push(SinkReach {
            program: self.program.to_owned(),
            sink_index,
            kind,
            query,
            conditions: state.conditions.clone(),
            decisions: state.decisions.clone(),
        });
    }

    fn run(&mut self, stmts: &[Stmt], mut state: State) -> Result<(), SymexError> {
        self.paths += 1;
        if self.paths > self.options.max_paths {
            return Err(SymexError::PathLimit(self.options.max_paths));
        }
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                Stmt::Assign { var, value } => {
                    let v = eval(value, &state.env);
                    state.env.insert(var.clone(), v);
                }
                Stmt::Echo { expr } => {
                    if self.options.track_echo {
                        let value = eval(expr, &state.env);
                        // Concrete echoes of literals are uninteresting.
                        if !value.is_concrete() {
                            self.record(SinkKind::Echo, value, &state);
                        }
                    }
                }
                Stmt::Exit => return Ok(()),
                Stmt::Query { expr } => {
                    let query = eval(expr, &state.env);
                    self.record(SinkKind::Query, query, &state);
                }
                Stmt::If { cond, then, els } => {
                    let rest = &stmts[i + 1..];
                    return self.branch(cond, then, els, rest, state);
                }
                Stmt::While { cond, body } => {
                    // Bounded unrolling: while (c) { b } ≈ if (c) { b; if (c)
                    // { b; … }} with at most `max_loop_unroll` iterations,
                    // then assume the loop exits. A bound of 0 skips the
                    // loop entirely.
                    if self.options.max_loop_unroll > 0 {
                        let rest = &stmts[i + 1..];
                        let unrolled = unroll(cond, body, self.options.max_loop_unroll - 1);
                        return self.branch(&unrolled.0, &unrolled.1, &[], rest, state);
                    }
                }
            }
            i += 1;
        }
        Ok(())
    }

    fn branch(
        &mut self,
        cond: &Cond,
        then: &[Stmt],
        els: &[Stmt],
        rest: &[Stmt],
        state: State,
    ) -> Result<(), SymexError> {
        match self.judge(cond, &state)? {
            Judgment::ConcreteTrue => {
                let mut s = state;
                s.decisions.push(true);
                self.run_seq(then, rest, s)
            }
            Judgment::ConcreteFalse => {
                let mut s = state;
                s.decisions.push(false);
                self.run_seq(els, rest, s)
            }
            Judgment::Symbolic {
                when_true,
                when_false,
            } => {
                let mut t = state.clone();
                t.decisions.push(true);
                if let Some(c) = when_true {
                    t.conditions.push(*c);
                }
                self.run_seq(then, rest, t)?;
                let mut e = state;
                e.decisions.push(false);
                if let Some(c) = when_false {
                    e.conditions.push(*c);
                }
                self.run_seq(els, rest, e)
            }
        }
    }

    /// Runs a branch arm followed by the remaining statements. The arm is
    /// spliced ahead of the continuation so `exit` inside it correctly
    /// terminates the whole path.
    fn run_seq(&mut self, arm: &[Stmt], rest: &[Stmt], state: State) -> Result<(), SymexError> {
        let mut seq: Vec<Stmt> = Vec::with_capacity(arm.len() + rest.len());
        seq.extend_from_slice(arm);
        seq.extend_from_slice(rest);
        self.run(&seq, state)
    }

    fn judge(&mut self, cond: &Cond, state: &State) -> Result<Judgment, SymexError> {
        match cond {
            Cond::Not(inner) => Ok(self.judge(inner, state)?.negate()),
            Cond::Opaque(_) => Ok(Judgment::Symbolic {
                when_true: None,
                when_false: None,
            }),
            Cond::PregMatch { pattern, subject } => {
                let regex = self.compile(pattern)?;
                let value = eval_expr_cached(subject, &state.env);
                if let Some(bytes) = value.concrete_bytes() {
                    return Ok(if regex.is_match(&bytes) {
                        Judgment::ConcreteTrue
                    } else {
                        Judgment::ConcreteFalse
                    });
                }
                let lang = regex.search_language().clone();
                Ok(Judgment::Symbolic {
                    when_true: Some(Box::new(PathCondition {
                        subject: value.clone(),
                        language: lang.clone(),
                        description: format!("preg_match(/{pattern}/) held"),
                    })),
                    when_false: Some(Box::new(PathCondition {
                        subject: value,
                        language: complement(&lang),
                        description: format!("preg_match(/{pattern}/) failed"),
                    })),
                })
            }
            Cond::EqualsLiteral { subject, literal } => {
                let value = eval_expr_cached(subject, &state.env);
                if let Some(bytes) = value.concrete_bytes() {
                    return Ok(if &bytes == literal {
                        Judgment::ConcreteTrue
                    } else {
                        Judgment::ConcreteFalse
                    });
                }
                let lit = Nfa::literal(literal);
                Ok(Judgment::Symbolic {
                    when_true: Some(Box::new(PathCondition {
                        subject: value.clone(),
                        language: lit.clone(),
                        description: format!("equals {:?}", String::from_utf8_lossy(literal)),
                    })),
                    when_false: Some(Box::new(PathCondition {
                        subject: value,
                        language: complement(&lit),
                        description: format!("differs from {:?}", String::from_utf8_lossy(literal)),
                    })),
                })
            }
        }
    }

    fn compile(&mut self, pattern: &str) -> Result<Regex, SymexError> {
        if let Some(r) = self.regex_cache.get(pattern) {
            return Ok(r.clone());
        }
        let r = Regex::new(pattern).map_err(|error| SymexError::BadPattern {
            pattern: pattern.to_owned(),
            error,
        })?;
        self.regex_cache.insert(pattern.to_owned(), r.clone());
        Ok(r)
    }
}

/// Builds the if-shaped unrolling of a while loop: returns the loop
/// condition and the then-arm containing `depth` nested copies.
fn unroll(cond: &Cond, body: &[Stmt], depth: usize) -> (Cond, Vec<Stmt>) {
    let mut then: Vec<Stmt> = body.to_vec();
    if depth > 0 {
        let (inner_cond, inner_then) = unroll(cond, body, depth - 1);
        then.push(Stmt::If {
            cond: inner_cond,
            then: inner_then,
            els: Vec::new(),
        });
    }
    (cond.clone(), then)
}

enum Judgment {
    ConcreteTrue,
    ConcreteFalse,
    Symbolic {
        when_true: Option<Box<PathCondition>>,
        when_false: Option<Box<PathCondition>>,
    },
}

impl Judgment {
    fn negate(self) -> Judgment {
        match self {
            Judgment::ConcreteTrue => Judgment::ConcreteFalse,
            Judgment::ConcreteFalse => Judgment::ConcreteTrue,
            Judgment::Symbolic {
                when_true,
                when_false,
            } => Judgment::Symbolic {
                when_true: when_false,
                when_false: when_true,
            },
        }
    }
}

/// Evaluates a string expression to a symbolic value under `env`.
/// Unassigned variables evaluate to the empty string (PHP semantics for
/// uninitialized string use).
pub fn eval(expr: &StringExpr, env: &HashMap<String, SymValue>) -> SymValue {
    match expr {
        StringExpr::Literal(bytes) => SymValue::literal(bytes),
        StringExpr::Input(name) => SymValue::input(name),
        StringExpr::Var(name) => env.get(name).cloned().unwrap_or_default(),
        StringExpr::Concat(parts) => {
            let mut out = SymValue::empty();
            for p in parts {
                out.append(&eval(p, env));
            }
            out
        }
        StringExpr::Lower(inner) => {
            eval(inner, env).map_bytes(&ByteMap::to_lowercase(), "strtolower")
        }
        StringExpr::Upper(inner) => {
            eval(inner, env).map_bytes(&ByteMap::to_uppercase(), "strtoupper")
        }
    }
}

fn eval_expr_cached(expr: &StringExpr, env: &HashMap<String, SymValue>) -> SymValue {
    eval(expr, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    #[test]
    fn symvalue_merges_literals() {
        let mut v = SymValue::literal(b"a");
        v.append(&SymValue::literal(b"b"));
        assert_eq!(v.atoms.len(), 1);
        v.append(&SymValue::input("x"));
        v.append(&SymValue::literal(b"c"));
        assert_eq!(v.atoms.len(), 3);
        assert_eq!(v.to_string(), "\"ab\" . x . \"c\"");
    }

    #[test]
    fn symvalue_concreteness() {
        assert_eq!(
            SymValue::literal(b"hi").concrete_bytes(),
            Some(b"hi".to_vec())
        );
        assert_eq!(SymValue::input("x").concrete_bytes(), None);
        assert!(SymValue::empty().is_concrete());
        assert_eq!(SymValue::empty().concrete_bytes(), Some(Vec::new()));
    }

    #[test]
    fn figure1_reaches_sink_with_filter_condition() {
        let reaches = explore(&Program::figure1(), &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1, "one path reaches the query");
        let r = &reaches[0];
        assert_eq!(r.conditions.len(), 1);
        assert!(r.conditions[0].description.contains("preg_match"));
        // The filter held on the surviving path (if-arm exits).
        assert!(r.conditions[0].language.contains(b"123"));
        assert!(r.conditions[0].language.contains(b"' OR 1=1 --9"));
        // The query is "SELECT…" . "nid_" . input.
        assert_eq!(r.query.inputs(), vec!["posted_newsid"]);
        assert!(r.query.to_string().contains("nid_"));
    }

    #[test]
    fn concrete_branches_are_pruned() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("prune");
        p.stmts.push(Stmt::Assign {
            var: "a".into(),
            value: StringExpr::lit("abc"),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "^abc$".into(),
                subject: StringExpr::var("a"),
            },
            then: vec![Stmt::Query {
                expr: StringExpr::input("x"),
            }],
            els: vec![Stmt::Query {
                expr: StringExpr::lit("never"),
            }],
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1, "only the true arm is feasible");
        assert!(
            reaches[0].conditions.is_empty(),
            "concrete check leaves no constraint"
        );
    }

    #[test]
    fn opaque_branches_fork() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("fork");
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("unknown()".into()),
            then: vec![Stmt::Query {
                expr: StringExpr::input("x"),
            }],
            els: vec![],
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::input("y"),
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        // then-arm: query(x) then query(y); else-arm: query(y) → 3 reaches.
        assert_eq!(reaches.len(), 3);
    }

    #[test]
    fn exit_in_branch_kills_continuation() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("exit");
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("c".into()),
            then: vec![Stmt::Exit],
            els: vec![],
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::input("x"),
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1, "only the else path reaches the sink");
        assert_eq!(reaches[0].decisions, vec![false]);
    }

    #[test]
    fn equality_conditions_constrain() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("eq");
        p.stmts.push(Stmt::If {
            cond: Cond::EqualsLiteral {
                subject: StringExpr::input("mode"),
                literal: b"admin".to_vec(),
            },
            then: vec![Stmt::Query {
                expr: StringExpr::input("q"),
            }],
            els: vec![],
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1);
        let c = &reaches[0].conditions[0];
        assert!(c.language.contains(b"admin"));
        assert!(!c.language.contains(b"user"));
    }

    #[test]
    fn bad_pattern_is_reported() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("bad");
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "(".into(),
                subject: StringExpr::input("x"),
            },
            then: vec![],
            els: vec![],
        });
        assert!(matches!(
            explore(&p, &SymexOptions::default()),
            Err(SymexError::BadPattern { .. })
        ));
    }

    #[test]
    fn path_limit_is_enforced() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("blowup");
        for i in 0..12 {
            p.stmts.push(Stmt::If {
                cond: Cond::Opaque(format!("c{i}")),
                then: vec![Stmt::Echo {
                    expr: StringExpr::lit("t"),
                }],
                els: vec![Stmt::Echo {
                    expr: StringExpr::lit("e"),
                }],
            });
        }
        let opts = SymexOptions {
            max_paths: 100,
            ..Default::default()
        };
        assert!(matches!(
            explore(&p, &opts),
            Err(SymexError::PathLimit(100))
        ));
    }
}
