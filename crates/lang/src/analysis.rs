//! SQL-injection analysis: from sink reaches to exploit inputs.
//!
//! This module closes the loop the paper's §4 evaluation describes: take a
//! path that reaches a query sink (from [`crate::symex`]), phrase the
//! path's conditions and an *unsafe-query policy* as a DPRLE constraint
//! system, solve it, and — when satisfiable — extract concrete exploit
//! values for each HTTP input parameter. An unsatisfiable system certifies
//! the path safe with respect to the policy ("our algorithm would indicate
//! that the language of vulnerable strings is empty, i.e., there is no
//! bug").

use crate::symex::{explore, Atom, SinkReach, SymValue, SymexError, SymexOptions};
use dprle_automata::homomorphism::{image, preimage};
use dprle_automata::{ops, ByteMap, Nfa};
use dprle_core::{solve, Expr, Solution, SolveOptions, System, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// A policy describing *unsafe* query strings.
#[derive(Clone, Debug)]
pub struct Policy {
    name: String,
    language: Nfa,
}

impl Policy {
    /// Creates a policy from an explicit language of unsafe queries.
    pub fn new(name: &str, language: Nfa) -> Policy {
        Policy {
            name: name.to_owned(),
            language,
        }
    }

    /// The paper's SQL-injection approximation: a query is unsafe when it
    /// contains an unescaped single quote — "one common approximation for
    /// an unsafe SQL query" (§3.2, citing Wassermann & Su).
    pub fn sql_quote() -> Policy {
        let quote = ops::concat(
            &ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"'")).nfa,
            &Nfa::sigma_star(),
        )
        .nfa;
        Policy::new("contains-quote", quote)
    }

    /// A cross-site-scripting policy: the emitted HTML contains a
    /// `<script` tag opener (the paper names XSS as its other target
    /// class; use with [`crate::symex::SymexOptions::track_echo`]).
    pub fn xss_script_tag() -> Policy {
        let m = ops::concat(
            &ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"<script")).nfa,
            &Nfa::sigma_star(),
        )
        .nfa;
        Policy::new("xss-script-tag", m)
    }

    /// A stricter variant: the query contains a quote followed by a SQL
    /// statement separator (`;`) — modeling stacked-query injections.
    pub fn sql_stacked_query() -> Policy {
        let m = ops::concat(
            &ops::concat(
                &ops::concat(&Nfa::sigma_star(), &Nfa::literal(b"'")).nfa,
                &Nfa::sigma_star(),
            )
            .nfa,
            &ops::concat(&Nfa::literal(b";"), &Nfa::sigma_star()).nfa,
        )
        .nfa;
        Policy::new("stacked-query", m)
    }

    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unsafe-query language.
    pub fn language(&self) -> &Nfa {
        &self.language
    }
}

/// A confirmed vulnerability: a sink, a satisfiable constraint system, and
/// concrete exploit inputs.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Program name.
    pub program: String,
    /// Which sink (index among the path's reaches).
    pub sink_index: usize,
    /// The symbolic query at the sink.
    pub query: SymValue,
    /// Number of constraints in the generated system — the paper's `|C|`.
    pub num_constraints: usize,
    /// Concrete exploit value per input parameter.
    pub witnesses: BTreeMap<String, Vec<u8>>,
    /// The full solved exploit language per input parameter; enumerate it
    /// (e.g. with [`dprle_automata::analysis::members`]) to produce
    /// additional indicative test cases, as the paper's test-generation
    /// use case calls for.
    pub languages: BTreeMap<String, Nfa>,
    /// The branch decisions of the vulnerable path (a path slice in the
    /// sense of the paper's §2: the statements a developer must look at).
    pub decisions: Vec<bool>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: sink #{} is exploitable",
            self.program, self.sink_index
        )?;
        for (input, value) in &self.witnesses {
            writeln!(f, "  {} = {:?}", input, String::from_utf8_lossy(value))?;
        }
        Ok(())
    }
}

/// The outcome of analyzing one program.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Vulnerabilities with exploit inputs.
    pub findings: Vec<Finding>,
    /// Sinks proven safe under the policy (their exploit language is
    /// empty).
    pub safe_sinks: usize,
    /// Total sink reaches examined.
    pub total_sinks: usize,
}

/// Errors from the analysis pipeline.
#[derive(Clone, Debug)]
pub enum AnalysisError {
    /// Symbolic execution failed.
    Symex(SymexError),
    /// An input parameter is used both directly and through a case map (or
    /// through two different maps) on one path; the constraint system
    /// cannot link the two views soundly.
    MixedMappedUse {
        /// The offending input parameter.
        input: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Symex(e) => write!(f, "symbolic execution failed: {e}"),
            AnalysisError::MixedMappedUse { input } => write!(
                f,
                "input `{input}` is used both raw and case-mapped on one path; unsupported"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<SymexError> for AnalysisError {
    fn from(e: SymexError) -> Self {
        AnalysisError::Symex(e)
    }
}

/// How one input parameter is represented in a generated system.
#[derive(Clone, Debug)]
pub enum InputBinding {
    /// The parameter appears directly: the solver variable *is* the input.
    Direct(VarId),
    /// The parameter appears only through a byte map `h`: the solver
    /// variable stands for `h(input)`, and input witnesses/languages are
    /// recovered through the preimage.
    Mapped {
        /// The variable standing for the mapped view.
        var: VarId,
        /// The applied map (boxed: 256 bytes of table).
        map: Box<ByteMap>,
    },
}

impl InputBinding {
    /// The underlying solver variable.
    pub fn var(&self) -> VarId {
        match self {
            InputBinding::Direct(v) | InputBinding::Mapped { var: v, .. } => *v,
        }
    }
}

/// The constraint system generated for one sink reach.
#[derive(Debug)]
pub struct GeneratedSystem {
    /// The constraint system, ready to solve.
    pub system: System,
    /// Per input parameter, how it is bound to a solver variable.
    pub inputs: BTreeMap<String, InputBinding>,
}

/// Builds the DPRLE constraint system for one sink reach under `policy`.
///
/// Returns the system plus the mapping from input-parameter names to
/// solver variables. This is the paper's constraint-generation step; its
/// size is the `|C|` column of Figure 12.
pub fn to_system(reach: &SinkReach, policy: &Policy) -> (System, BTreeMap<String, VarId>) {
    let generated = build_system(reach, policy).expect("reach uses inputs consistently");
    let vars = generated
        .inputs
        .iter()
        .map(|(name, binding)| (name.clone(), binding.var()))
        .collect();
    (generated.system, vars)
}

/// Like [`to_system`], with explicit handling of case-mapped inputs
/// (`strtolower($_GET[…])` and friends).
///
/// # Errors
///
/// Fails when an input is used both raw and mapped (or under two distinct
/// maps) on the same path — the grammar of Figure 2 cannot relate the two
/// views.
pub fn build_system(reach: &SinkReach, policy: &Policy) -> Result<GeneratedSystem, AnalysisError> {
    let mut sys = System::new();
    let mut inputs: BTreeMap<String, InputBinding> = BTreeMap::new();
    let mut literal_count = 0usize;
    let mut cond_count = 0usize;
    let mut map_constants: BTreeMap<String, ()> = BTreeMap::new();

    let mut atom_to_expr = |sys: &mut System,
                            inputs: &mut BTreeMap<String, InputBinding>,
                            map_constants: &mut BTreeMap<String, ()>,
                            atom: &Atom|
     -> Result<Expr, AnalysisError> {
        Ok(match atom {
            Atom::Literal(bytes) => {
                let name = format!("lit{literal_count}");
                literal_count += 1;
                Expr::Const(sys.constant(&name, Nfa::literal(bytes)))
            }
            Atom::Input(name) => match inputs.get(name) {
                Some(InputBinding::Direct(v)) => Expr::Var(*v),
                Some(InputBinding::Mapped { .. }) => {
                    return Err(AnalysisError::MixedMappedUse {
                        input: name.clone(),
                    })
                }
                None => {
                    let v = sys.var(name);
                    inputs.insert(name.clone(), InputBinding::Direct(v));
                    Expr::Var(v)
                }
            },
            Atom::MappedInput {
                map,
                map_name,
                input,
            } => {
                let derived_name = format!("{input}%{map_name}");
                match inputs.get(input) {
                    Some(InputBinding::Direct(_)) => {
                        return Err(AnalysisError::MixedMappedUse {
                            input: input.clone(),
                        })
                    }
                    Some(InputBinding::Mapped { var, map: existing }) => {
                        if existing != map {
                            return Err(AnalysisError::MixedMappedUse {
                                input: input.clone(),
                            });
                        }
                        Expr::Var(*var)
                    }
                    None => {
                        let v = sys.var(&derived_name);
                        inputs.insert(
                            input.clone(),
                            InputBinding::Mapped {
                                var: v,
                                map: map.clone(),
                            },
                        );
                        // The mapped view ranges over the map's image, so
                        // witnesses are always invertible.
                        if map_constants.insert(derived_name.clone(), ()).is_none() {
                            let img_name = format!("__image_{map_name}");
                            let img = sys.constant(&img_name, image(&Nfa::sigma_star(), map));
                            sys.require(Expr::Var(v), img);
                        }
                        Expr::Var(v)
                    }
                }
            }
        })
    };

    let mut value_to_expr = |sys: &mut System,
                             inputs: &mut BTreeMap<String, InputBinding>,
                             map_constants: &mut BTreeMap<String, ()>,
                             value: &SymValue|
     -> Result<Option<Expr>, AnalysisError> {
        let mut expr: Option<Expr> = None;
        for atom in &value.atoms {
            let next = atom_to_expr(sys, inputs, map_constants, atom)?;
            expr = Some(match expr {
                None => next,
                Some(e) => e.concat(next),
            });
        }
        Ok(expr)
    };

    for cond in &reach.conditions {
        let Some(lhs) = value_to_expr(&mut sys, &mut inputs, &mut map_constants, &cond.subject)?
        else {
            continue; // empty subject: trivially constrained
        };
        let name = format!("cond{cond_count}");
        cond_count += 1;
        let rhs = sys.constant(&name, cond.language.clone());
        sys.require(lhs, rhs);
    }

    // An empty symbolic query is the concrete empty string; constrain it
    // like any other concrete query, so a policy that excludes "" proves
    // the sink safe. Dropping the policy constraint instead turned any
    // satisfiable path condition into a spurious finding (corpus
    // frontend_fuzz seed 86: uninitialized variable queried under an
    // input-dependent branch).
    let lhs = value_to_expr(&mut sys, &mut inputs, &mut map_constants, &reach.query)?
        .unwrap_or_else(|| Expr::Const(sys.constant("__empty_query", Nfa::literal(b""))));
    let rhs = sys.constant("__policy", policy.language().clone());
    sys.require(lhs, rhs);
    Ok(GeneratedSystem {
        system: sys,
        inputs,
    })
}

/// Analyzes one program: explores paths, solves the constraint system of
/// every sink reach, and reports exploitable sinks with witnesses.
///
/// # Errors
///
/// Propagates symbolic-execution failures (bad patterns, path explosion).
pub fn analyze(
    program: &crate::ast::Program,
    policy: &Policy,
    symex_options: &SymexOptions,
    solve_options: &SolveOptions,
) -> Result<AnalysisReport, AnalysisError> {
    analyze_sinks(program, policy, symex_options, solve_options, None)
}

/// Like [`analyze`], restricted to sinks of one kind (e.g.
/// [`SinkKind::Echo`] for XSS policies). `None` analyzes every recorded
/// sink.
pub fn analyze_sinks(
    program: &crate::ast::Program,
    policy: &Policy,
    symex_options: &SymexOptions,
    solve_options: &SolveOptions,
    kind: Option<crate::symex::SinkKind>,
) -> Result<AnalysisReport, AnalysisError> {
    let reaches = explore(program, symex_options)?;
    let relevant: Vec<_> = reaches
        .iter()
        .filter(|r| kind.is_none_or(|k| r.kind == k))
        .collect();
    let mut report = AnalysisReport {
        total_sinks: relevant.len(),
        ..Default::default()
    };
    for reach in relevant {
        match analyze_reach(reach, policy, solve_options) {
            Some(finding) => report.findings.push(finding),
            None => report.safe_sinks += 1,
        }
    }
    Ok(report)
}

/// Solves one sink reach; returns a finding when exploitable.
pub fn analyze_reach(
    reach: &SinkReach,
    policy: &Policy,
    solve_options: &SolveOptions,
) -> Option<Finding> {
    try_analyze_reach(reach, policy, solve_options)
        .ok()
        .flatten()
}

/// Like [`analyze_reach`] but surfaces constraint-generation errors
/// (mixed raw/mapped input use) instead of treating them as safe.
pub fn try_analyze_reach(
    reach: &SinkReach,
    policy: &Policy,
    solve_options: &SolveOptions,
) -> Result<Option<Finding>, AnalysisError> {
    let generated = build_system(reach, policy)?;
    let sys = &generated.system;
    // A sink with no symbolic inputs is vulnerable iff its concrete text is
    // already unsafe; `solve` handles that uniformly (variable-free
    // constraints are checked directly).
    let solution = solve(sys, solve_options);
    let assignment = match &solution {
        Solution::Assignments(list) => match list.first() {
            Some(a) => a,
            None => return Ok(None),
        },
        Solution::Unsat => return Ok(None),
    };
    let mut witnesses = BTreeMap::new();
    let mut languages = BTreeMap::new();
    for (name, binding) in &generated.inputs {
        match binding {
            InputBinding::Direct(v) => {
                if let Some(w) = assignment.witness(*v) {
                    witnesses.insert(name.clone(), w);
                }
                if let Some(m) = assignment.get(*v) {
                    languages.insert(name.clone(), m.nfa().clone());
                }
            }
            InputBinding::Mapped { var, map } => {
                // The solved language is for h(input); the input's exploit
                // language is the preimage, and witnesses invert per byte.
                if let Some(m) = assignment.get(*var) {
                    languages.insert(name.clone(), preimage(m, map));
                }
                if let Some(w) = assignment.witness(*var) {
                    witnesses.insert(name.clone(), invert_witness(&w, map));
                }
            }
        }
    }
    Ok(Some(Finding {
        program: reach.program.clone(),
        sink_index: reach.sink_index,
        query: reach.query.clone(),
        num_constraints: sys.num_constraints(),
        witnesses,
        languages,
        decisions: reach.decisions.clone(),
    }))
}

/// Inverts a byte map on a witness drawn from the map's image: each byte
/// gets some preimage byte (itself when the map fixes it).
fn invert_witness(w: &[u8], map: &ByteMap) -> Vec<u8> {
    w.iter()
        .map(|&b| {
            if map.map(b) == b {
                b
            } else {
                (0u8..=255)
                    .find(|&c| map.map(c) == b)
                    .expect("witness bytes lie in the map's image")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use dprle_regex::Regex;

    #[test]
    fn figure1_yields_an_exploit() {
        let report = analyze(
            &Program::figure1(),
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.total_sinks, 1);
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        let exploit = finding
            .witnesses
            .get("posted_newsid")
            .expect("input witness");
        // The exploit passes the faulty filter and injects a quote.
        assert!(Regex::new("[\\d]+$").expect("re").is_match(exploit));
        assert!(exploit.contains(&b'\''));
        assert!(finding.num_constraints >= 2);
        assert!(finding.to_string().contains("exploitable"));
    }

    #[test]
    fn fixed_filter_is_safe() {
        // Patch Figure 1's filter with the proper ^ anchor: no finding.
        let mut p = Program::figure1();
        if let crate::ast::Stmt::If { cond, .. } = &mut p.stmts[1] {
            *cond = crate::ast::Cond::PregMatch {
                pattern: "^[\\d]+$".to_owned(),
                subject: crate::ast::StringExpr::var("newsid"),
            }
            .negate();
        } else {
            panic!("unexpected program shape");
        }
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 0);
        assert_eq!(report.safe_sinks, 1);
    }

    #[test]
    fn concrete_unsafe_query_is_flagged_without_inputs() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("concrete");
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("SELECT 'oops'"),
        });
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].witnesses.is_empty());
    }

    #[test]
    fn empty_query_under_symbolic_condition_is_safe() {
        use crate::ast::{Cond, Stmt, StringExpr};
        // Regression (corpus frontend_fuzz seed 86): querying an
        // uninitialized variable under an input-dependent branch used to
        // produce a spurious finding — the empty query generated no policy
        // constraint at all, so the satisfiable path condition alone
        // counted as exploitable.
        let mut p = Program::new("empty_query");
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "[0-9]".into(),
                subject: StringExpr::input("in0"),
            },
            then: vec![Stmt::Query {
                expr: StringExpr::var("v0"),
            }],
            els: vec![],
        });
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 0, "empty query cannot be unsafe");
        assert_eq!(report.safe_sinks, 1);
    }

    #[test]
    fn concrete_safe_query_is_not_flagged() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("concrete_safe");
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("SELECT 1"),
        });
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert!(report.findings.is_empty());
        assert_eq!(report.safe_sinks, 1);
    }

    #[test]
    fn stacked_query_policy_is_stricter() {
        let quote = Policy::sql_quote();
        let stacked = Policy::sql_stacked_query();
        assert!(quote.language().contains(b"x'y"));
        assert!(!stacked.language().contains(b"x'y"));
        assert!(stacked.language().contains(b"x'; DROP--"));
    }

    #[test]
    fn multiple_inputs_all_get_witnesses() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("two_inputs");
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("SELECT * FROM t WHERE a=")
                .concat(StringExpr::input("a"))
                .concat(StringExpr::lit(" AND b="))
                .concat(StringExpr::input("b")),
        });
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let w = &report.findings[0].witnesses;
        assert_eq!(w.len(), 2);
        // At least one of the two inputs must carry the quote.
        assert!(w.values().any(|v| v.contains(&b'\'')));
    }

    #[test]
    fn finding_languages_enumerate_alternative_exploits() {
        let report = analyze(
            &Program::figure1(),
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        let lang = &report.findings[0].languages["posted_newsid"];
        let filter = Regex::new("[\\d]+$").expect("re");
        // Every enumerated member is itself a working exploit.
        for exploit in dprle_automata::analysis::members(lang).take(10) {
            assert!(filter.is_match(&exploit), "{exploit:?} passes the filter");
            assert!(exploit.contains(&b'\''), "{exploit:?} injects a quote");
        }
        assert_eq!(dprle_automata::analysis::members(lang).take(10).count(), 10);
    }

    #[test]
    fn xss_policy_on_echo_sinks() {
        use crate::ast::{Cond, Stmt, StringExpr};
        use crate::symex::SinkKind;
        // echo "<div>" . $_GET['msg'] . "</div>"; — classic reflected XSS.
        let mut p = Program::new("xss");
        p.stmts.push(Stmt::Echo {
            expr: StringExpr::lit("<div>")
                .concat(StringExpr::input("msg"))
                .concat(StringExpr::lit("</div>")),
        });
        let symex = SymexOptions {
            track_echo: true,
            ..Default::default()
        };
        let report = analyze_sinks(
            &p,
            &Policy::xss_script_tag(),
            &symex,
            &SolveOptions::default(),
            Some(SinkKind::Echo),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let exploit = &report.findings[0].witnesses["msg"];
        let exploit = String::from_utf8_lossy(exploit);
        assert!(exploit.contains("<script"), "{exploit}");

        // A filter rejecting '<' makes the echo safe.
        let mut safe = Program::new("xss_safe");
        safe.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "<".to_owned(),
                subject: StringExpr::input("msg"),
            },
            then: vec![Stmt::Exit],
            els: vec![],
        });
        safe.stmts.push(Stmt::Echo {
            expr: StringExpr::lit("<div>")
                .concat(StringExpr::input("msg"))
                .concat(StringExpr::lit("</div>")),
        });
        let report = analyze_sinks(
            &safe,
            &Policy::xss_script_tag(),
            &symex,
            &SolveOptions::default(),
            Some(SinkKind::Echo),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 0);
        assert_eq!(report.safe_sinks, 1);
    }

    #[test]
    fn echo_sinks_ignored_by_default() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("quiet");
        p.stmts.push(Stmt::Echo {
            expr: StringExpr::input("x"),
        });
        let report = analyze(
            &p,
            &Policy::xss_script_tag(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.total_sinks, 0);
    }

    #[test]
    fn strtolower_filter_is_modeled_exactly() {
        use crate::ast::{Cond, Stmt, StringExpr};
        // if (!preg_match(/^select$/, strtolower($_GET['cmd']))) exit;
        // query("..." . $_GET['cmd'])  — wait: cmd must appear only mapped,
        // so the query also uses strtolower($_GET['cmd']).
        let mut p = Program::new("lower");
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "^[a-z']+$".to_owned(),
                subject: StringExpr::Lower(Box::new(StringExpr::input("cmd"))),
            }
            .negate(),
            then: vec![Stmt::Exit],
            els: vec![],
        });
        p.stmts.push(Stmt::Query {
            expr: StringExpr::lit("EXEC ")
                .concat(StringExpr::Lower(Box::new(StringExpr::input("cmd")))),
        });
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        let exploit = finding.witnesses.get("cmd").expect("witness for cmd");
        // Replaying concretely: lowercase(exploit) passes the filter and
        // the query contains a quote.
        let lowered = dprle_automata::ByteMap::to_lowercase().map_bytes(exploit);
        let filter = Regex::new("^[a-z']+$").expect("re");
        assert!(filter.is_match(&lowered), "{lowered:?}");
        assert!(lowered.contains(&b'\''));
        // The exploit language includes every casing.
        let lang = finding.languages.get("cmd").expect("language");
        let w = lang.shortest_member().expect("nonempty");
        assert!(dprle_automata::ByteMap::to_lowercase()
            .map_bytes(&w)
            .contains(&b'\''));
    }

    #[test]
    fn mixed_raw_and_mapped_use_is_an_error() {
        use crate::ast::{Stmt, StringExpr};
        let mut p = Program::new("mixed");
        p.stmts.push(Stmt::Query {
            expr: StringExpr::input("x")
                .concat(StringExpr::Lower(Box::new(StringExpr::input("x")))),
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        let result = try_analyze_reach(&reaches[0], &Policy::sql_quote(), &SolveOptions::default());
        assert!(matches!(result, Err(AnalysisError::MixedMappedUse { .. })));
    }

    #[test]
    fn concrete_strtolower_folds() {
        use crate::ast::{Cond, Stmt, StringExpr};
        let mut p = Program::new("fold");
        p.stmts.push(Stmt::Assign {
            var: "a".into(),
            value: StringExpr::Lower(Box::new(StringExpr::lit("ABC"))),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::EqualsLiteral {
                subject: StringExpr::var("a"),
                literal: b"abc".to_vec(),
            },
            then: vec![Stmt::Query {
                expr: StringExpr::input("q"),
            }],
            els: vec![],
        });
        let reaches = explore(&p, &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1, "concrete fold prunes the else branch");
        assert!(reaches[0].conditions.is_empty());
    }

    #[test]
    fn to_system_counts_constraints() {
        let reaches = explore(&Program::figure1(), &SymexOptions::default()).expect("explores");
        let (sys, vars) = to_system(&reaches[0], &Policy::sql_quote());
        assert_eq!(sys.num_constraints(), 2); // filter condition + policy
        assert_eq!(vars.len(), 1);
    }
}
