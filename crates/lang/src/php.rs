//! Concrete PHP-like syntax: parser and pretty-printer for the string IR.
//!
//! The paper's data set is PHP source; this module lets the front end
//! consume (a disciplined fragment of) that concrete syntax instead of
//! hand-built ASTs, and lets the corpus generator emit source files. The
//! fragment covers exactly what the IR models:
//!
//! ```php
//! <?php
//! $newsid = $_POST['posted_newsid'];
//! if (!preg_match('/[\d]+$/', $newsid)) {
//!     echo 'Invalid article news ID.';
//!     exit;
//! }
//! $newsid = "nid_" . $newsid;
//! query("SELECT * FROM news WHERE newsid=" . $newsid);
//! ```
//!
//! Statements: assignment, `if`/`else`, `exit;`/`die;`, `query(expr);`,
//! `echo expr;`. Conditions: `preg_match('/re/', expr)`, `expr == 'lit'`,
//! `!cond`, and `unknown(...)` for opaque predicates. Expressions: single-
//! or double-quoted literals, `$var`, `$_GET['k']`/`$_POST['k']`/
//! `$_REQUEST['k']`, and `.`-concatenation.

use crate::ast::{Cond, Program, Stmt, StringExpr};
use std::fmt;

/// A parse error with line information.
#[derive(Clone, Debug)]
pub struct ParsePhpError {
    /// 1-based line number of the offence.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParsePhpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePhpError {}

/// Parses PHP-like source into a [`Program`] named `name`.
///
/// # Errors
///
/// Returns a positioned [`ParsePhpError`] for syntax outside the supported
/// fragment.
pub fn parse_php(name: &str, source: &str) -> Result<Program, ParsePhpError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmts = parser.block_body(/*top_level=*/ true)?;
    parser.expect_eof()?;
    Ok(Program {
        name: name.to_owned(),
        stmts,
    })
}

/// Pretty-prints a [`Program`] as PHP-like source. `parse_php` of the
/// output reproduces the program (round-trip property, tested below).
pub fn print_php(program: &Program) -> String {
    let mut out = String::from("<?php\n");
    print_stmts(&program.stmts, 0, &mut out);
    out
}

fn print_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                out.push_str(&format!("{pad}${var} = {};\n", print_expr(value)));
            }
            Stmt::Exit => out.push_str(&format!("{pad}exit;\n")),
            Stmt::Query { expr } => {
                out.push_str(&format!("{pad}query({});\n", print_expr(expr)));
            }
            Stmt::Echo { expr } => {
                out.push_str(&format!("{pad}echo {};\n", print_expr(expr)));
            }
            Stmt::While { cond, body } => {
                out.push_str(&format!("{pad}while ({}) {{\n", print_cond(cond)));
                print_stmts(body, depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::If { cond, then, els } => {
                out.push_str(&format!("{pad}if ({}) {{\n", print_cond(cond)));
                print_stmts(then, depth + 1, out);
                if els.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    print_stmts(els, depth + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
        }
    }
}

fn print_expr(e: &StringExpr) -> String {
    match e {
        StringExpr::Literal(bytes) => quote_literal(bytes),
        StringExpr::Input(name) => format!("$_POST['{name}']"),
        StringExpr::Var(name) => format!("${name}"),
        StringExpr::Concat(parts) => parts.iter().map(print_expr).collect::<Vec<_>>().join(" . "),
        StringExpr::Lower(inner) => format!("strtolower({})", print_expr(inner)),
        StringExpr::Upper(inner) => format!("strtoupper({})", print_expr(inner)),
    }
}

fn print_cond(c: &Cond) -> String {
    match c {
        Cond::PregMatch { pattern, subject } => {
            // Escape the delimiter quote (and backslash-before-quote) so
            // the emitted source lexes back to the same pattern.
            let escaped = pattern.replace('\\', "\\\\").replace('\'', "\\'");
            format!("preg_match('/{escaped}/', {})", print_expr(subject))
        }
        Cond::EqualsLiteral { subject, literal } => {
            format!("{} == {}", print_expr(subject), quote_literal(literal))
        }
        Cond::Not(inner) => format!("!{}", print_cond(inner)),
        Cond::Opaque(text) => {
            format!("unknown({})", quote_literal(text.as_bytes()))
        }
    }
}

fn quote_literal(bytes: &[u8]) -> String {
    let mut out = String::from("\"");
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            b'$' => out.push_str("\\$"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\x{b:02x}")),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Token {
    Ident(String),               // preg_match, if, else, exit, query, echo, unknown, die
    Variable(String),            // $name
    Superglobal { key: String }, // $_POST['k'] / $_GET['k'] / $_REQUEST['k']
    Literal(Vec<u8>),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Dot,
    Comma,
    Bang,
    EqEq,
    Assign,
}

struct Spanned {
    token: Token,
    line: usize,
}

fn err(line: usize, message: impl Into<String>) -> ParsePhpError {
    ParsePhpError {
        line,
        message: message.into(),
    }
}

fn lex(source: &str) -> Result<Vec<Spanned>, ParsePhpError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'<' if source[i..].starts_with("<?php") => i += 5,
            b'?' if source[i..].starts_with("?>") => i += 2,
            b'/' if source[i..].starts_with("//") => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if source[i..].starts_with("/*") => {
                let end = source[i..]
                    .find("*/")
                    .ok_or_else(|| err(line, "unterminated /* comment"))?;
                line += source[i..i + end].matches('\n').count();
                i += end + 2;
            }
            b'(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            b')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            b'{' => {
                out.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
                i += 1;
            }
            b'}' => {
                out.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
                i += 1;
            }
            b';' => {
                out.push(Spanned {
                    token: Token::Semi,
                    line,
                });
                i += 1;
            }
            b'.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    line,
                });
                i += 1;
            }
            b',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            b'!' => {
                out.push(Spanned {
                    token: Token::Bang,
                    line,
                });
                i += 1;
            }
            b'=' if source[i..].starts_with("==") => {
                out.push(Spanned {
                    token: Token::EqEq,
                    line,
                });
                i += 2;
            }
            b'=' => {
                out.push(Spanned {
                    token: Token::Assign,
                    line,
                });
                i += 1;
            }
            b'$' => {
                let (token, next) = lex_variable(source, i, line)?;
                out.push(Spanned { token, line });
                i = next;
            }
            b'\'' | b'"' => {
                let (lit, next, newlines) = lex_string(bytes, i, line)?;
                out.push(Spanned {
                    token: Token::Literal(lit),
                    line,
                });
                line += newlines;
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(source[start..i].to_owned()),
                    line,
                });
            }
            other => {
                return Err(err(
                    line,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        }
    }
    Ok(out)
}

fn lex_variable(source: &str, start: usize, line: usize) -> Result<(Token, usize), ParsePhpError> {
    // start points at '$'.
    for glob in ["$_POST", "$_GET", "$_REQUEST"] {
        if source[start..].starts_with(glob) {
            let rest = &source[start + glob.len()..];
            let rest = rest.trim_start();
            if !rest.starts_with('[') {
                return Err(err(line, format!("{glob} must be indexed with ['key']")));
            }
            // Find ['key'] — a quoted key then ']'.
            let open_quote = rest[1..]
                .trim_start()
                .chars()
                .next()
                .ok_or_else(|| err(line, "unterminated superglobal index"))?;
            if open_quote != '\'' && open_quote != '"' {
                return Err(err(line, "superglobal key must be a quoted string"));
            }
            let after_bracket =
                start + glob.len() + source[start + glob.len()..].find('[').expect("checked") + 1;
            let key_start = after_bracket
                + source[after_bracket..]
                    .find(open_quote)
                    .ok_or_else(|| err(line, "unterminated superglobal key"))?
                + 1;
            let key_len = source[key_start..]
                .find(open_quote)
                .ok_or_else(|| err(line, "unterminated superglobal key"))?;
            let key = source[key_start..key_start + key_len].to_owned();
            let close = key_start
                + key_len
                + 1
                + source[key_start + key_len + 1..]
                    .find(']')
                    .ok_or_else(|| err(line, "missing ] after superglobal key"))?;
            return Ok((Token::Superglobal { key }, close + 1));
        }
    }
    let mut i = start + 1;
    let bytes = source.as_bytes();
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i == name_start {
        return Err(err(line, "`$` must begin a variable name"));
    }
    Ok((Token::Variable(source[name_start..i].to_owned()), i))
}

fn lex_string(
    bytes: &[u8],
    start: usize,
    line: usize,
) -> Result<(Vec<u8>, usize, usize), ParsePhpError> {
    let quote = bytes[start];
    let mut out = Vec::new();
    let mut i = start + 1;
    let mut newlines = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                let esc = bytes[i + 1];
                let decoded = match esc {
                    b'n' => Some(b'\n'),
                    b't' => Some(b'\t'),
                    b'r' => Some(b'\r'),
                    b'\\' => Some(b'\\'),
                    b'$' => Some(b'$'),
                    b'\'' => Some(b'\''),
                    b'"' => Some(b'"'),
                    b'x' if i + 3 < bytes.len() => {
                        let hex = std::str::from_utf8(&bytes[i + 2..i + 4])
                            .ok()
                            .and_then(|s| u8::from_str_radix(s, 16).ok());
                        match hex {
                            Some(b) => {
                                out.push(b);
                                i += 4;
                                continue;
                            }
                            None => None,
                        }
                    }
                    _ => None,
                };
                match decoded {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => {
                        out.push(b'\\');
                        i += 1;
                    }
                }
            }
            b if b == quote => return Ok((out, i + 1, newlines)),
            b'\n' => {
                newlines += 1;
                out.push(b'\n');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Err(err(line, "unterminated string literal"))
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParsePhpError> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(self.line(), format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParsePhpError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(err(self.line(), "unexpected trailing tokens"))
        }
    }

    /// Parses statements until `}` (or end of input at top level).
    fn block_body(&mut self, top_level: bool) -> Result<Vec<Stmt>, ParsePhpError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None if top_level => return Ok(out),
                None => return Err(err(self.line(), "unexpected end of input, expected `}`")),
                Some(Token::RBrace) if !top_level => return Ok(out),
                _ => out.push(self.statement()?),
            }
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParsePhpError> {
        let line = self.line();
        match self.bump() {
            Some(Token::Variable(name)) => {
                self.expect(&Token::Assign, "`=` after variable")?;
                let value = self.expression()?;
                self.expect(&Token::Semi, "`;` after assignment")?;
                Ok(Stmt::Assign { var: name, value })
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "exit" | "die" => {
                    // Allow `exit;` and `exit();`.
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        self.expect(&Token::RParen, "`)`")?;
                    }
                    self.expect(&Token::Semi, "`;` after exit")?;
                    Ok(Stmt::Exit)
                }
                "query" | "mysql_query" => {
                    self.expect(&Token::LParen, "`(` after query")?;
                    let expr = self.expression()?;
                    self.expect(&Token::RParen, "`)`")?;
                    self.expect(&Token::Semi, "`;` after query(...)")?;
                    Ok(Stmt::Query { expr })
                }
                "echo" | "print" => {
                    let expr = self.expression()?;
                    self.expect(&Token::Semi, "`;` after echo")?;
                    Ok(Stmt::Echo { expr })
                }
                "while" => {
                    self.expect(&Token::LParen, "`(` after while")?;
                    let cond = self.condition()?;
                    self.expect(&Token::RParen, "`)` after condition")?;
                    self.expect(&Token::LBrace, "`{` to open the loop body")?;
                    let body = self.block_body(false)?;
                    self.expect(&Token::RBrace, "`}`")?;
                    Ok(Stmt::While { cond, body })
                }
                "if" => {
                    self.expect(&Token::LParen, "`(` after if")?;
                    let cond = self.condition()?;
                    self.expect(&Token::RParen, "`)` after condition")?;
                    self.expect(&Token::LBrace, "`{` to open the then-branch")?;
                    let then = self.block_body(false)?;
                    self.expect(&Token::RBrace, "`}`")?;
                    let els = if self.peek() == Some(&Token::Ident("else".to_owned())) {
                        self.pos += 1;
                        self.expect(&Token::LBrace, "`{` after else")?;
                        let els = self.block_body(false)?;
                        self.expect(&Token::RBrace, "`}`")?;
                        els
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::If { cond, then, els })
                }
                other => Err(err(line, format!("unsupported statement `{other}`"))),
            },
            other => Err(err(line, format!("unexpected token {other:?}"))),
        }
    }

    fn condition(&mut self) -> Result<Cond, ParsePhpError> {
        let line = self.line();
        if self.peek() == Some(&Token::Bang) {
            self.pos += 1;
            return Ok(self.condition()?.negate());
        }
        match self.peek().cloned() {
            Some(Token::Ident(word)) if word == "preg_match" => {
                self.pos += 1;
                self.expect(&Token::LParen, "`(` after preg_match")?;
                let pattern = match self.bump() {
                    Some(Token::Literal(bytes)) => {
                        let text =
                            String::from_utf8(bytes).map_err(|_| err(line, "non-UTF-8 pattern"))?;
                        let inner = text
                            .strip_prefix('/')
                            .and_then(|t| t.rfind('/').map(|i| t[..i].to_owned()))
                            .ok_or_else(|| err(line, "pattern must be '/…/'"))?;
                        inner
                    }
                    _ => return Err(err(line, "preg_match needs a quoted '/pattern/'")),
                };
                self.expect(&Token::Comma, "`,` between pattern and subject")?;
                let subject = self.expression()?;
                self.expect(&Token::RParen, "`)` closing preg_match")?;
                Ok(Cond::PregMatch { pattern, subject })
            }
            Some(Token::Ident(word)) if word == "unknown" => {
                self.pos += 1;
                self.expect(&Token::LParen, "`(` after unknown")?;
                // Swallow an optional quoted description.
                let text = match self.peek() {
                    Some(Token::Literal(bytes)) => {
                        let s = String::from_utf8_lossy(bytes).into_owned();
                        self.pos += 1;
                        s
                    }
                    _ => String::new(),
                };
                self.expect(&Token::RParen, "`)` closing unknown")?;
                Ok(Cond::Opaque(text))
            }
            _ => {
                // expr == 'literal'
                let subject = self.expression()?;
                self.expect(&Token::EqEq, "`==` in condition")?;
                match self.bump() {
                    Some(Token::Literal(literal)) => Ok(Cond::EqualsLiteral { subject, literal }),
                    _ => Err(err(line, "right side of `==` must be a literal")),
                }
            }
        }
    }

    fn expression(&mut self) -> Result<StringExpr, ParsePhpError> {
        let mut expr = self.atom()?;
        while self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let rhs = self.atom()?;
            expr = expr.concat(rhs);
        }
        Ok(expr)
    }

    fn atom(&mut self) -> Result<StringExpr, ParsePhpError> {
        let line = self.line();
        match self.bump() {
            Some(Token::Literal(bytes)) => Ok(StringExpr::Literal(bytes)),
            Some(Token::Variable(name)) => Ok(StringExpr::Var(name)),
            Some(Token::Superglobal { key }) => Ok(StringExpr::Input(key)),
            Some(Token::Ident(word)) if word == "strtolower" || word == "strtoupper" => {
                self.expect(&Token::LParen, "`(` after case function")?;
                let inner = self.expression()?;
                self.expect(&Token::RParen, "`)` closing case function")?;
                Ok(if word == "strtolower" {
                    StringExpr::Lower(Box::new(inner))
                } else {
                    StringExpr::Upper(Box::new(inner))
                })
            }
            other => Err(err(line, format!("expected expression, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    echo 'Invalid article news ID.';
    exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
"#;

    #[test]
    fn parses_figure1_source() {
        let p = parse_php("utopia_figure1", FIGURE1).expect("parses");
        assert_eq!(p.stmts.len(), 4);
        assert_eq!(p, Program::figure1());
    }

    #[test]
    fn roundtrip_figure1() {
        let p = Program::figure1();
        let printed = print_php(&p);
        let reparsed = parse_php(&p.name, &printed).expect("round-trips");
        assert_eq!(p, reparsed);
    }

    #[test]
    fn roundtrip_generated_programs() {
        // Every statement/condition constructor the corpus uses survives a
        // print→parse cycle.
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("mixed");
        p.stmts.push(Stmt::Assign {
            var: "a".into(),
            value: StringExpr::lit("x\"y\\z\n").concat(StringExpr::input("k")),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::EqualsLiteral {
                subject: StringExpr::var("a"),
                literal: b"admin".to_vec(),
            },
            then: vec![Stmt::Exit],
            els: vec![Stmt::Echo {
                expr: StringExpr::lit("no"),
            }],
        });
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("rand".into()),
            then: vec![Stmt::Query {
                expr: StringExpr::var("a"),
            }],
            els: vec![],
        });
        let reparsed = parse_php("mixed", &print_php(&p)).expect("round-trips");
        assert_eq!(p, reparsed);
    }

    #[test]
    fn superglobal_variants() {
        for glob in ["$_GET['k']", "$_POST['k']", "$_REQUEST[\"k\"]"] {
            let src = format!("<?php\n$x = {glob};\n");
            let p = parse_php("g", &src).expect("parses");
            assert_eq!(
                p.stmts[0],
                Stmt::Assign {
                    var: "x".into(),
                    value: StringExpr::input("k")
                }
            );
        }
    }

    #[test]
    fn comments_are_skipped() {
        let src = "<?php\n// line comment\n# hash comment\n/* block\ncomment */\n$x = 'v';\n";
        let p = parse_php("c", src).expect("parses");
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn string_escapes_decode() {
        let p = parse_php("e", r#"<?php $x = "a\n\t\"\\\x41\$";"#).expect("parses");
        match &p.stmts[0] {
            Stmt::Assign {
                value: StringExpr::Literal(bytes),
                ..
            } => {
                assert_eq!(bytes, b"a\n\t\"\\A$");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exit_with_parens_and_die() {
        let p = parse_php("x", "<?php exit(); die;").expect("parses");
        assert_eq!(p.stmts, vec![Stmt::Exit, Stmt::Exit]);
    }

    #[test]
    fn mysql_query_alias() {
        let p = parse_php("q", "<?php mysql_query('SELECT 1');").expect("parses");
        assert!(matches!(p.stmts[0], Stmt::Query { .. }));
    }

    #[test]
    fn errors_have_lines() {
        let e = parse_php("bad", "<?php\n$x = ;\n").expect_err("bad expr");
        assert_eq!(e.line, 2);
        assert!(parse_php("bad", "<?php for(;;){}").is_err());
        assert!(parse_php("bad", "<?php $x = 'unterminated").is_err());
        assert!(parse_php("bad", "<?php if (preg_match('nodelim', $x)) {}").is_err());
        assert!(parse_php("bad", "<?php $_POST = 1;").is_err());
    }

    #[test]
    fn parsed_source_analyzes_like_builtin_figure1() {
        use crate::analysis::{analyze, Policy};
        use crate::symex::SymexOptions;
        use dprle_core::SolveOptions;
        let p = parse_php("fig1", FIGURE1).expect("parses");
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let exploit = &report.findings[0].witnesses["posted_newsid"];
        assert!(exploit.contains(&b'\''));
    }
}
